"""Legacy setup shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Routing with a Clue' (SIGCOMM 1999): "
        "distributed IP lookup with clues"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.9",
    install_requires=["numpy", "networkx"],
    entry_points={"console_scripts": ["repro-clue = repro.cli:main"]},
)
