"""repro.faults — adversarial fault injection and the guarded data path.

Three modules, one story:

* :mod:`repro.faults.inject` breaks things — seeded, composable
  injectors for in-flight clue corruption, Byzantine neighbours,
  clue-table record corruption, and crash/link-down schedules;
* :mod:`repro.faults.guard` survives them — a validated, self-healing
  lookup wrapper with per-neighbour health scores and quarantine;
* :mod:`repro.faults.engine` runs the fight and keeps score against
  the never-wrong-forwarding invariant and the clueless baseline.
"""

from repro.faults.engine import (
    FaultEngine,
    FaultInvariantError,
    FaultReport,
    RoundReport,
    build_fault_scenario,
)
from repro.faults.guard import (
    GuardedLookup,
    GuardPolicy,
    NeighborHealth,
    PROBATION,
    QUARANTINED,
    REJECT_REASONS,
    TRUSTED,
)
from repro.faults.inject import (
    BatchDropEvent,
    CrashEvent,
    FaultPlan,
    LIE_MODES,
    LinkDownEvent,
    ReplicaCrashEvent,
    ShardFaultPlan,
    SlowReplicaEvent,
    flap_crash_plan,
    random_topology_events,
    shard_chaos_plan,
)

__all__ = [
    "FaultEngine",
    "FaultInvariantError",
    "FaultReport",
    "RoundReport",
    "build_fault_scenario",
    "GuardedLookup",
    "GuardPolicy",
    "NeighborHealth",
    "TRUSTED",
    "PROBATION",
    "QUARANTINED",
    "REJECT_REASONS",
    "BatchDropEvent",
    "CrashEvent",
    "FaultPlan",
    "LinkDownEvent",
    "LIE_MODES",
    "ReplicaCrashEvent",
    "ShardFaultPlan",
    "SlowReplicaEvent",
    "flap_crash_plan",
    "random_topology_events",
    "shard_chaos_plan",
]
