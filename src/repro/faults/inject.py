"""Seeded, composable adversarial fault injection.

A :class:`FaultPlan` composes independent injectors, each driven by its
own deterministically derived RNG stream (so enabling one fault never
perturbs another's schedule — the same discipline the robustness
experiments adopted for their sampling):

* **clue corruption in flight** — with probability ``flip_rate`` per
  link traversal, one random bit of the 5/7-bit clue field is flipped;
  with probability ``scramble_rate`` the whole field is resampled
  uniformly (the "uniform 5-bit corruption" model);
* **Byzantine neighbours** — named routers systematically lie about
  their BMP after resolving a packet (the clue they stamp is *not*
  what their own lookup found): truncated, extended, or uniformly
  random lies;
* **clue-table record corruption/drops** — between traffic rounds,
  learned records are corrupted in place (FD swapped for junk, Ptr
  clobbered, stored clue rewritten) or silently dropped;
* **topology faults** — scheduled link-down windows and router
  crash–restart events; a restarted router comes back with *cold* clue
  tables rebuilt lazily by the learning path.

Injectors mutate simulation state only; detection and recovery are the
guard's job (:mod:`repro.faults.guard`).  Every injection is counted
(``counts`` and, when a telemetry sink is attached, the
``faults_injected_total`` series), so experiments can report exactly
how much adversity a run absorbed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.addressing import Prefix, clue_field_width

#: Injection kinds (the ``kind`` label of ``faults_injected_total``).
KIND_FLIP = "clue_bitflip"
KIND_SCRAMBLE = "clue_scramble"
KIND_BYZANTINE = "byzantine_clue"
KIND_RECORD = "record_corrupt"
KIND_DROP = "record_drop"
KIND_LINK_DOWN = "link_down"
KIND_CRASH = "router_crash"
KIND_RESTART = "router_restart"
KIND_SHARD_CRASH = "shard_crash"
KIND_SHARD_RESTART = "shard_restart"
KIND_SHARD_SLOW = "shard_slow"
KIND_BATCH_DROP = "batch_drop"

#: Byzantine lie modes.
LIE_RANDOM = "random"
LIE_SHORTER = "shorter"
LIE_LONGER = "longer"
LIE_MODES = (LIE_RANDOM, LIE_SHORTER, LIE_LONGER)

#: Record corruption modes, cycled through by the injector.
RECORD_MODES = ("fd", "ptr", "clue", "drop")


class LinkDownEvent:
    """Link (a, b) goes down at ``round_index`` for ``duration`` rounds."""

    __slots__ = ("round_index", "a", "b", "duration")

    def __init__(self, round_index: int, a: str, b: str, duration: int = 1):
        if round_index < 0 or duration < 1:
            raise ValueError("need round_index >= 0 and duration >= 1")
        self.round_index = round_index
        self.a = a
        self.b = b
        self.duration = duration

    def link(self) -> frozenset:
        return frozenset((self.a, self.b))

    def __repr__(self) -> str:
        return "LinkDownEvent(r%d, %s--%s, %d rounds)" % (
            self.round_index, self.a, self.b, self.duration,
        )


class CrashEvent:
    """Router crashes at ``round_index``, restarts ``duration`` rounds later."""

    __slots__ = ("round_index", "router", "duration")

    def __init__(self, round_index: int, router: str, duration: int = 1):
        if round_index < 0 or duration < 1:
            raise ValueError("need round_index >= 0 and duration >= 1")
        self.round_index = round_index
        self.router = router
        self.duration = duration

    def __repr__(self) -> str:
        return "CrashEvent(r%d, %s, %d rounds)" % (
            self.round_index, self.router, self.duration,
        )


def _derived_rng(seed: int, name: str) -> random.Random:
    """An independent, deterministic RNG stream for one injector."""
    return random.Random("faultplan:%d:%s" % (seed, name))


class FaultPlan:
    """A composed set of seeded fault injectors.

    ``byzantine`` maps router names to a lie mode from :data:`LIE_MODES`.
    ``record_rate`` is the per-round probability that each learned clue
    table suffers one corruption event; ``record_burst`` scales how many
    records each event touches.
    """

    def __init__(
        self,
        seed: int = 0,
        flip_rate: float = 0.0,
        scramble_rate: float = 0.0,
        byzantine: Optional[Dict[str, str]] = None,
        byzantine_rate: float = 1.0,
        record_rate: float = 0.0,
        record_burst: int = 1,
        link_downs: Iterable[LinkDownEvent] = (),
        crashes: Iterable[CrashEvent] = (),
    ):
        for name, rate in (
            ("flip_rate", flip_rate),
            ("scramble_rate", scramble_rate),
            ("byzantine_rate", byzantine_rate),
            ("record_rate", record_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("%s must be within [0, 1]" % name)
        if record_burst < 1:
            raise ValueError("record_burst must be positive")
        self.seed = seed
        self.flip_rate = flip_rate
        self.scramble_rate = scramble_rate
        self.byzantine = dict(byzantine or {})
        for router, mode in self.byzantine.items():
            if mode not in LIE_MODES:
                raise ValueError(
                    "unknown lie mode %r for router %r (expected one of %s)"
                    % (mode, router, ", ".join(LIE_MODES))
                )
        self.byzantine_rate = byzantine_rate
        self.record_rate = record_rate
        self.record_burst = record_burst
        self.link_downs = list(link_downs)
        self.crashes = list(crashes)
        #: Injections performed so far, by kind.
        self.counts: Dict[str, int] = {}
        #: Optional telemetry sink with a ``record_fault(kind)`` method
        #: (:class:`repro.telemetry.LookupInstruments`).
        self.telemetry = None
        self._link_rng = _derived_rng(seed, "link")
        self._byz_rng = _derived_rng(seed, "byzantine")
        self._record_rng = _derived_rng(seed, "record")
        self._record_mode = 0

    # ------------------------------------------------------------------
    def _count(self, kind: str, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n
        if self.telemetry is not None:
            self.telemetry.record_fault(kind, n)

    def count_event(self, kind: str, n: int = 1) -> None:
        """Account an injection applied on the plan's behalf.

        The fault engine calls this when it *executes* a scheduled
        topology event (crash, restart, link-down) that the plan only
        declared.
        """
        self._count(kind, n)

    def total_injected(self) -> int:
        return sum(self.counts.values())

    def any_packet_faults(self) -> bool:
        """True if per-packet (link/Byzantine) injection is configured."""
        return bool(
            self.flip_rate or self.scramble_rate or self.byzantine
        )

    # -- per-packet injectors -------------------------------------------
    def perturb_on_link(self, packet) -> Optional[str]:
        """Corrupt the in-flight clue field; returns the kind injected."""
        length = packet.clue.length
        if length is None:
            return None
        width = packet.destination.width
        field_bits = clue_field_width(width)
        if self.scramble_rate and self._link_rng.random() < self.scramble_rate:
            packet.clue.length = min(
                self._link_rng.getrandbits(field_bits), width
            )
            packet.clue.index = None
            self._count(KIND_SCRAMBLE)
            return KIND_SCRAMBLE
        if self.flip_rate and self._link_rng.random() < self.flip_rate:
            flipped = length ^ (1 << self._link_rng.randrange(field_bits))
            packet.clue.length = min(flipped, width)
            packet.clue.index = None
            self._count(KIND_FLIP)
            return KIND_FLIP
        return None

    def lie_after_hop(self, router: str, packet) -> Optional[str]:
        """Apply a Byzantine router's lie to the clue it just stamped."""
        mode = self.byzantine.get(router)
        if mode is None or packet.clue.length is None:
            return None
        if self.byzantine_rate < 1.0 and (
            self._byz_rng.random() >= self.byzantine_rate
        ):
            return None
        truth = packet.clue.length
        width = packet.destination.width
        lie = self._lie(mode, truth, width)
        if lie == truth:
            return None
        packet.clue.length = lie
        packet.clue.index = None
        self._count(KIND_BYZANTINE)
        return KIND_BYZANTINE

    def _lie(self, mode: str, truth: int, width: int) -> int:
        if mode == LIE_SHORTER:
            return self._byz_rng.randrange(truth) if truth else truth
        if mode == LIE_LONGER:
            if truth >= width:
                return truth
            return self._byz_rng.randrange(truth + 1, width + 1)
        lie = self._byz_rng.randrange(width + 1)
        if lie == truth:  # systematic liars never tell the truth
            lie = (lie + 1) % (width + 1)
        return lie

    # -- record corruption ----------------------------------------------
    def corrupt_records(self, router) -> int:
        """Corrupt/drop records in one router's learned clue tables.

        ``router`` must expose ``learned_tables() -> {upstream:
        ClueTable}`` (see :meth:`repro.netsim.router.ClueRouter
        .learned_tables`).  Returns the number of records touched.
        """
        if not self.record_rate:
            return 0
        touched = 0
        for _upstream, table in sorted(
            router.learned_tables().items(), key=lambda item: str(item[0])
        ):
            if self._record_rng.random() >= self.record_rate:
                continue
            records = [entry for entry in table.entries() if entry.active]
            if not records:
                continue
            for _ in range(min(self.record_burst, len(records))):
                entry = records[self._record_rng.randrange(len(records))]
                touched += self._corrupt_one(table, entry)
        return touched

    def _corrupt_one(self, table, entry) -> int:
        mode = RECORD_MODES[self._record_mode % len(RECORD_MODES)]
        self._record_mode += 1
        if mode == "drop":
            table.remove(entry.clue)
            self._count(KIND_DROP)
            return 1
        if mode == "fd":
            width = entry.clue.width
            bits = self._record_rng.getrandbits(width)
            entry.fd_prefix = Prefix(bits, width, width)
            entry.fd_next_hop = "<corrupt>"
        elif mode == "ptr":
            entry.continuation = None
        else:  # "clue": the stored clue no longer matches its hash slot
            flipped = entry.clue.length ^ 1 if entry.clue.length else 1
            entry.clue = Prefix(
                self._record_rng.getrandbits(min(flipped, entry.clue.width)),
                min(flipped, entry.clue.width),
                entry.clue.width,
            )
        self._count(KIND_RECORD)
        return 1

    # -- topology events -------------------------------------------------
    def links_down_at(self, round_index: int) -> List[frozenset]:
        """Links that must be down during ``round_index``."""
        return [
            event.link()
            for event in self.link_downs
            if event.round_index
            <= round_index
            < event.round_index + event.duration
        ]

    def routers_down_at(self, round_index: int) -> List[str]:
        """Routers that must be down during ``round_index``."""
        return [
            event.router
            for event in self.crashes
            if event.round_index
            <= round_index
            < event.round_index + event.duration
        ]

    def restarts_at(self, round_index: int) -> List[str]:
        """Routers whose crash window ends exactly at ``round_index``."""
        return [
            event.router
            for event in self.crashes
            if event.round_index + event.duration == round_index
        ]

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "flip_rate": self.flip_rate,
            "scramble_rate": self.scramble_rate,
            "byzantine": dict(self.byzantine),
            "byzantine_rate": self.byzantine_rate,
            "record_rate": self.record_rate,
            "record_burst": self.record_burst,
            "link_downs": len(self.link_downs),
            "crashes": len(self.crashes),
        }

    def __repr__(self) -> str:
        return "FaultPlan(seed=%d, %d injected)" % (
            self.seed,
            self.total_injected(),
        )


def flap_crash_plan(
    routers: List[str],
    links: List[Tuple[str, str]],
    ticks: int,
    *,
    flaps: int = 0,
    crashes: int = 0,
    seed: int = 0,
    duration: int = 10,
    settle: int = 16,
) -> FaultPlan:
    """A topology-only plan for perturbing the link-state control plane.

    Unlike :func:`random_topology_events` (which pairs arbitrary router
    names), flap events here are drawn from the *actual* ``links`` of
    the topology — flapping a non-existent link would not perturb an
    IGP at all.  ``duration`` should exceed the IGP's dead interval, or
    a flap ends before any adjacency notices; the default comfortably
    exceeds the default dead interval of 4 ticks.  Events are scheduled
    in ``[1, ticks - duration - settle)`` so the plane has a quiet tail
    to reconverge in before final oracle certification.
    """
    if duration < 1 or settle < 0:
        raise ValueError("need duration >= 1 and settle >= 0")
    rng = _derived_rng(seed, "control-topology")
    names = sorted(routers)
    edges = sorted(tuple(sorted(edge)) for edge in links)
    last_start = max(2, ticks - duration - settle)
    link_events: List[LinkDownEvent] = []
    crash_events: List[CrashEvent] = []
    if edges:
        for _ in range(flaps):
            tick = rng.randrange(1, last_start)
            a, b = edges[rng.randrange(len(edges))]
            link_events.append(LinkDownEvent(tick, a, b, duration))
    if names:
        for _ in range(crashes):
            tick = rng.randrange(1, last_start)
            router = names[rng.randrange(len(names))]
            crash_events.append(CrashEvent(tick, router, duration))
    return FaultPlan(seed=seed, link_downs=link_events, crashes=crash_events)


# ----------------------------------------------------------------------
# Shard-level faults (the serving plane, repro.resilience)
# ----------------------------------------------------------------------


class ReplicaCrashEvent:
    """Replica ``(shard, replica)`` crashes at ``tick``.

    The worker is down for ``duration`` ticks; at ``tick + duration``
    the chaos engine begins the off-hot-path rebuild that re-certifies
    the slice and re-admits the worker through probation.
    """

    __slots__ = ("tick", "shard", "replica", "duration")

    def __init__(self, tick: int, shard: int, replica: int, duration: int = 1):
        if tick < 0 or duration < 1:
            raise ValueError("need tick >= 0 and duration >= 1")
        if shard < 0 or replica < 0:
            raise ValueError("shard and replica indices must be >= 0")
        self.tick = tick
        self.shard = shard
        self.replica = replica
        self.duration = duration

    def __repr__(self) -> str:
        return "ReplicaCrashEvent(t%d, %d.%d, %d ticks)" % (
            self.tick, self.shard, self.replica, self.duration,
        )


class SlowReplicaEvent:
    """Replica ``(shard, replica)`` serves slowly in a tick window.

    Every batch the worker releases during ``[tick, tick + duration)``
    completes ``extra_ticks`` later than its nominal service time —
    the classic gray-failure mode that hedging exists for.
    """

    __slots__ = ("tick", "shard", "replica", "duration", "extra_ticks")

    def __init__(
        self,
        tick: int,
        shard: int,
        replica: int,
        duration: int = 1,
        extra_ticks: int = 1,
    ):
        if tick < 0 or duration < 1:
            raise ValueError("need tick >= 0 and duration >= 1")
        if shard < 0 or replica < 0:
            raise ValueError("shard and replica indices must be >= 0")
        if extra_ticks < 1:
            raise ValueError("extra_ticks must be >= 1")
        self.tick = tick
        self.shard = shard
        self.replica = replica
        self.duration = duration
        self.extra_ticks = extra_ticks

    def __repr__(self) -> str:
        return "SlowReplicaEvent(t%d, %d.%d, %d ticks, +%d)" % (
            self.tick, self.shard, self.replica, self.duration,
            self.extra_ticks,
        )


class BatchDropEvent:
    """Replica ``(shard, replica)`` drops released batches in a window.

    Batches the worker releases during ``[tick, tick + duration)`` are
    lost whole — the requests they carried must be retried (or served
    degraded) by the engine's recovery machinery.
    """

    __slots__ = ("tick", "shard", "replica", "duration")

    def __init__(self, tick: int, shard: int, replica: int, duration: int = 1):
        if tick < 0 or duration < 1:
            raise ValueError("need tick >= 0 and duration >= 1")
        if shard < 0 or replica < 0:
            raise ValueError("shard and replica indices must be >= 0")
        self.tick = tick
        self.shard = shard
        self.replica = replica
        self.duration = duration

    def __repr__(self) -> str:
        return "BatchDropEvent(t%d, %d.%d, %d ticks)" % (
            self.tick, self.shard, self.replica, self.duration,
        )


class ShardFaultPlan:
    """A deterministic schedule of shard-level serving-plane faults.

    The query methods are pure functions of the tick, so the chaos
    engine can replay the same plan twice (baseline run vs. fault run)
    and across processes with bit-identical outcomes.  Executed events
    are accounted through :meth:`count_event`, mirroring
    :class:`FaultPlan` — the plan declares, the engine executes and
    reports.
    """

    def __init__(
        self,
        seed: int = 0,
        crashes: Iterable[ReplicaCrashEvent] = (),
        slowdowns: Iterable[SlowReplicaEvent] = (),
        batch_drops: Iterable[BatchDropEvent] = (),
    ):
        self.seed = seed
        self.crashes = list(crashes)
        self.slowdowns = list(slowdowns)
        self.batch_drops = list(batch_drops)
        #: Injections executed so far, by kind.
        self.counts: Dict[str, int] = {}
        #: Optional telemetry sink with a ``record_fault(kind)`` method.
        self.telemetry = None

    # ------------------------------------------------------------------
    def count_event(self, kind: str, n: int = 1) -> None:
        """Account ``n`` injections the engine executed for this plan."""
        self.counts[kind] = self.counts.get(kind, 0) + n
        if self.telemetry is not None:
            self.telemetry.record_fault(kind, n)

    def total_injected(self) -> int:
        return sum(self.counts.values())

    # -- schedule queries ------------------------------------------------
    def crashes_at(self, tick: int) -> List[ReplicaCrashEvent]:
        """Crash events whose window opens exactly at ``tick``."""
        return [event for event in self.crashes if event.tick == tick]

    def restarts_at(self, tick: int) -> List[ReplicaCrashEvent]:
        """Crash events whose down window ends exactly at ``tick``."""
        return [
            event
            for event in self.crashes
            if event.tick + event.duration == tick
        ]

    def slow_penalty(self, shard: int, replica: int, tick: int) -> int:
        """Extra service ticks for a batch released by the worker now."""
        extra = 0
        for event in self.slowdowns:
            if (
                event.shard == shard
                and event.replica == replica
                and event.tick <= tick < event.tick + event.duration
            ):
                extra += event.extra_ticks
        return extra

    def drops_batch(self, shard: int, replica: int, tick: int) -> bool:
        """True if a batch the worker releases now is lost whole."""
        for event in self.batch_drops:
            if (
                event.shard == shard
                and event.replica == replica
                and event.tick <= tick < event.tick + event.duration
            ):
                return True
        return False

    def last_event_tick(self) -> int:
        """The last tick any scheduled window is still open (or 0)."""
        last = 0
        for event in self.crashes:
            last = max(last, event.tick + event.duration)
        for event in self.slowdowns:
            last = max(last, event.tick + event.duration)
        for event in self.batch_drops:
            last = max(last, event.tick + event.duration)
        return last

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "crashes": len(self.crashes),
            "slowdowns": len(self.slowdowns),
            "batch_drops": len(self.batch_drops),
            "last_event_tick": self.last_event_tick(),
        }

    def __repr__(self) -> str:
        return "ShardFaultPlan(seed=%d, %d events, %d injected)" % (
            self.seed,
            len(self.crashes) + len(self.slowdowns) + len(self.batch_drops),
            self.total_injected(),
        )


def shard_chaos_plan(
    shards: int,
    replicas: int,
    ticks: int,
    *,
    crashes: int = 1,
    slowdowns: int = 1,
    drops: int = 1,
    seed: int = 0,
    duration: int = 24,
    settle: int = 48,
    extra_ticks: int = 3,
) -> ShardFaultPlan:
    """A seeded shard-level chaos schedule (the ``flap_crash_plan`` shape).

    Events target a uniformly drawn ``(shard, replica)`` worker and are
    scheduled in ``[1, ticks - duration - settle)`` so every window
    opens while arrivals are still flowing and closes — including the
    crash's rebuild and the deadline tail — before the run drains.
    ``settle`` must therefore cover rebuild time plus the deadline
    budget; the chaos engine's default plan passes one that does.
    """
    if shards < 1 or replicas < 1:
        raise ValueError("need shards >= 1 and replicas >= 1")
    if duration < 1 or settle < 0:
        raise ValueError("need duration >= 1 and settle >= 0")
    rng = _derived_rng(seed, "shard-chaos")
    last_start = max(2, ticks - duration - settle)
    crash_events: List[ReplicaCrashEvent] = []
    slow_events: List[SlowReplicaEvent] = []
    drop_events: List[BatchDropEvent] = []
    for _ in range(crashes):
        tick = rng.randrange(1, last_start)
        shard = rng.randrange(shards)
        replica = rng.randrange(replicas)
        crash_events.append(ReplicaCrashEvent(tick, shard, replica, duration))
    for _ in range(slowdowns):
        tick = rng.randrange(1, last_start)
        shard = rng.randrange(shards)
        replica = rng.randrange(replicas)
        slow_events.append(
            SlowReplicaEvent(tick, shard, replica, duration, extra_ticks)
        )
    for _ in range(drops):
        tick = rng.randrange(1, last_start)
        shard = rng.randrange(shards)
        replica = rng.randrange(replicas)
        drop_events.append(BatchDropEvent(tick, shard, replica, duration))
    return ShardFaultPlan(
        seed=seed,
        crashes=crash_events,
        slowdowns=slow_events,
        batch_drops=drop_events,
    )


def random_topology_events(
    routers: List[str],
    rounds: int,
    crashes: int = 0,
    link_downs: int = 0,
    seed: int = 0,
    duration: int = 2,
) -> Tuple[List[CrashEvent], List[LinkDownEvent]]:
    """Derive a deterministic crash/link-down schedule for a scenario.

    Events are spread over the middle of the run (never round 0, so every
    router first learns some state worth losing) and never take down the
    same router twice at once.
    """
    rng = _derived_rng(seed, "topology-schedule")
    names = sorted(routers)
    crash_events: List[CrashEvent] = []
    link_events: List[LinkDownEvent] = []
    if rounds < 2 or len(names) < 2:
        return crash_events, link_events
    for _ in range(crashes):
        round_index = rng.randrange(1, max(2, rounds - duration))
        router = names[rng.randrange(len(names))]
        crash_events.append(CrashEvent(round_index, router, duration))
    for _ in range(link_downs):
        round_index = rng.randrange(1, max(2, rounds - duration))
        a = names[rng.randrange(len(names))]
        b = names[rng.randrange(len(names))]
        if a == b:
            b = names[(names.index(a) + 1) % len(names)]
        link_events.append(LinkDownEvent(round_index, a, b, duration))
    return crash_events, link_events
