"""The guarded, self-healing clue data path.

The paper's robustness claim (§1/§5.3) is that un-coordinated clues
"can not cause any confusion" — but it assumes the clue scheme's own
machinery is intact and that neighbours are merely *un-coordinated*,
not wrong.  This module hardens the data path against actively bad
input: clues bit-flipped in flight, Byzantine senders that lie about
their BMP, and corrupted clue-table records.

Three layers, all per-packet and cheap:

* **record seals** — every learned record is sealed with a lightweight
  integrity checksum when it is built; a probe whose record no longer
  matches its seal is treated as a miss, answered by the full local
  lookup, and the record is rebuilt on the spot (self-healing);
* **style-aware verification** — Simple-style records are provably
  oracle-correct for *any* clue that prefixes the destination (the
  formal core of the no-confusion claim), so they only need the prefix
  check.  Advance-style records are sound only when the clue is the
  sender's true BMP, so a hit walks the sender trie *below* the clue
  along the destination's bits: any marked vertex found there proves
  the clue was a lie, and the packet falls back to the full lookup.
  The walk is charged to the memory counter; in benign traffic it
  terminates after a step or two (the true BMP has no marked sender
  descendants on the destination's path, by definition);
* **neighbour health** — every anomaly attributable to the upstream
  (malformed clue, lying clue) feeds a sliding-window health score.
  When the mismatch rate crosses the policy threshold the neighbour is
  *quarantined*: its clues are not even probed, every packet takes the
  full lookup (exactly the clueless baseline cost), and after an
  exponentially backed-off cooldown the neighbour re-enters on
  *probation* — a few watched packets that either restore trust or
  double the next quarantine.

The hard invariant: a :class:`GuardedLookup` never returns an answer
different from the receiver's own full-lookup oracle.  Faults can only
degrade the *speedup* toward the clueless baseline, never correctness.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.addressing import Address, Prefix
from repro.core.entry import ClueEntry
from repro.core.table import ClueTable
from repro.lookup.base import LookupAlgorithm
from repro.lookup.hotpath import cold_path, hot_path
from repro.lookup.counters import (
    METHOD_CLUE_MISS,
    METHOD_FD_IMMEDIATE,
    METHOD_FULL,
    METHOD_RESUMED,
    LookupResult,
    MemoryCounter,
)

#: Guard rejection reasons (the ``reason`` label of
#: ``clue_guard_rejections_total``).
REJECT_MALFORMED = "malformed_clue"
REJECT_LYING = "lying_clue"
REJECT_RECORD = "corrupt_record"
REJECT_RESULT = "bad_result"
REJECT_QUARANTINED = "quarantined"

REJECT_REASONS = (
    REJECT_MALFORMED,
    REJECT_LYING,
    REJECT_RECORD,
    REJECT_RESULT,
    REJECT_QUARANTINED,
)

#: Health states a neighbour moves through.
TRUSTED = "trusted"
PROBATION = "probation"
QUARANTINED = "quarantined"


class GuardPolicy:
    """Tunable knobs of the guarded data path.

    The defaults quarantine an upstream after a quarter of a 32-packet
    window went bad (with at least 4 observed anomalies), sit out 64
    packets, then re-admit it on a 4-packet probation; every
    re-quarantine doubles the cooldown up to ``backoff_max``.
    """

    __slots__ = (
        "window",
        "quarantine_threshold",
        "min_samples",
        "backoff_base",
        "backoff_factor",
        "backoff_max",
        "probation_probes",
        "verify_advance",
        "seal_records",
        "quarantine_enabled",
    )

    def __init__(
        self,
        window: int = 32,
        quarantine_threshold: float = 0.25,
        min_samples: int = 4,
        backoff_base: int = 64,
        backoff_factor: float = 2.0,
        backoff_max: int = 4096,
        probation_probes: int = 4,
        verify_advance: bool = True,
        seal_records: bool = True,
        quarantine_enabled: bool = True,
    ):
        if window < 1:
            raise ValueError("window must be positive")
        if not 0.0 < quarantine_threshold <= 1.0:
            raise ValueError("quarantine_threshold must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be positive")
        if backoff_base < 1 or backoff_max < backoff_base:
            raise ValueError("need 1 <= backoff_base <= backoff_max")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if probation_probes < 1:
            raise ValueError("probation_probes must be positive")
        self.window = window
        self.quarantine_threshold = quarantine_threshold
        self.min_samples = min_samples
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.probation_probes = probation_probes
        self.verify_advance = verify_advance
        self.seal_records = seal_records
        self.quarantine_enabled = quarantine_enabled

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            "GuardPolicy(window=%d, threshold=%.2f, backoff=%d..%d, "
            "quarantine=%s)"
            % (
                self.window,
                self.quarantine_threshold,
                self.backoff_base,
                self.backoff_max,
                self.quarantine_enabled,
            )
        )


class NeighborHealth:
    """Sliding-window mismatch tracking for one upstream neighbour."""

    __slots__ = (
        "policy",
        "state",
        "window",
        "anomalies_total",
        "clean_total",
        "quarantines",
        "cooldown_left",
        "probation_left",
        "next_backoff",
    )

    def __init__(self, policy: GuardPolicy):
        self.policy = policy
        self.state = TRUSTED
        self.window: Deque[int] = deque(maxlen=policy.window)
        self.anomalies_total = 0
        self.clean_total = 0
        self.quarantines = 0
        self.cooldown_left = 0
        self.probation_left = 0
        self.next_backoff = policy.backoff_base

    # ------------------------------------------------------------------
    def mismatch_rate(self) -> float:
        """Anomaly fraction over the sliding window."""
        if not self.window:
            return 0.0
        return sum(self.window) / len(self.window)

    def consult_allowed(self) -> bool:
        """May this packet consult the neighbour's clue table at all?

        Quarantined neighbours burn one packet of cooldown per call;
        when the cooldown expires the neighbour moves to probation and
        the *next* packet probes again.
        """
        if self.state != QUARANTINED:
            return True
        self.cooldown_left -= 1
        if self.cooldown_left <= 0:
            self.state = PROBATION
            self.probation_left = self.policy.probation_probes
        return False

    def record_clean(self) -> None:
        """One clue consultation passed every check."""
        self.clean_total += 1
        self.window.append(0)
        if self.state == PROBATION:
            self.probation_left -= 1
            if self.probation_left <= 0:
                self.state = TRUSTED
                self.window.clear()
                # A survived probation halves the next cooldown (floor at
                # the base), so transient faults do not scar forever.
                self.next_backoff = max(
                    self.policy.backoff_base, int(self.next_backoff / 2)
                )

    def record_anomaly(self) -> bool:
        """One upstream-attributable anomaly; True if quarantine fired."""
        self.anomalies_total += 1
        self.window.append(1)
        if not self.policy.quarantine_enabled:
            return False
        if self.state == PROBATION:
            self._quarantine()
            return True
        if (
            sum(self.window) >= self.policy.min_samples
            and self.mismatch_rate() >= self.policy.quarantine_threshold
        ):
            self._quarantine()
            return True
        return False

    def _quarantine(self) -> None:
        self.state = QUARANTINED
        self.quarantines += 1
        self.cooldown_left = self.next_backoff
        self.next_backoff = min(
            self.policy.backoff_max,
            int(self.next_backoff * self.policy.backoff_factor),
        )
        self.window.clear()

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "mismatch_rate": round(self.mismatch_rate(), 4),
            "anomalies_total": self.anomalies_total,
            "clean_total": self.clean_total,
            "quarantines": self.quarantines,
            "cooldown_left": self.cooldown_left,
        }

    def __repr__(self) -> str:
        return "NeighborHealth(%s, %d anomalies, %d quarantines)" % (
            self.state,
            self.anomalies_total,
            self.quarantines,
        )


def _seal(entry: ClueEntry) -> int:
    """A lightweight integrity checksum over a record's routing fields.

    Identity of the continuation object is part of the seal: corruption
    that swaps or drops the Ptr is as dangerous as a wrong FD.
    """
    return hash(
        (
            entry.clue,
            entry.fd_prefix,
            entry.fd_next_hop,
            id(entry.continuation),
            entry.style,
        )
    )


class GuardedLookup:
    """A validated, self-healing, learning clue lookup for one upstream.

    Drop-in shape-compatible with
    :class:`repro.core.learning.LearningClueLookup` (``lookup(address,
    clue, counter)`` plus ``.table``/``.builder``/``.base``), but every
    answer is screened before it is trusted and every anomaly is
    accounted against the upstream's :class:`NeighborHealth`.
    """

    # Built once per upstream when a router first sees it — the
    # construction cost never recurs on the per-packet path.
    @cold_path
    def __init__(
        self,
        base: LookupAlgorithm,
        builder,
        policy: Optional[GuardPolicy] = None,
        health: Optional[NeighborHealth] = None,
        monitor=None,
    ):
        self.base = base
        self.builder = builder
        self.policy = policy if policy is not None else GuardPolicy()
        self.health = (
            health if health is not None else NeighborHealth(self.policy)
        )
        #: Optional :class:`GuardMonitor`-shaped sink (see
        #: :mod:`repro.faults.engine`): ``record_rejection(reason)``,
        #: ``record_quarantine()``, ``record_degraded(accesses)``.
        self.monitor = monitor
        self.table = ClueTable()
        self._seals: Dict[Prefix, int] = {}
        self.hits = 0
        self.misses = 0
        self.rejections: Dict[str, int] = {}
        self.healed_records = 0

    # ------------------------------------------------------------------
    def _reject(self, reason: str, neighbor_fault: bool) -> None:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        if self.monitor is not None:
            self.monitor.record_rejection(reason)
        if neighbor_fault and self.health.record_anomaly():
            if self.monitor is not None:
                self.monitor.record_quarantine()

    def _full(
        self, address: Address, counter: MemoryCounter, degraded: bool
    ) -> LookupResult:
        counter.method = METHOD_FULL
        result = self.base.lookup(address, counter)
        result.method = METHOD_FULL
        if degraded and self.monitor is not None:
            self.monitor.record_degraded(counter.accesses)
        return result

    def learn(self, clue: Prefix) -> ClueEntry:
        """(Re)build and seal the record for ``clue`` off the fast path."""
        entry = self.builder.build_entry(clue)
        self.table.insert(entry)
        if self.policy.seal_records:
            self._seals[clue] = _seal(entry)
        return entry

    def note_malformed(self) -> None:
        """Score an undecodable clue header against the upstream.

        The router calls this when the 5-bit field itself cannot be
        decoded (:class:`~repro.core.clue.ClueEncodingError`), before
        the lookup runs — the packet then proceeds clueless.
        """
        self._reject(REJECT_MALFORMED, neighbor_fault=True)

    def _clue_is_senders_bmp(
        self, entry: ClueEntry, address: Address, counter: MemoryCounter
    ) -> bool:
        """Verify the Advance soundness premise: clue == sender BMP.

        True iff the sender's trie has no *marked* vertex strictly below
        the clue on the destination's path — in which case the clue
        really is the best match the sender could have found.  Each
        vertex touched below the clue is charged one memory reference.
        """
        node = entry.sender_node
        if node is None or not node.marked:
            # The clue is not a prefix of the sender's table at all: the
            # sender could never have emitted it as a BMP.
            return False
        clue = entry.clue
        depth = clue.length
        width = address.width
        while depth < width:
            node = node.children.get(address.bit(depth))
            if node is None:
                return True
            counter.touch()
            # Path compression can jump several bits; re-check the match
            # before trusting the vertex (a compressed edge may diverge
            # from the destination inside the skipped run).
            if not node.prefix.matches(address):
                return True
            if node.marked:
                return False
            depth = node.prefix.length
        return True

    # ------------------------------------------------------------------
    @hot_path
    def lookup(
        self,
        address: Address,
        clue: Optional[Prefix] = None,
        counter: Optional[MemoryCounter] = None,
    ) -> LookupResult:
        """Route one packet through the guarded data path."""
        counter = counter if counter is not None else MemoryCounter()
        if clue is None:
            return self._full(address, counter, degraded=False)
        if not self.health.consult_allowed():
            self._reject(REJECT_QUARANTINED, neighbor_fault=False)
            return self._full(address, counter, degraded=True)
        # Cheap validity screen on the clue itself: length bounds and
        # the clue-prefixes-destination requirement the 5-bit encoding
        # is supposed to enforce structurally.
        if (
            not 0 <= clue.length <= address.width
            or clue.width != address.width
            or not clue.matches(address)
        ):
            self._reject(REJECT_MALFORMED, neighbor_fault=True)
            return self._full(address, counter, degraded=True)
        entry = self.table.probe(clue, counter)
        if entry is None:
            # Never saw this clue (or its record was deactivated): the
            # paper's normal learning path, not an anomaly.
            self.misses += 1
            counter.method = METHOD_CLUE_MISS
            result = self.base.lookup(address, counter)
            result.method = METHOD_CLUE_MISS
            self.learn(clue)
            return result
        # Integrity seal: a record that no longer matches the checksum
        # taken at build time was corrupted in memory.  Heal it.
        if self.policy.seal_records and self._seals.get(clue) != _seal(entry):
            self._reject(REJECT_RECORD, neighbor_fault=False)
            result = self._full(address, counter, degraded=True)
            self.learn(clue)
            self.healed_records += 1
            return result
        # Style-aware trust: Advance records assume the clue is the
        # sender's true BMP; verify that premise with a bounded walk.
        if (
            entry.style == "advance"
            and self.policy.verify_advance
            and not self._clue_is_senders_bmp(entry, address, counter)
        ):
            self._reject(REJECT_LYING, neighbor_fault=True)
            return self._full(address, counter, degraded=True)
        self.hits += 1
        result = self._resolve(entry, address, counter)
        if result.prefix is not None and not result.prefix.matches(address):
            # A decision that does not even cover the destination can
            # only come from a corrupted record that beat the seal.
            self._reject(REJECT_RESULT, neighbor_fault=False)
            result = self._full(address, counter, degraded=True)
            self.learn(clue)
            self.healed_records += 1
            return result
        self.health.record_clean()
        return result

    @hot_path
    def _resolve(
        self, entry: ClueEntry, address: Address, counter: MemoryCounter
    ) -> LookupResult:
        if entry.pointer_empty():
            counter.method = METHOD_FD_IMMEDIATE
            prefix, next_hop = entry.final_decision()
            return LookupResult(
                prefix, next_hop, counter.accesses, METHOD_FD_IMMEDIATE
            )
        counter.method = METHOD_RESUMED
        match = entry.continuation.search(address, counter)
        if match is None:
            prefix, next_hop = entry.final_decision()
            return LookupResult(
                prefix, next_hop, counter.accesses, METHOD_RESUMED
            )
        prefix, next_hop = match
        return LookupResult(prefix, next_hop, counter.accesses, METHOD_RESUMED)

    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        """Fraction of clue-carrying packets that hit a trusted record."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def rejections_total(self) -> int:
        return sum(self.rejections.values())

    def __repr__(self) -> str:
        return "GuardedLookup(%d records, %d rejections, health=%s)" % (
            len(self.table),
            self.rejections_total(),
            self.health.state,
        )
