"""The adversarial-traffic engine: faults in, invariants checked.

A :class:`FaultEngine` drives a clue-router fabric through *rounds* of
traffic while a :class:`~repro.faults.inject.FaultPlan` attacks it.
Each round:

1. executes the plan's scheduled topology events — routers crash (a
   crashed router drops every packet handed to it) and later restart
   with *cold* clue tables rebuilt lazily; links go down and come back;
2. corrupts learned clue-table records in place, per the plan;
3. forwards sampled traffic.  Per-packet injectors (clue bit-flips,
   uniform field scrambles, Byzantine lies) fire inside
   :meth:`Network.forward` via the plan the engine installs on the
   fabric for the duration of the run.

Every delivered packet is checked hop by hop against the
never-wrong-forwarding invariant (:mod:`repro.netsim.invariant`) — the
same oracle the churn engine uses.  With the guard enabled the
invariant is *hard* by default: a single divergent hop raises
:class:`FaultInvariantError` and fails the run.  With the guard off the
engine records violations instead, which is exactly how the experiment
sweeps demonstrate that the guard is necessary, not just prudent.

The report also prices the damage: a pre-run **clueless baseline**
(mean full-lookup cost over sampled traffic) anchors the
``degradation_ratio`` — how close fault-induced fallbacks pushed the
average lookup toward the no-clue world.  The acceptance criterion is
that it approaches 1.0 from below, never meaningfully exceeds it:
faults can cost the speedup, never more.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.addressing import Prefix
from repro.faults.guard import GuardPolicy
from repro.faults.inject import (
    KIND_CRASH,
    KIND_LINK_DOWN,
    KIND_RESTART,
    FaultPlan,
    _derived_rng,
)
from repro.lookup.counters import MemoryCounter
from repro.netsim.invariant import wrong_hop_details
from repro.netsim.packet import Packet
from repro.netsim.router import ClueRouter


class FaultInvariantError(AssertionError):
    """A forwarding decision diverged from the oracle under faults."""

    def __init__(self, round_index: int, violations):
        self.round_index = round_index
        self.violations = list(violations)
        detail = "; ".join(
            "%s found %s oracle %s" % violation
            for violation in self.violations[:3]
        )
        super().__init__(
            "never-wrong-forwarding violated in round %d (%d hops): %s"
            % (round_index, len(self.violations), detail)
        )


class RoundReport:
    """What one round absorbed: faults, drops, degradation."""

    __slots__ = (
        "round_index",
        "packets",
        "delivered",
        "dropped",
        "wrong_hops",
        "accesses",
        "injected",
        "routers_down",
        "links_down",
    )

    def __init__(self, round_index: int):
        self.round_index = round_index
        self.packets = 0
        self.delivered = 0
        #: drop counts keyed by the delivery exit reason.
        self.dropped: Dict[str, int] = {}
        self.wrong_hops = 0
        self.accesses = 0
        #: injections this round, by kind (delta of the plan's counts).
        self.injected: Dict[str, int] = {}
        self.routers_down: List[str] = []
        self.links_down = 0

    def avg_accesses(self) -> float:
        return self.accesses / self.packets if self.packets else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "round": self.round_index,
            "packets": self.packets,
            "delivered": self.delivered,
            "dropped": dict(self.dropped),
            "wrong_hops": self.wrong_hops,
            "avg_accesses": round(self.avg_accesses(), 4),
            "injected": dict(self.injected),
            "routers_down": list(self.routers_down),
            "links_down": self.links_down,
        }

    def __repr__(self) -> str:
        return "RoundReport(#%d, %d packets, %d injected)" % (
            self.round_index,
            self.packets,
            sum(self.injected.values()),
        )


class FaultReport:
    """The whole adversarial run, with the robustness verdict."""

    def __init__(
        self,
        plan: Dict[str, object],
        guard_enabled: bool,
        policy: Optional[Dict[str, object]],
        baseline_accesses: float,
    ):
        self.plan = plan
        self.guard_enabled = guard_enabled
        self.policy = policy
        #: Mean full-lookup cost of the clueless deployment — the floor
        #: that degraded (fallback) lookups approach but never pass.
        self.baseline_accesses = baseline_accesses
        self.rounds: List[RoundReport] = []
        self.faults_injected: Dict[str, int] = {}
        #: per-router guard statistics (see ClueRouter.guard_reports).
        self.guards: Dict[str, Dict] = {}
        #: total hops forwarded — the degradation ratio's denominator.
        self.total_hops = 0

    # -- aggregates ------------------------------------------------------
    def packets(self) -> int:
        return sum(r.packets for r in self.rounds)

    def delivered(self) -> int:
        return sum(r.delivered for r in self.rounds)

    def dropped(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for round_report in self.rounds:
            for reason, count in round_report.dropped.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def wrong_hops(self) -> int:
        return sum(r.wrong_hops for r in self.rounds)

    def avg_accesses_per_packet(self) -> float:
        packets = self.packets()
        if not packets:
            return 0.0
        return sum(r.accesses for r in self.rounds) / packets

    def total_injected(self) -> int:
        return sum(self.faults_injected.values())

    def degradation_ratio(self) -> float:
        """Observed per-hop cost over the clueless baseline.

        Computed per *hop*, since the baseline is a per-lookup cost:
        1.0 means faults erased the clue advantage entirely; values
        below 1.0 mean the guard preserved part of the speedup.
        """
        total_accesses = sum(r.accesses for r in self.rounds)
        if not self.total_hops or not self.baseline_accesses:
            return 0.0
        return (total_accesses / self.total_hops) / self.baseline_accesses

    def rejections_total(self) -> int:
        return sum(
            sum(report["rejections"].values())
            for reports in self.guards.values()
            for report in reports.values()
        )

    def quarantines_total(self) -> int:
        return sum(
            report["health"]["quarantines"]
            for reports in self.guards.values()
            for report in reports.values()
        )

    def healed_records_total(self) -> int:
        return sum(
            report["healed_records"]
            for reports in self.guards.values()
            for report in reports.values()
        )

    def invariant_ok(self) -> bool:
        return self.wrong_hops() == 0

    def passed(self) -> bool:
        """The robustness verdict this subsystem exists to check.

        With the guard on: zero wrong hops, full stop.  With it off the
        run is explicitly a demonstration, so only traffic actually
        flowing is required.
        """
        if self.guard_enabled:
            return self.invariant_ok() and self.packets() > 0
        return self.packets() > 0

    def claim(self) -> str:
        return (
            "faults: %d injections over %d packets; %d wrong hops "
            "(guard %s); %d rejections, %d quarantines, %d records "
            "healed; degradation %.3fx of clueless baseline."
            % (
                self.total_injected(),
                self.packets(),
                self.wrong_hops(),
                "on" if self.guard_enabled else "off",
                self.rejections_total(),
                self.quarantines_total(),
                self.healed_records_total(),
                self.degradation_ratio(),
            )
        )

    def summary(self) -> Dict[str, object]:
        return {
            "guard_enabled": self.guard_enabled,
            "rounds": len(self.rounds),
            "packets": self.packets(),
            "delivered": self.delivered(),
            "dropped": self.dropped(),
            "wrong_hops": self.wrong_hops(),
            "faults_injected": dict(self.faults_injected),
            "faults_total": self.total_injected(),
            "rejections_total": self.rejections_total(),
            "quarantines_total": self.quarantines_total(),
            "healed_records_total": self.healed_records_total(),
            "avg_accesses_per_packet": round(
                self.avg_accesses_per_packet(), 4
            ),
            "baseline_accesses": round(self.baseline_accesses, 4),
            "degradation_ratio": round(self.degradation_ratio(), 4),
            "invariant_ok": self.invariant_ok(),
            "passed": self.passed(),
            "claim": self.claim(),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "plan": self.plan,
            "policy": self.policy,
            "summary": self.summary(),
            "rounds": [r.as_dict() for r in self.rounds],
            "guards": self.guards,
        }

    def __repr__(self) -> str:
        return "FaultReport(%d rounds, %d injected, passed=%s)" % (
            len(self.rounds),
            self.total_injected(),
            self.passed(),
        )


class FaultEngine:
    """Runs a network under a fault plan and audits every decision."""

    def __init__(
        self,
        network,
        plan: FaultPlan,
        *,
        guard_policy=None,
        seed: int = 0,
        hard_invariant: Optional[bool] = None,
        baseline_samples: int = 256,
    ):
        self.network = network
        self.plan = plan
        self._clue_routers: Dict[str, ClueRouter] = {
            name: router
            for name, router in network.routers.items()
            if isinstance(router, ClueRouter)
        }
        if not self._clue_routers:
            raise ValueError("fault injection needs at least one ClueRouter")
        if guard_policy is True:
            guard_policy = GuardPolicy()
        self.guard_policy: Optional[GuardPolicy] = guard_policy
        if guard_policy is not None:
            for router in self._clue_routers.values():
                router.enable_guard(guard_policy)
        #: Hard invariant by default exactly when the guard is on: the
        #: guarded path promises correctness; the unguarded one is run
        #: to *measure* how it breaks.
        self.hard_invariant = (
            hard_invariant
            if hard_invariant is not None
            else guard_policy is not None
        )
        self.rng = _derived_rng(seed, "traffic")
        self._router_names = sorted(network.routers)
        self._pool = self._destination_pool()
        self.round_index = 0
        self._total_hops = 0
        self.baseline = self._measure_baseline(baseline_samples, seed)
        plan.telemetry = network._effective_instruments()

    # ------------------------------------------------------------------
    def _destination_pool(self) -> List[Prefix]:
        pool = set()
        for router in self._clue_routers.values():
            for prefix, _hop in router.receiver.entries:
                pool.add(prefix)
        if not pool:
            raise ValueError("no routed prefixes to draw traffic from")
        return sorted(pool)

    def _measure_baseline(self, samples: int, seed: int) -> float:
        """Mean clueless full-lookup cost over sampled traffic.

        Charged against each router's *base* structure directly, so the
        figure is untouched by clue tables, guards, or faults.
        """
        rng = _derived_rng(seed, "baseline")
        names = sorted(self._clue_routers)
        counter = MemoryCounter()
        total = 0
        n = max(1, samples)
        for _ in range(n):
            router = self._clue_routers[names[rng.randrange(len(names))]]
            prefix = self._pool[rng.randrange(len(self._pool))]
            destination = prefix.random_address(rng)
            counter.reset()
            router.base.lookup(destination, counter)
            total += counter.accesses
        return total / n

    # ------------------------------------------------------------------
    def _apply_topology(self, report: RoundReport) -> None:
        """Execute the round's scheduled crashes, restarts, link flaps."""
        for name in self.plan.restarts_at(self.round_index):
            router = self.network.routers.get(name)
            if router is not None and not router.up:
                router.restart()
                self.plan.count_event(KIND_RESTART)
        down_now = set(self.plan.routers_down_at(self.round_index))
        for name in sorted(down_now):
            router = self.network.routers.get(name)
            if router is not None and router.up:
                router.crash()
                self.plan.count_event(KIND_CRASH)
        report.routers_down = sorted(down_now)
        links = set(self.plan.links_down_at(self.round_index))
        for link in links - self.network.down_links:
            self.plan.count_event(KIND_LINK_DOWN)
        self.network.down_links = links
        report.links_down = len(links)

    def _forward_traffic(self, count: int, report: RoundReport) -> None:
        for _ in range(count):
            prefix = self._pool[self.rng.randrange(len(self._pool))]
            destination = prefix.random_address(self.rng)
            start = self._router_names[
                self.rng.randrange(len(self._router_names))
            ]
            delivery = self.network.forward(Packet(destination), start)
            report.packets += 1
            report.accesses += delivery.total_accesses()
            self._total_hops += len(delivery.packet.trace)
            if delivery.delivered:
                report.delivered += 1
            else:
                reason = delivery.exit_reason
                report.dropped[reason] = report.dropped.get(reason, 0) + 1
            violations = wrong_hop_details(self.network, delivery.packet)
            if violations:
                report.wrong_hops += len(violations)
                if self.hard_invariant:
                    raise FaultInvariantError(self.round_index, violations)

    # ------------------------------------------------------------------
    def run_round(self, traffic: int = 32) -> RoundReport:
        """One round: topology events, record corruption, traffic."""
        report = RoundReport(self.round_index)
        before = dict(self.plan.counts)
        self._apply_topology(report)
        for name in sorted(self._clue_routers):
            router = self._clue_routers[name]
            if router.up:
                self.plan.corrupt_records(router)
        self._forward_traffic(traffic, report)
        report.injected = {
            kind: count - before.get(kind, 0)
            for kind, count in self.plan.counts.items()
            if count != before.get(kind, 0)
        }
        self.round_index += 1
        return report

    def run(self, rounds: int, traffic_per_round: int = 32) -> FaultReport:
        """Drive ``rounds`` rounds under the plan; return the report."""
        report = FaultReport(
            plan=self.plan.describe(),
            guard_enabled=self.guard_policy is not None,
            policy=(
                self.guard_policy.as_dict()
                if self.guard_policy is not None
                else None
            ),
            baseline_accesses=self.baseline,
        )
        previous_plan = self.network.fault_plan
        self.network.fault_plan = self.plan
        try:
            for _ in range(rounds):
                report.rounds.append(self.run_round(traffic_per_round))
        finally:
            self.network.fault_plan = previous_plan
            self.network.down_links = set()
            for router in self.network.routers.values():
                if not router.up:
                    router.restart()
        report.faults_injected = dict(self.plan.counts)
        report.total_hops = self._total_hops
        for name in sorted(self._clue_routers):
            guards = self._clue_routers[name].guard_reports()
            if guards:
                report.guards[name] = {
                    str(upstream): stats for upstream, stats in guards.items()
                }
        return report

    def __repr__(self) -> str:
        return "FaultEngine(%d routers, round=%d, guard=%s)" % (
            len(self._clue_routers),
            self.round_index,
            self.guard_policy is not None,
        )


def build_fault_scenario(
    routers: int = 5,
    per_node: int = 40,
    seed: int = 0,
    technique: str = "patricia",
    *,
    flip_rate: float = 0.0,
    scramble_rate: float = 0.0,
    byzantine_routers: int = 0,
    lie_mode: str = "random",
    byzantine_rate: float = 1.0,
    record_rate: float = 0.0,
    record_burst: int = 1,
    crashes: int = 0,
    link_downs: int = 0,
    rounds: int = 8,
) -> Tuple[object, FaultPlan]:
    """A ready-to-attack (network, plan) pair — the CLI/experiment entry.

    Mirrors :func:`repro.churn.engine.build_churn_scenario`: a mesh of
    clue routers over a private metrics registry, converged path-vector
    routes, every adjacency registered (so the Advance method — the one
    a lying clue can actually endanger — is in play on every link).
    Byzantine routers are the first ``byzantine_routers`` names in
    sorted order; crash and link-down schedules are derived from the
    seed and spread over ``rounds``.
    """
    from repro.faults.inject import random_topology_events
    from repro.netsim.network import Network
    from repro.routing.topology import mesh_topology, originate_prefixes
    from repro.routing.pathvector import PathVectorRouting
    from repro.telemetry.instruments import LookupInstruments
    from repro.telemetry.registry import MetricsRegistry

    if routers < 2:
        raise ValueError("a fault scenario needs at least two routers")
    graph = mesh_topology(routers, degree=min(3, routers - 1), seed=seed)
    assignment = originate_prefixes(graph, per_node=per_node, seed=seed + 1)
    del assignment  # origins only matter for churn; routes suffice here
    routing = PathVectorRouting(graph)
    routing.run()
    network = Network.from_pathvector(
        routing,
        technique=technique,
        instruments=LookupInstruments(MetricsRegistry()),
    )
    names = sorted(network.routers)
    byzantine = {
        name: lie_mode for name in names[: max(0, byzantine_routers)]
    }
    crash_events, link_events = random_topology_events(
        names, rounds, crashes=crashes, link_downs=link_downs, seed=seed
    )
    plan = FaultPlan(
        seed=seed,
        flip_rate=flip_rate,
        scramble_rate=scramble_rate,
        byzantine=byzantine,
        byzantine_rate=byzantine_rate,
        record_rate=record_rate,
        record_burst=record_burst,
        link_downs=link_events,
        crashes=crash_events,
    )
    return network, plan
