"""Exceptions raised by the addressing layer."""


class AddressError(ValueError):
    """Base class for malformed addresses and prefixes."""


class AddressParseError(AddressError):
    """A textual address or prefix could not be parsed."""


class PrefixLengthError(AddressError):
    """A prefix length is outside ``[0, width]``."""


class WidthMismatchError(AddressError):
    """Two objects of different address families were combined."""
