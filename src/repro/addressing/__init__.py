"""Address-family substrate: exact bit-string addresses and prefixes."""

from repro.addressing.errors import (
    AddressError,
    AddressParseError,
    PrefixLengthError,
    WidthMismatchError,
)
from repro.addressing.ip import (
    CLUE_BITS,
    IPV4_WIDTH,
    IPV6_WIDTH,
    Address,
    Prefix,
    clue_field_width,
    format_ipv4,
    format_ipv6,
    longest_common_prefix,
    parse_ipv4,
    parse_ipv6,
    sort_key,
)

__all__ = [
    "Address",
    "AddressError",
    "AddressParseError",
    "CLUE_BITS",
    "IPV4_WIDTH",
    "IPV6_WIDTH",
    "Prefix",
    "PrefixLengthError",
    "WidthMismatchError",
    "clue_field_width",
    "format_ipv4",
    "format_ipv6",
    "longest_common_prefix",
    "parse_ipv4",
    "parse_ipv6",
    "sort_key",
]
