"""IP addresses and prefixes as exact bit strings.

The whole reproduction manipulates destination addresses and routing-table
prefixes as *bit strings*: a prefix is the pair ``(bits, length)`` where
``bits`` holds the leading ``length`` bits of the address right-aligned in an
integer.  This representation makes trie construction, longest-prefix
matching and the paper's clue encoding (a 5-bit pointer giving the number of
leading destination bits that form the clue) direct and unambiguous.

Both IPv4 (width 32) and IPv6 (width 128) are supported; the family is
carried explicitly as ``width`` so that the same code exercises the paper's
IPv6 scalability argument (7 clue bits instead of 5).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.addressing.errors import (
    AddressParseError,
    PrefixLengthError,
    WidthMismatchError,
)

IPV4_WIDTH = 32
IPV6_WIDTH = 128

#: Number of header bits needed to encode a clue (a prefix length) for each
#: address family, per the paper's abstract: 5 bits for IPv4, 7 for IPv6.
CLUE_BITS = {IPV4_WIDTH: 5, IPV6_WIDTH: 7}


def _check_width(width: int) -> None:
    if width not in (IPV4_WIDTH, IPV6_WIDTH):
        raise WidthMismatchError(
            "width must be 32 (IPv4) or 128 (IPv6), got %r" % (width,)
        )


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 text into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressParseError("IPv4 address needs 4 octets: %r" % (text,))
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressParseError("bad IPv4 octet %r in %r" % (part, text))
        octet = int(part)
        if octet > 255:
            raise AddressParseError("IPv4 octet out of range in %r" % (text,))
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer as dotted-quad text."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv6(text: str) -> int:
    """Parse (possibly ``::``-compressed) IPv6 text into a 128-bit integer."""
    if text.count("::") > 1:
        raise AddressParseError("more than one '::' in %r" % (text,))
    if "::" in text:
        head, tail = text.split("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise AddressParseError("invalid '::' compression in %r" % (text,))
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise AddressParseError("IPv6 address needs 8 groups: %r" % (text,))
    value = 0
    for group in groups:
        if not group or len(group) > 4:
            raise AddressParseError("bad IPv6 group %r in %r" % (group, text))
        try:
            word = int(group, 16)
        except ValueError:
            raise AddressParseError("bad IPv6 group %r in %r" % (group, text))
        value = (value << 16) | word
    return value


def format_ipv6(value: int) -> str:
    """Format a 128-bit integer as uncompressed lower-case IPv6 text."""
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]
    return ":".join("%x" % group for group in groups)


class Address:
    """A full destination address: ``width`` bits stored in an integer."""

    __slots__ = ("value", "width")

    def __init__(self, value: int, width: int = IPV4_WIDTH):
        _check_width(width)
        if not 0 <= value < (1 << width):
            raise AddressParseError(
                "address value out of range for width %d" % width
            )
        self.value = value
        self.width = width

    @classmethod
    def parse(cls, text: str) -> "Address":
        """Parse IPv4 dotted-quad or IPv6 colon-hex text."""
        if ":" in text:
            return cls(parse_ipv6(text), IPV6_WIDTH)
        return cls(parse_ipv4(text), IPV4_WIDTH)

    def bit(self, index: int) -> int:
        """Bit ``index`` counted from the most significant bit (0-based)."""
        if not 0 <= index < self.width:
            raise IndexError("bit index %d out of range" % index)
        return (self.value >> (self.width - 1 - index)) & 1

    def leading_bits(self, length: int) -> int:
        """The ``length`` most significant bits, right-aligned."""
        if not 0 <= length <= self.width:
            raise PrefixLengthError("length %d out of range" % length)
        return self.value >> (self.width - length) if length else 0

    def prefix(self, length: int) -> "Prefix":
        """The length-``length`` prefix of this address."""
        return Prefix(self.leading_bits(length), length, self.width)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Address)
            and self.value == other.value
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash((self.value, self.width))

    def __repr__(self) -> str:
        return "Address(%s)" % str(self)

    def __str__(self) -> str:
        if self.width == IPV4_WIDTH:
            return format_ipv4(self.value)
        return format_ipv6(self.value)


class Prefix:
    """An address prefix: the leading ``length`` bits of an address.

    ``bits`` holds those bits right-aligned, so the prefix ``10*`` (binary)
    is ``Prefix(0b10, 2)``.  Prefixes are immutable, hashable and totally
    ordered by ``(length, bits)`` which makes them usable as dict keys and
    sortable for the range-based search algorithms.
    """

    __slots__ = ("bits", "length", "width")

    def __init__(self, bits: int, length: int, width: int = IPV4_WIDTH):
        _check_width(width)
        if not 0 <= length <= width:
            raise PrefixLengthError(
                "prefix length %d out of [0, %d]" % (length, width)
            )
        if not 0 <= bits < (1 << length) if length else bits != 0:
            raise AddressParseError(
                "prefix bits 0x%x do not fit in %d bits" % (bits, length)
            )
        self.bits = bits
        self.length = length
        self.width = width

    @classmethod
    def root(cls, width: int = IPV4_WIDTH) -> "Prefix":
        """The empty (default-route) prefix."""
        return cls(0, 0, width)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` (IPv4) or ``h:h::/len`` (IPv6) text."""
        if "/" not in text:
            raise AddressParseError("prefix needs '/length': %r" % (text,))
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressParseError("bad prefix length in %r" % (text,))
        length = int(len_text)
        address = Address.parse(addr_text)
        if length > address.width:
            raise PrefixLengthError(
                "prefix length %d exceeds width %d" % (length, address.width)
            )
        trailing = address.value & ((1 << (address.width - length)) - 1)
        if trailing:
            raise AddressParseError(
                "host bits set below /%d in %r" % (length, text)
            )
        return cls(address.leading_bits(length), length, address.width)

    @classmethod
    def from_bitstring(cls, text: str, width: int = IPV4_WIDTH) -> "Prefix":
        """Build a prefix from a literal bit string like ``"1011"``."""
        if text and set(text) - {"0", "1"}:
            raise AddressParseError("bit string must be 0/1: %r" % (text,))
        bits = int(text, 2) if text else 0
        return cls(bits, len(text), width)

    @classmethod
    def from_address(
        cls, address: Address, length: int
    ) -> "Prefix":
        """The length-``length`` prefix of ``address``."""
        return address.prefix(length)

    def bit(self, index: int) -> int:
        """Bit ``index`` of the prefix, 0-based from its first bit."""
        if not 0 <= index < self.length:
            raise IndexError("bit index %d out of range" % index)
        return (self.bits >> (self.length - 1 - index)) & 1

    def bitstring(self) -> str:
        """The prefix as a literal bit string (empty for the root)."""
        if not self.length:
            return ""
        return format(self.bits, "0%db" % self.length)

    def child(self, bit: int) -> "Prefix":
        """The prefix extended by one bit."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        if self.length >= self.width:
            raise PrefixLengthError("cannot extend a full-width prefix")
        return Prefix((self.bits << 1) | bit, self.length + 1, self.width)

    def parent(self) -> "Prefix":
        """The prefix shortened by one bit."""
        if not self.length:
            raise PrefixLengthError("the root prefix has no parent")
        return Prefix(self.bits >> 1, self.length - 1, self.width)

    def truncate(self, length: int) -> "Prefix":
        """The leading-``length``-bit prefix of this prefix."""
        if not 0 <= length <= self.length:
            raise PrefixLengthError(
                "cannot truncate /%d to /%d" % (self.length, length)
            )
        return Prefix(self.bits >> (self.length - length), length, self.width)

    def is_prefix_of(self, other: "Prefix") -> bool:
        """True if ``other`` extends (or equals) this prefix."""
        if self.width != other.width:
            raise WidthMismatchError("mixed address families")
        if self.length > other.length:
            return False
        return other.bits >> (other.length - self.length) == self.bits

    def matches(self, address: Address) -> bool:
        """True if ``address`` starts with this prefix."""
        if self.width != address.width:
            raise WidthMismatchError("mixed address families")
        return address.leading_bits(self.length) == self.bits

    def common_with(self, other: "Prefix") -> "Prefix":
        """Longest common prefix of two prefixes."""
        if self.width != other.width:
            raise WidthMismatchError("mixed address families")
        limit = min(self.length, other.length)
        common = 0
        while common < limit and self.bit(common) == other.bit(common):
            common += 1
        return self.truncate(common)

    def network_address(self) -> Address:
        """The lowest address covered by the prefix."""
        return Address(self.bits << (self.width - self.length), self.width)

    def broadcast_address(self) -> Address:
        """The highest address covered by the prefix."""
        low = self.bits << (self.width - self.length)
        return Address(low | ((1 << (self.width - self.length)) - 1), self.width)

    def address_range(self) -> Tuple[int, int]:
        """Inclusive integer range ``[low, high]`` covered by the prefix."""
        low = self.bits << (self.width - self.length)
        high = low | ((1 << (self.width - self.length)) - 1)
        return low, high

    def ancestors(self) -> Iterator["Prefix"]:
        """All strict ancestors, from the immediate parent up to the root."""
        current = self
        while current.length:
            current = current.parent()
            yield current

    def first_address(self) -> Address:
        """Alias of :meth:`network_address` (readability in tests)."""
        return self.network_address()

    def random_address(self, rng) -> Address:
        """A uniform random address covered by this prefix."""
        host_bits = self.width - self.length
        host = rng.getrandbits(host_bits) if host_bits else 0
        return Address((self.bits << host_bits) | host, self.width)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Prefix)
            and self.bits == other.bits
            and self.length == other.length
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash((self.bits, self.length, self.width))

    def __lt__(self, other: "Prefix") -> bool:
        if self.width != other.width:
            raise WidthMismatchError("mixed address families")
        return (self.length, self.bits) < (other.length, other.bits)

    def __le__(self, other: "Prefix") -> bool:
        return self == other or self < other

    def __repr__(self) -> str:
        return "Prefix(%s)" % str(self)

    def __str__(self) -> str:
        if self.width == IPV4_WIDTH:
            return "%s/%d" % (
                format_ipv4(self.bits << (self.width - self.length)),
                self.length,
            )
        return "%s/%d" % (
            format_ipv6(self.bits << (self.width - self.length)),
            self.length,
        )


def longest_common_prefix(a: Prefix, b: Prefix) -> Prefix:
    """Module-level convenience wrapper around :meth:`Prefix.common_with`."""
    return a.common_with(b)


def clue_field_width(width: int) -> int:
    """Header bits needed to carry a clue for an address family.

    Per the paper, a clue is just the number of leading destination-address
    bits that form the sender's BMP, so 5 bits suffice for IPv4 (lengths
    0..32) and 7 for IPv6 (lengths 0..128).
    """
    _check_width(width)
    return CLUE_BITS[width]


def sort_key(prefix: Prefix) -> Tuple[int, int]:
    """Sort key ordering prefixes by (length, bits)."""
    return prefix.length, prefix.bits
