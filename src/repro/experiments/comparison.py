"""The 15-method comparison matrix of the paper's §6 (Tables 4–9).

For one ordered router pair (sender → receiver), the harness measures the
average number of memory references at the *receiving* router over a
stream of sampled destinations, for every combination of

* the five baselines (regular, patricia, binary, 6-way, log W), and
* the three modes (*common* = no clue, *+Simple*, *+Advance*).

Every lookup is additionally verified against a brute-force oracle, so a
benchmark run doubles as a correctness sweep.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.addressing import Address, Prefix
from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.core.simple import SimpleMethod
from repro.experiments.sampling import paper_destination_sample
from repro.lookup import BASELINES, PAPER_BASELINES
from repro.lookup.counters import METHOD_FULL, MemoryCounter
from repro.tablegen.synthetic import Entry
from repro.trie.binary_trie import BinaryTrie
from repro.trie.overlay import TrieOverlay

MODES = ("common", "simple", "advance")


class PairComparison:
    """Results of one sender→receiver comparison run."""

    def __init__(
        self,
        sender_name: str,
        receiver_name: str,
        packets: int,
        averages: Dict[Tuple[str, str], float],
        mismatches: int,
        statistics: Dict[str, int],
    ):
        self.sender_name = sender_name
        self.receiver_name = receiver_name
        self.packets = packets
        #: (technique, mode) → average memory references per packet.
        self.averages = averages
        #: lookups disagreeing with the oracle (must be 0).
        self.mismatches = mismatches
        #: Table 1–3 style pair statistics.
        self.statistics = statistics

    def average(self, technique: str, mode: str) -> float:
        """Average references for one of the 15 schemes."""
        return self.averages[(technique, mode)]

    def speedup(self, technique: str, mode: str = "advance") -> float:
        """How many times fewer references than the clue-less baseline."""
        baseline = self.averages[(technique, "common")]
        other = self.averages[(technique, mode)]
        return baseline / other if other else float("inf")

    def __repr__(self) -> str:
        return "PairComparison(%s->%s, %d packets)" % (
            self.sender_name,
            self.receiver_name,
            self.packets,
        )


def compare_pair(
    sender_entries: Sequence[Entry],
    receiver_entries: Sequence[Entry],
    packets: int = 10000,
    seed: int = 0,
    techniques: Iterable[str] = tuple(PAPER_BASELINES),
    sender_name: str = "R1",
    receiver_name: str = "R2",
    width: int = 32,
    instruments=None,
) -> PairComparison:
    """Run the full matrix for one ordered pair.

    ``instruments`` (a :class:`repro.telemetry.LookupInstruments`)
    additionally streams every lookup into the registry, one series per
    scheme labelled ``receiver:technique+mode`` — so the §6 benchmark
    doubles as a telemetry source.  The default ``None`` keeps the inner
    loop untouched (one predicted branch per lookup).
    """
    techniques = tuple(techniques)
    receiver = ReceiverState(receiver_entries, width)
    sender_trie = BinaryTrie.from_prefixes(sender_entries, width)
    overlay = TrieOverlay(sender_trie, receiver.trie)
    samples = paper_destination_sample(
        sender_entries, sender_trie, receiver.trie, packets, seed
    )

    algorithms = {
        name: BASELINES[name](receiver.entries, width) for name in techniques
    }
    clue_universe = list(sender_trie.prefixes())
    lookups: Dict[Tuple[str, str], ClueAssistedLookup] = {}
    for name in techniques:
        simple_table = SimpleMethod(receiver, name).build_table(clue_universe)
        advance_table = AdvanceMethod(sender_trie, receiver, name).build_table(
            clue_universe
        )
        lookups[(name, "simple")] = ClueAssistedLookup(
            algorithms[name], simple_table
        )
        lookups[(name, "advance")] = ClueAssistedLookup(
            algorithms[name], advance_table
        )

    scheme_metrics = None
    if instruments is not None:
        scheme_metrics = {
            (name, mode): instruments.bind_router(
                "%s:%s+%s" % (receiver_name, name, mode)
            )
            for name in techniques
            for mode in MODES
        }

    totals: Dict[Tuple[str, str], int] = {
        (name, mode): 0 for name in techniques for mode in MODES
    }
    mismatches = 0
    for destination, clue in samples:
        oracle_prefix, _hop = receiver.best_match(destination)
        for name in techniques:
            counter = MemoryCounter()
            result = algorithms[name].lookup(destination, counter)
            totals[(name, "common")] += counter.accesses
            if result.prefix != oracle_prefix:
                mismatches += 1
            if scheme_metrics is not None:
                scheme_metrics[(name, "common")].record_lookup(
                    METHOD_FULL, counter.accesses
                )
            for mode in ("simple", "advance"):
                counter = MemoryCounter()
                result = lookups[(name, mode)].lookup(destination, clue, counter)
                totals[(name, mode)] += counter.accesses
                if result.prefix != oracle_prefix:
                    mismatches += 1
                if scheme_metrics is not None:
                    scheme_metrics[(name, mode)].record_lookup(
                        counter.method, counter.accesses
                    )

    averages = {key: total / packets for key, total in totals.items()}
    return PairComparison(
        sender_name,
        receiver_name,
        packets,
        averages,
        mismatches,
        overlay.statistics(),
    )


def compare_pairs(
    tables: Dict[str, Sequence[Entry]],
    pairs: Sequence[Tuple[str, str]],
    packets: int = 10000,
    seed: int = 0,
    techniques: Iterable[str] = tuple(PAPER_BASELINES),
    width: int = 32,
) -> List[PairComparison]:
    """Run the matrix for several named ordered pairs (Tables 4–9)."""
    results = []
    for index, (sender, receiver) in enumerate(pairs):
        results.append(
            compare_pair(
                tables[sender],
                tables[receiver],
                packets=packets,
                seed=seed + index,
                techniques=techniques,
                sender_name=sender,
                receiver_name=receiver,
                width=width,
            )
        )
    return results
