"""Experiment harness: §6 sampling, comparisons, rendering, paper data."""

from repro.experiments.churn import churn_sweep
from repro.experiments.faults import GUARD_POLICIES, fault_sweep
from repro.experiments.comparison import (
    MODES,
    PairComparison,
    compare_pair,
    compare_pairs,
)
from repro.experiments.fastbench import (
    run_fastpath_bench,
    sample_destination_values,
)
from repro.experiments.paperdata import (
    HEADER_BITS,
    SHAPE_CLAIMS,
    SPACE_CLAIMS,
    TABLE1_PREFIX_COUNTS,
    TABLE2_PROBLEMATIC_CLUES,
    TABLE3_INTERSECTIONS,
)
from repro.experiments.render import (
    format_table,
    render_comparison,
    render_comparison_matrix,
    render_paper_vs_measured,
)
from repro.experiments.sampling import (
    paper_destination_sample,
    uniform_destination_sample,
    zipf_destination_sample,
)
from repro.experiments.scale import DEFAULT_SCALE, get_scale, scaled
from repro.experiments.sweeps import (
    SweepPoint,
    scaling_sweep,
    similarity_sweep,
)

__all__ = [
    "DEFAULT_SCALE",
    "HEADER_BITS",
    "MODES",
    "PairComparison",
    "SHAPE_CLAIMS",
    "SPACE_CLAIMS",
    "TABLE1_PREFIX_COUNTS",
    "TABLE2_PROBLEMATIC_CLUES",
    "TABLE3_INTERSECTIONS",
    "GUARD_POLICIES",
    "churn_sweep",
    "compare_pair",
    "fault_sweep",
    "compare_pairs",
    "format_table",
    "get_scale",
    "paper_destination_sample",
    "render_comparison",
    "render_comparison_matrix",
    "render_paper_vs_measured",
    "run_fastpath_bench",
    "sample_destination_values",
    "scaled",
    "scaling_sweep",
    "similarity_sweep",
    "SweepPoint",
    "uniform_destination_sample",
    "zipf_destination_sample",
]
