"""Plain-text rendering of experiment results, in the paper's layout."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.comparison import MODES, PairComparison
from repro.lookup import BASELINES


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    text_rows: List[List[str]] = []
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width %d != header width %d" % (len(row), columns))
        cells = [
            "%.3f" % cell if isinstance(cell, float) else str(cell) for cell in row
        ]
        text_rows.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    line = "+".join("-" * (width + 2) for width in widths)
    line = "+%s+" % line
    out: List[str] = []
    if title:
        out.append(title)
    out.append(line)
    out.append(
        "|"
        + "|".join(
            " %s " % str(header).ljust(widths[index])
            for index, header in enumerate(headers)
        )
        + "|"
    )
    out.append(line)
    for cells in text_rows:
        out.append(
            "|"
            + "|".join(
                " %s " % cell.rjust(widths[index]) for index, cell in enumerate(cells)
            )
            + "|"
        )
    out.append(line)
    return "\n".join(out)


def _techniques_of(result: PairComparison) -> List[str]:
    """The techniques actually present in a result, in canonical order."""
    present = {technique for technique, _mode in result.averages}
    return [technique for technique in BASELINES if technique in present]


def render_comparison(result: PairComparison) -> str:
    """One pair's 15-scheme matrix, rows grouped as in Tables 4–9."""
    rows = []
    for mode in MODES:
        for technique in _techniques_of(result):
            label = technique if mode == "common" else "%s+%s" % (technique, mode)
            rows.append((label, result.average(technique, mode)))
    return format_table(
        ["scheme", "avg memory references"],
        rows,
        title="Average memory accesses, %s -> %s (%d packets)"
        % (result.sender_name, result.receiver_name, result.packets),
    )


def render_comparison_matrix(results: Sequence[PairComparison]) -> str:
    """All pairs side by side: one column per pair, one row per scheme."""
    headers = ["scheme"] + [
        "%s->%s" % (result.sender_name, result.receiver_name) for result in results
    ]
    techniques = _techniques_of(results[0]) if results else []
    rows: List[List[object]] = []
    for mode in MODES:
        for technique in techniques:
            label = technique if mode == "common" else "%s+%s" % (technique, mode)
            row: List[object] = [label]
            for result in results:
                row.append(result.average(technique, mode))
            rows.append(row)
    return format_table(headers, rows, title="Tables 4-9: average memory accesses")


def render_paper_vs_measured(
    rows: Iterable[Tuple[str, object, object]],
    title: str = "paper vs measured",
) -> str:
    """Three-column comparison table."""
    return format_table(
        ["quantity", "paper", "measured"], [list(row) for row in rows], title=title
    )
