"""The paper's reported numbers, for side-by-side comparison.

Everything the published text states quantitatively is recorded here so
benchmarks can print "paper vs measured" rows.  Tables 4–9's cell values
are not reproduced in the available text (only the summary ratios are),
so for those the *shape claims* below are the reference.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Table 1 — total number of prefixes in each snapshot.
TABLE1_PREFIX_COUNTS: Dict[str, int] = {
    "MAE-East": 42986,
    "MAE-West": 23123,
    "Paix": 5974,
    "AT&T-1": 23414,
    "AT&T-2": 60475,
    "ISP-B-1": 56034,
    "ISP-B-2": 55959,
}

#: Table 2 — problematic clues (Claim 1 fails at the receiver) per
#: ordered (sender, receiver) pair.
TABLE2_PROBLEMATIC_CLUES: Dict[Tuple[str, str], int] = {
    ("MAE-East", "MAE-West"): 288,
    ("MAE-East", "Paix"): 35,
    ("Paix", "MAE-East"): 411,
    ("AT&T-1", "AT&T-2"): 155,
    ("AT&T-2", "AT&T-1"): 52,
    ("ISP-B-1", "ISP-B-2"): 66,
    ("ISP-B-2", "ISP-B-1"): 38,
}

#: Table 3 — prefixes appearing in both tables of a pair.
TABLE3_INTERSECTIONS: Dict[Tuple[str, str], int] = {
    ("MAE-East", "MAE-West"): 23382,
    ("MAE-East", "Paix"): 5899,
    ("MAE-West", "Paix"): 5814,
    ("AT&T-1", "AT&T-2"): 23381,
    ("ISP-B-1", "ISP-B-2"): 55540,
}

#: §6 summary claims (Tables 4–9 are only published as these ratios).
SHAPE_CLAIMS: Dict[str, float] = {
    # Advance combined with any scheme: near-optimal references.
    "advance_avg_max": 1.1,
    # "1.05 in the unfavorable case" (abstract).
    "advance_unfavorable": 1.05,
    # "about 22 times better than the simple trie scheme".
    "advance_vs_regular": 22.0,
    # "3.5 times better than the Log W technique".
    "advance_vs_logw": 3.5,
    # Simple: "about 10 times better than the standard methods".
    "simple_vs_regular": 10.0,
    # "about 50% improvement over the Log W method".
    "simple_vs_logw": 1.5,
    # Claim 1 applies to "95% to 99.5%" of clues.
    "claim1_fraction_low": 0.95,
    "claim1_fraction_high": 0.995,
}

#: §3.5 space accounting.
SPACE_CLAIMS: Dict[str, float] = {
    "entries": 60000,
    "average_entry_bytes": 9.0,
    "total_kilobytes_low": 500.0,
    "total_kilobytes_high": 600.0,
    # "less than 10%" of Advance entries need the Ptr field.
    "pointer_fraction_max": 0.10,
}

#: Header cost (abstract): clue field bits per family.
HEADER_BITS = {"ipv4": 5, "ipv6": 7, "index_field": 16}
