"""The REPRO_SCALE knob shared by benchmarks and examples.

Paper-sized tables (up to ~60 000 prefixes) make the full 15-scheme
matrix slow in pure Python; ``REPRO_SCALE`` (default 0.1) multiplies
table sizes and packet counts so the entire suite runs in minutes.  Set
``REPRO_SCALE=1.0`` for a faithful-size run.
"""

from __future__ import annotations

import os

DEFAULT_SCALE = 0.1
ENV_VAR = "REPRO_SCALE"


def get_scale(default: float = DEFAULT_SCALE) -> float:
    """The configured scale factor (``REPRO_SCALE``, else ``default``)."""
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError("%s must be a number, got %r" % (ENV_VAR, raw))
    if value <= 0:
        raise ValueError("%s must be positive, got %r" % (ENV_VAR, raw))
    return value


def scaled(count: int, minimum: int = 1, scale: float = None) -> int:
    """``count`` scaled by the knob, floored at ``minimum``."""
    factor = get_scale() if scale is None else scale
    return max(int(round(count * factor)), minimum)
