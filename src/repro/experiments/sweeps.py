"""Parameter sweeps around the paper's operating point.

The paper evaluates at one point of a two-dimensional space: *how similar
neighbouring tables are* and *how big tables are*.  These sweeps map the
whole neighbourhood:

* :func:`similarity_sweep` — degrade table similarity (more private
  more-specifics at the receiver) and watch the problematic-clue fraction
  and the Advance cost move.  The scheme's value depends on similarity;
  this locates the cliff.
* :func:`scaling_sweep` — grow the tables and watch the clue-less
  baselines climb (log N / depth effects) while the clue cost stays flat.
  This is the asymptotic version of the paper's "order of magnitude"
  claim.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.lookup import BASELINES
from repro.lookup.counters import MemoryCounter
from repro.tablegen.neighbors import NeighborProfile, derive_neighbor
from repro.tablegen.synthetic import generate_table
from repro.trie.binary_trie import BinaryTrie


class SweepPoint:
    """One sampled point of a sweep."""

    __slots__ = ("parameter", "metrics")

    def __init__(self, parameter: float, metrics: Dict[str, float]):
        self.parameter = parameter
        self.metrics = metrics

    def __repr__(self) -> str:
        return "SweepPoint(%r, %r)" % (self.parameter, self.metrics)


def _pair_cost(
    sender_entries,
    receiver_entries,
    packets: int,
    seed: int,
    technique: str,
) -> Dict[str, float]:
    """Clue-less vs Advance cost and the problematic fraction for a pair."""
    sender_trie = BinaryTrie.from_prefixes(sender_entries)
    receiver = ReceiverState(receiver_entries)
    method = AdvanceMethod(sender_trie, receiver, technique)
    base = BASELINES[technique](receiver.entries)
    assisted = ClueAssistedLookup(base, method.build_table())

    rng = random.Random(seed)
    entries = list(sender_entries)
    clueless = MemoryCounter()
    clued = MemoryCounter()
    measured = 0
    while measured < packets:
        prefix, _hop = entries[rng.randrange(len(entries))]
        destination = prefix.random_address(rng)
        clue = sender_trie.best_prefix(destination)
        if clue is None:
            continue
        base.lookup(destination, clueless)
        assisted.lookup(destination, clue, clued)
        measured += 1
    return {
        "clueless": clueless.accesses / packets,
        "advance": clued.accesses / packets,
        "problematic_fraction": method.problematic_fraction(),
    }


def similarity_sweep(
    specific_fractions: Sequence[float],
    table_size: int = 2000,
    packets: int = 500,
    seed: int = 0,
    technique: str = "patricia",
) -> List[SweepPoint]:
    """Sweep receiver-private more-specifics (table dissimilarity)."""
    sender = generate_table(table_size, seed=seed)
    points: List[SweepPoint] = []
    for fraction in specific_fractions:
        if fraction < 0:
            raise ValueError("fractions cannot be negative")
        receiver = derive_neighbor(
            sender,
            NeighborProfile(add_specifics=fraction),
            seed=seed + 1,
        )
        metrics = _pair_cost(sender, receiver, packets, seed + 2, technique)
        points.append(SweepPoint(fraction, metrics))
    return points


def scaling_sweep(
    table_sizes: Sequence[int],
    packets: int = 500,
    seed: int = 0,
    techniques: Sequence[str] = ("regular", "logw"),
) -> List[SweepPoint]:
    """Sweep table size; report clue-less baselines vs Advance."""
    points: List[SweepPoint] = []
    for size in table_sizes:
        if size < 10:
            raise ValueError("table sizes below 10 are not meaningful")
        sender = generate_table(size, seed=seed)
        receiver = derive_neighbor(sender, NeighborProfile(), seed=seed + 1)
        metrics: Dict[str, float] = {}
        for technique in techniques:
            cost = _pair_cost(sender, receiver, packets, seed + 2, technique)
            metrics["%s_clueless" % technique] = cost["clueless"]
            metrics["%s_advance" % technique] = cost["advance"]
        points.append(SweepPoint(size, metrics))
    return points
