"""The fault sweep: forwarding safety and cost under adversity.

Crosses fault intensity with guard policy over the same mesh fabric.
Each point attacks an identically seeded scenario with in-flight clue
corruption, Byzantine (systematically lying) neighbours, and clue-table
record corruption, then reports whether forwarding stayed oracle-correct
and what the adversity cost in memory references.

Three policies per fault rate:

* ``off`` — no guard at all: clue answers are trusted blindly.  Wrong
  hops appear as soon as faults do; this column is the *control* that
  shows the guard is necessary;
* ``guard`` — validity checks, Advance verification, and record seals,
  but no quarantine: every bad clue still costs a probe before the
  fallback;
* ``quarantine`` — the full policy: repeat offenders stop being
  consulted, so their packets drop straight to the clueless-baseline
  cost.

The acceptance shape: ``wrong_hops`` is zero everywhere except the
``off`` column; ``degradation`` climbs toward (never meaningfully past)
1.0 as the fault rate grows; and under the quarantine policy Byzantine
upstreams show ``quarantines > 0``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.sweeps import SweepPoint
from repro.faults import GuardPolicy, build_fault_scenario

#: Guard policies crossed against every fault rate.
GUARD_POLICIES = ("off", "guard", "quarantine")


def _policy_for(name: str):
    if name == "off":
        return None
    if name == "guard":
        return GuardPolicy(quarantine_enabled=False)
    if name == "quarantine":
        return GuardPolicy()
    raise ValueError(
        "unknown guard policy %r (expected one of %s)"
        % (name, ", ".join(GUARD_POLICIES))
    )


def fault_sweep(
    fault_rates: Sequence[float],
    policies: Sequence[str] = GUARD_POLICIES,
    routers: int = 5,
    per_node: int = 40,
    rounds: int = 8,
    traffic_per_round: int = 100,
    byzantine_routers: int = 1,
    lie_mode: str = "shorter",
    seed: int = 0,
    technique: str = "patricia",
) -> List[SweepPoint]:
    """Sweep (fault rate) × (guard policy).

    ``fault_rates`` scales every probabilistic injector together: a rate
    ``f`` means clue flips and scrambles each fire at ``f`` per link
    traversal and each learned table suffers a corruption event at
    ``2 f`` per round.  Byzantine lying is systematic (every packet the
    named routers resolve), so the sweep exercises the quarantine path
    at every rate.  ``parameter`` is the ``(fault_rate, policy)`` pair.
    """
    points: List[SweepPoint] = []
    for rate in fault_rates:
        if not 0.0 <= rate <= 0.5:
            raise ValueError(
                "fault rates must be within [0, 0.5] (got %r)" % (rate,)
            )
        for policy_name in policies:
            policy = _policy_for(policy_name)
            network, plan = build_fault_scenario(
                routers=routers,
                per_node=per_node,
                seed=seed,
                technique=technique,
                flip_rate=rate,
                scramble_rate=rate / 2,
                byzantine_routers=byzantine_routers,
                lie_mode=lie_mode,
                record_rate=min(1.0, 2 * rate),
                rounds=rounds,
            )
            report = network.run_with_faults(
                plan,
                rounds=rounds,
                traffic_per_round=traffic_per_round,
                guard_policy=policy,
                seed=seed,
                # The sweep measures violations instead of raising, so
                # the "off" control column can show its wrong hops.
                hard_invariant=False,
            )
            points.append(
                SweepPoint(
                    (rate, policy_name),
                    {
                        "packets": float(report.packets()),
                        "faults": float(report.total_injected()),
                        "wrong_hops": float(report.wrong_hops()),
                        "rejections": float(report.rejections_total()),
                        "quarantines": float(report.quarantines_total()),
                        "healed": float(report.healed_records_total()),
                        "refs_per_packet": report.avg_accesses_per_packet(),
                        "baseline_refs": report.baseline_accesses,
                        "degradation": report.degradation_ratio(),
                    },
                )
            )
    return points
