"""The churn sweep: maintenance cost under live route updates (§3.4).

Crosses update rate with traffic rate over the same mesh fabric and
reports, per point, the amortised maintenance cost (clue entries rebuilt
per route update per pair) next to the full-rebuild cost a from-scratch
strategy would pay, plus the data-plane cost (memory references per
packet) actually observed while the churn was in flight.  The paper's
§3.4 position — maintain incrementally, never rebuild the world — is the
claim under test: the sweep passes where ``rebuilt_per_update`` stays
well below ``full_rebuild_cost`` at every operating point.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.churn import ChurnEngine, ChurnProfile, build_churn_scenario
from repro.experiments.sweeps import SweepPoint


def churn_sweep(
    update_rates: Sequence[float],
    traffic_rates: Sequence[int],
    routers: int = 5,
    per_node: int = 40,
    epochs: int = 12,
    seed: int = 0,
    technique: str = "patricia",
    rebuild_budget: int = None,
) -> List[SweepPoint]:
    """Sweep (mean updates per epoch) × (packets per epoch).

    Each point runs a fresh, identically seeded scenario so points differ
    only in their rates.  ``parameter`` is the ``(update_rate,
    traffic_rate)`` pair; metrics carry the §3.4 comparison.
    """
    points: List[SweepPoint] = []
    for update_rate in update_rates:
        if update_rate < 1:
            raise ValueError("update rates below 1 are not meaningful")
        for traffic_rate in traffic_rates:
            if traffic_rate < 0:
                raise ValueError("traffic rates cannot be negative")
            profile = ChurnProfile(burst_mean=update_rate)
            network, stream = build_churn_scenario(
                routers=routers,
                per_node=per_node,
                seed=seed,
                technique=technique,
                profile=profile,
            )
            engine = ChurnEngine(
                network,
                stream,
                rebuild_budget=rebuild_budget,
                seed=seed,
            )
            report = engine.run(epochs, traffic_per_epoch=traffic_rate)
            rebuilt_per_update = report.amortised_rebuilt_per_update()
            points.append(
                SweepPoint(
                    (update_rate, traffic_rate),
                    {
                        "updates": float(report.updates_applied()),
                        "refs_per_packet": report.avg_accesses_per_packet(),
                        "rebuilt_per_update": rebuilt_per_update,
                        "full_rebuild_cost": report.avg_table_entries,
                        "advantage": report.rebuild_advantage(),
                        "wrong_hops": float(report.wrong_hops()),
                        "epochs_converged": float(report.epochs_converged()),
                    },
                )
            )
    return points
