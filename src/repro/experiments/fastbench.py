"""The fastpath benchmark: scalar vs batched lookup throughput.

Builds the §6 sender/receiver pair at benchmark scale, certifies every
compiled structure against the object-graph lookups (the bench refuses
to time an uncertified table), then measures packets/sec and
memrefs/packet for the clueless Regular baseline, Simple, and Advance —
scalar loop vs one batched kernel call — and returns the
``BENCH_fastpath.json`` payload.  A ``layouts`` matrix additionally
certifies and measures each requested compiled layout (dense,
multibit4, multibit8): bytes-per-prefix against the empirical next-hop
entropy bound, memrefs/packet against the dense layout, and pps.

Timing uses an *injected* clock (``repro-clue bench-fastpath`` passes
``time.perf_counter``); the engine itself stays wall-clock-free so
seeded runs remain deterministic (RC103).  Without a clock only the
deterministic columns (memrefs/packet, certification) are filled in.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.addressing import Address, Prefix
from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.core.simple import SimpleMethod
from repro.fastpath.backend import HAVE_NUMPY, get_numpy
from repro.fastpath.certify import (
    CertificationError,
    certification_batch,
    certify_clue,
    certify_full,
)
from repro.fastpath.compile import compile_clue_table, compile_trie
from repro.fastpath.kernels import (
    as_destination_array,
    as_length_array,
    full_lookup_batch,
    lookup_batch,
)
from repro.fastpath.layouts import LAYOUTS, compile_layout, layout_stride
from repro.lookup.counters import MemoryCounter
from repro.lookup.regular import RegularTrieLookup
from repro.tablegen import NeighborProfile, derive_neighbor, generate_table
from repro.trie.binary_trie import BinaryTrie

Clock = Optional[Callable[[], float]]

ALGORITHMS = ("regular", "simple", "advance")


def sample_destination_values(
    entries, count: int, seed: int = 0, width: int = 32
) -> List[int]:
    """Numpy-native round-batched destinations under the sender's prefixes.

    One RNG round draws every prefix index and every host-bit block at
    once (no per-packet Python RNG calls); without numpy the stdlib RNG
    draws the same distribution sequentially.
    """
    entries = list(entries)
    if not entries:
        raise ValueError("the sender table is empty")
    np = get_numpy()
    if np is not None and width <= 32:
        rng = np.random.default_rng(seed)
        bits = np.asarray([p.bits for p, _ in entries], dtype=np.int64)
        lengths = np.asarray([p.length for p, _ in entries], dtype=np.int64)
        picks = rng.integers(0, len(entries), size=count)
        hosts = rng.integers(0, 1 << 32, size=count, dtype=np.uint32).astype(
            np.int64
        )
        host_bits = width - lengths[picks]
        values = (bits[picks] << host_bits) | (
            hosts & ((np.int64(1) << host_bits) - 1)
        )
        return [int(value) for value in values]
    rng = random.Random(seed)
    values = []
    for _ in range(count):
        prefix, _hop = entries[rng.randrange(len(entries))]
        values.append(prefix.random_address(rng).value)
    return values


def _build_fixture(table_size: int, seed: int, width: int = 32):
    sender_entries = generate_table(table_size, seed=seed, width=width)
    receiver_entries = derive_neighbor(
        sender_entries, NeighborProfile(), seed=seed + 1
    )
    sender_trie = BinaryTrie(width)
    for prefix, next_hop in sender_entries:
        sender_trie.insert(prefix, next_hop)
    state = ReceiverState(receiver_entries, width)
    clue_universe = list(sender_trie.prefixes())
    tables = {
        "simple": SimpleMethod(state, "regular").build_table(clue_universe),
        "advance": AdvanceMethod(sender_trie, state, "regular").build_table(
            clue_universe
        ),
    }
    return sender_entries, receiver_entries, sender_trie, state, tables


def _timed(
    clock: Clock, run: Callable[[], object], repeats: int = 1
) -> Tuple[object, Optional[float]]:
    """Best-of-``repeats`` timing: the minimum filters scheduler noise."""
    if clock is None:
        return run(), None
    start = clock()
    result = run()
    best = clock() - start
    for _ in range(repeats - 1):
        start = clock()
        run()
        best = min(best, clock() - start)
    return result, best


def _rates(
    packets: int, elapsed: Optional[float], total_refs: int
) -> Dict[str, object]:
    return {
        "elapsed_s": elapsed,
        "packets_per_sec": (
            packets / elapsed if elapsed else None
        ),
        "memrefs_per_packet": total_refs / packets if packets else 0.0,
    }


def next_hop_entropy_bits(entries) -> float:
    """Empirical next-hop entropy (bits/prefix) of a table's entries.

    The information-theoretic floor for the result side of any compiled
    layout: storing one next-hop label per prefix cannot take fewer than
    H bits/prefix on average (Rétvári et al., arXiv:1402.1194 §III), so
    the bench reports ``H / 8`` as ``entropy_bound_bytes_per_prefix``
    next to each layout's actual bytes-per-prefix.
    """
    counts: Dict[object, int] = {}
    for _prefix, next_hop in entries:
        key = repr(next_hop)
        counts[key] = counts.get(key, 0) + 1
    total = sum(counts.values())
    if total <= 1:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        share = count / total
        entropy -= share * math.log2(share)
    return entropy


def run_fastpath_bench(
    table_size: int = 20000,
    packets: int = 50000,
    seed: int = 42,
    width: int = 32,
    clock: Clock = None,
    force_python: bool = False,
    repeats: int = 3,
    layouts: Sequence[str] = ("dense",),
) -> Dict[str, object]:
    """Run the full scalar-vs-batched comparison; returns the JSON payload.

    ``layouts`` selects which compiled layouts get their own certified
    space/throughput section (the ``"layouts"`` key of the payload); the
    scalar-vs-batched ``"algorithms"`` section always runs on the dense
    layout, whose memref accounting is bit-identical to the scalar path.
    """
    for layout in layouts:
        if layout not in LAYOUTS:
            raise ValueError(
                "unknown layout %r; expected one of %s"
                % (layout, ", ".join(LAYOUTS))
            )
    (
        sender_entries,
        receiver_entries,
        sender_trie,
        state,
        tables,
    ) = _build_fixture(table_size, seed, width)
    ctrie = compile_trie(state.trie)
    compiled = {
        name: compile_clue_table(table, ctrie)
        for name, table in tables.items()
    }
    base = RegularTrieLookup(receiver_entries, width)
    scalars = {
        name: ClueAssistedLookup(
            RegularTrieLookup(receiver_entries, width), table
        )
        for name, table in tables.items()
    }

    # Certification first: no numbers for tables the kernels disagree on.
    cert_dsts, cert_lens = certification_batch(
        sender_trie,
        list(receiver_entries) + list(sender_entries),
        width=width,
        seed=seed,
    )
    checked = certify_full(ctrie, base, cert_dsts, force_python=force_python)
    for name in ("simple", "advance"):
        checked += certify_clue(
            compiled[name],
            scalars[name],
            cert_dsts,
            cert_lens,
            force_python=force_python,
        )

    values = sample_destination_values(sender_entries, packets, seed=seed + 2)
    addresses = [Address(value, width) for value in values]
    sender_bmps = [sender_trie.best_prefix(address) for address in addresses]
    clues: List[Optional[Prefix]] = [
        address.prefix(bmp.length) if bmp is not None else None
        for address, bmp in zip(addresses, sender_bmps)
    ]
    lens = [bmp.length if bmp is not None else -1 for bmp in sender_bmps]
    dsts = as_destination_array(values, width)
    clue_lens = as_length_array(lens, width)

    algorithms: Dict[str, Dict[str, object]] = {}
    counter = MemoryCounter()

    def scalar_regular() -> int:
        total = 0
        for address in addresses:
            counter.reset()
            base.lookup(address, counter)
            total += counter.accesses
        return total

    scalar_refs, scalar_elapsed = _timed(clock, scalar_regular, repeats)
    batched, batched_elapsed = _timed(
        clock,
        lambda: full_lookup_batch(ctrie, dsts, force_python=force_python),
        repeats,
    )
    batched_refs = int(sum(batched[1]))
    if batched_refs != scalar_refs:
        raise CertificationError(
            "memref totals diverged on the regular baseline"
        )
    algorithms["regular"] = _summary(
        packets, scalar_refs, scalar_elapsed, batched_refs, batched_elapsed
    )

    for name in ("simple", "advance"):
        scalar = scalars[name]
        ctable = compiled[name]

        def scalar_clue() -> int:
            total = 0
            lookup = scalar.lookup
            for address, clue in zip(addresses, clues):
                counter.reset()
                lookup(address, clue, counter)
                total += counter.accesses
            return total

        scalar_refs, scalar_elapsed = _timed(clock, scalar_clue, repeats)
        batched, batched_elapsed = _timed(
            clock,
            lambda: lookup_batch(
                ctable, dsts, clue_lens, force_python=force_python
            ),
            repeats,
        )
        batched_refs = int(sum(batched[3]))
        if batched_refs != scalar_refs:
            raise CertificationError(
                "memref totals diverged on %s" % name
            )
        algorithms[name] = _summary(
            packets, scalar_refs, scalar_elapsed, batched_refs, batched_elapsed
        )

    # ------------------------------------------------------------------
    # Layout matrix: per-layout certified space and throughput numbers.
    # The dense full-lookup memref total anchors the memrefs_vs_dense
    # ratio whether or not "dense" was requested.
    dense_full, _ = _timed(
        clock,
        lambda: full_lookup_batch(ctrie, dsts, force_python=force_python),
        1,
    )
    dense_full_refs = int(sum(dense_full[1]))
    prefix_count = max(1, len(receiver_entries))
    entropy_bits = next_hop_entropy_bits(receiver_entries)
    layout_sections: Dict[str, Dict[str, object]] = {}
    for layout in layouts:
        lay = compile_layout(ctrie, layout)
        ltable = (
            compiled["advance"] if lay is ctrie
            else compile_clue_table(tables["advance"], lay)
        )
        lanes = certify_full(lay, base, cert_dsts, force_python=force_python)
        lanes += certify_clue(
            ltable,
            scalars["advance"],
            cert_dsts,
            cert_lens,
            force_python=force_python,
        )
        checked += lanes
        full_result, full_elapsed = _timed(
            clock,
            lambda lay=lay: full_lookup_batch(
                lay, dsts, force_python=force_python
            ),
            repeats,
        )
        full_refs = int(sum(full_result[1]))
        clue_result, clue_elapsed = _timed(
            clock,
            lambda ltable=ltable: lookup_batch(
                ltable, dsts, clue_lens, force_python=force_python
            ),
            repeats,
        )
        clue_refs = int(sum(clue_result[3]))
        stride = layout_stride(lay)
        trie_nbytes = lay.nbytes()
        section: Dict[str, object] = {
            "stride": stride,
            "certified_lanes": lanes,
            "trie_nbytes": trie_nbytes,
            "table_nbytes": ltable.nbytes(),
            "pool_nbytes": lay.pool.nbytes(),
            "bytes_per_prefix": trie_nbytes / prefix_count,
            "entropy_bound_bytes_per_prefix": entropy_bits / 8.0,
            "full": _rates(packets, full_elapsed, full_refs),
            "clue": _rates(packets, clue_elapsed, clue_refs),
            "memrefs_vs_dense": (
                full_refs / dense_full_refs if dense_full_refs else None
            ),
        }
        if stride:
            # Stride layouts carry their dense base for resume walks.
            section["base_nbytes"] = lay.base.nbytes()
            section["leaf_entropy_bits"] = lay.leaf_entropy_bits()
            section["leaf_bits"] = lay.leaf_bits
            section["slot_bytes"] = lay.slot_bytes
            section["probe_bound"] = len(lay.level_shifts)
        layout_sections[layout] = section

    return {
        "bench": "fastpath",
        "table_size": table_size,
        "packets": packets,
        "seed": seed,
        "width": width,
        "backend": (
            "numpy" if HAVE_NUMPY and width <= 32 and not force_python
            else "python"
        ),
        "certification": {"checked": checked, "disagreements": 0},
        "algorithms": algorithms,
        "layouts": layout_sections,
    }


def _summary(
    packets: int,
    scalar_refs: int,
    scalar_elapsed: Optional[float],
    batched_refs: int,
    batched_elapsed: Optional[float],
) -> Dict[str, object]:
    summary: Dict[str, object] = {
        "scalar": _rates(packets, scalar_elapsed, scalar_refs),
        "batched": _rates(packets, batched_elapsed, batched_refs),
    }
    if scalar_elapsed and batched_elapsed:
        summary["speedup"] = scalar_elapsed / batched_elapsed
    else:
        summary["speedup"] = None
    return summary
