"""Destination sampling — the paper's §6 methodology and extensions.

The paper selects experiment destinations as follows: draw a random
destination, compute its BMP at the sending router R1, and keep the
destination only if that BMP is a vertex in the receiving router R2's
trie — a proxy for "R2 is a plausible next hop for this packet".  (The
paper notes this filtering can only make the clue scheme look *worse*:
a clue absent from R2's trie resolves in the single clue-table access.)

Additional samplers (uniform and Zipf-weighted over the sender's
prefixes) support the traffic-skew ablations.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate
from typing import List, Optional, Sequence, Tuple

from repro.addressing import Address, Prefix
from repro.tablegen.synthetic import Entry
from repro.trie.binary_trie import BinaryTrie

Sample = Tuple[Address, Prefix]


def paper_destination_sample(
    sender_entries: Sequence[Entry],
    sender_trie: BinaryTrie,
    receiver_trie: BinaryTrie,
    count: int,
    seed: int = 0,
    max_attempts_factor: int = 50,
) -> List[Sample]:
    """``count`` (destination, sender-BMP) pairs per the paper's rule.

    Destinations are drawn under random sender prefixes (so a BMP always
    exists) and rejected unless the BMP is a vertex of the receiver's
    trie.
    """
    rng = random.Random(seed)
    entries = list(sender_entries)
    if not entries:
        raise ValueError("the sender table is empty")
    samples: List[Sample] = []
    attempts = 0
    budget = count * max_attempts_factor
    # Inherently sequential: each accepted sample depends on a rejection
    # test, so the RNG stream cannot be pre-drawn in a batch without
    # changing it.  The batchable samplers below draw whole rounds.
    while len(samples) < count and attempts < budget:
        attempts += 1
        prefix, _hop = entries[rng.randrange(len(entries))]
        destination = prefix.random_address(rng)
        clue = sender_trie.best_prefix(destination)
        if clue is None:
            continue
        if receiver_trie.find_node(clue) is None:
            continue
        samples.append((destination, clue))
    if len(samples) < count:
        raise RuntimeError(
            "only %d/%d samples found; tables may be too dissimilar"
            % (len(samples), count)
        )
    return samples


def uniform_destination_sample(
    sender_trie: BinaryTrie,
    count: int,
    seed: int = 0,
    width: int = 32,
) -> List[Tuple[Address, Optional[Prefix]]]:
    """Uniform random destinations over the whole address space.

    The sender BMP may be None (no default route): such packets carry no
    clue.

    The whole batch of address bits is drawn with a *single* RNG call
    and split on byte boundaries.  Because ``getrandbits`` consumes the
    Mersenne-Twister word stream little-endian-first, the addresses —
    and the RNG state afterwards — are bit-for-bit identical to the
    historical one-``getrandbits(width)``-per-packet loop for the same
    seed (the regression test pins this).
    """
    rng = random.Random(seed)
    samples: List[Tuple[Address, Optional[Prefix]]] = []
    if not count:
        return samples
    raw = rng.getrandbits(width * count).to_bytes(count * width // 8, "little")
    step = width // 8
    best_prefix = sender_trie.best_prefix
    for start in range(0, count * step, step):
        destination = Address(
            int.from_bytes(raw[start:start + step], "little"), width
        )
        samples.append((destination, best_prefix(destination)))
    return samples


def zipf_destination_sample(
    sender_entries: Sequence[Entry],
    sender_trie: BinaryTrie,
    count: int,
    seed: int = 0,
    exponent: float = 1.0,
) -> List[Sample]:
    """Zipf-weighted destinations: few prefixes receive most traffic."""
    if exponent < 0:
        raise ValueError("the Zipf exponent cannot be negative")
    rng = random.Random(seed)
    entries = list(sender_entries)
    if not entries:
        raise ValueError("the sender table is empty")
    ranked = list(entries)
    rng.shuffle(ranked)
    weights = [1.0 / ((rank + 1) ** exponent) for rank in range(len(ranked))]
    # ``random.choices(..., k=1)`` re-accumulated the cumulative-weight
    # table on every draw — O(n) RNG-side work per packet.  Hoist the
    # accumulation out of the loop and replicate choices' selection
    # arithmetic (one uniform draw + one bisect); the RNG stream and the
    # selected prefixes are exactly those of the historical per-packet
    # call (the regression test pins this).
    cum_weights = list(accumulate(weights))
    total = cum_weights[-1] + 0.0
    hi = len(ranked) - 1
    samples: List[Sample] = []
    while len(samples) < count:
        prefix, _hop = ranked[
            bisect_right(cum_weights, rng.random() * total, 0, hi)
        ]
        destination = prefix.random_address(rng)
        clue = sender_trie.best_prefix(destination)
        if clue is not None:
            samples.append((destination, clue))
    return samples
