"""One-command reproduction: run every experiment, emit a markdown report.

``repro-clue reproduce --scale 0.05 --output report.md`` regenerates the
paper's Tables 1–3, the Tables 4–9 matrix, Figure 1, Figure 8 and the
§3.5 space model in one pass and writes a self-contained paper-vs-measured
report.  The same drivers back the pytest benchmarks; this module simply
sequences them.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Sequence, Tuple

from repro.addressing import Prefix
from repro.core.space import space_report
from repro.experiments.comparison import MODES, PairComparison, compare_pairs
from repro.experiments.paperdata import (
    SHAPE_CLAIMS,
    SPACE_CLAIMS,
    TABLE1_PREFIX_COUNTS,
    TABLE2_PROBLEMATIC_CLUES,
    TABLE3_INTERSECTIONS,
)
from repro.experiments.render import (
    format_table,
    render_comparison_matrix,
    render_paper_vs_measured,
)
from repro.lookup import PAPER_BASELINES
from repro.netsim.mpls import AggregationScenario
from repro.netsim.path_profile import ChainScenario
from repro.tablegen import PAPER_PAIRS, generate_table, paper_router_tables
from repro.trie import BinaryTrie, TrieOverlay


class ReproductionReport:
    """Accumulates sections and writes the final markdown document."""

    def __init__(self, scale: float, packets: int):
        self.scale = scale
        self.packets = packets
        self.sections: List[Tuple[str, str]] = []
        self.checks: List[Tuple[str, bool]] = []

    def add(self, title: str, body: str) -> None:
        self.sections.append((title, body))

    def check(self, name: str, passed: bool) -> None:
        self.checks.append((name, passed))

    def passed(self) -> bool:
        return all(flag for _name, flag in self.checks)

    def render(self) -> str:
        lines = [
            "# Routing with a Clue — reproduction report",
            "",
            "Scale ×%g, %d packets per pair." % (self.scale, self.packets),
            "",
        ]
        for title, body in self.sections:
            lines.append("## %s" % title)
            lines.append("")
            lines.append("```")
            lines.append(body)
            lines.append("```")
            lines.append("")
        lines.append("## Shape checks")
        lines.append("")
        for name, passed in self.checks:
            lines.append("- [%s] %s" % ("x" if passed else " ", name))
        lines.append("")
        lines.append(
            "Overall: %s" % ("all shape checks hold" if self.passed() else "FAILURES")
        )
        return "\n".join(lines)


def run_reproduction(
    scale: float = 0.05,
    packets: int = 500,
    seed: int = 42,
) -> ReproductionReport:
    """Run the core evaluation and return the filled report."""
    report = ReproductionReport(scale, packets)
    tables = paper_router_tables(scale=scale, seed=seed)
    tries = {name: BinaryTrie.from_prefixes(entries) for name, entries in tables.items()}

    # Tables 1-3 ------------------------------------------------------
    rows = [
        (name, TABLE1_PREFIX_COUNTS[name], len(tables[name]))
        for name in TABLE1_PREFIX_COUNTS
    ]
    report.add("Table 1 — prefixes per router",
               render_paper_vs_measured(rows, title=""))
    report.check(
        "table sizes within 25% of the scaled paper counts",
        all(
            abs(len(tables[name]) - count * scale) / (count * scale) < 0.25
            for name, count in TABLE1_PREFIX_COUNTS.items()
        ),
    )

    overlays = {
        pair: TrieOverlay(tries[pair[0]], tries[pair[1]]) for pair in PAPER_PAIRS
    }
    rows = [
        ("%s -> %s" % pair, TABLE2_PROBLEMATIC_CLUES[pair],
         len(overlays[pair].problematic_clues()))
        for pair in PAPER_PAIRS
    ]
    report.add("Table 2 — problematic clues", render_paper_vs_measured(rows, title=""))
    report.check(
        "Claim 1 holds for >93% of clues on every pair",
        all(
            len(overlay.problematic_clues()) / len(tries[pair[0]]) < 0.07
            for pair, overlay in overlays.items()
        ),
    )

    rows = []
    for (left, right), paper in TABLE3_INTERSECTIONS.items():
        overlay = TrieOverlay(tries[left], tries[right])
        rows.append(("%s & %s" % (left, right), paper, overlay.equal_prefixes()))
    report.add("Table 3 — shared prefixes", render_paper_vs_measured(rows, title=""))

    # Tables 4-9 ------------------------------------------------------
    results = compare_pairs(tables, PAPER_PAIRS, packets=packets, seed=seed)
    report.add("Tables 4–9 — 15-scheme comparison",
               render_comparison_matrix(results))
    report.check(
        "all lookups agree with the oracle",
        all(result.mismatches == 0 for result in results),
    )
    worst_advance = max(
        result.average(technique, "advance")
        for result in results
        for technique in PAPER_BASELINES
    )
    regular_ratio = _mean_ratio(results, "regular")
    logw_ratio = _mean_ratio(results, "logw")
    rows = [
        ("advance worst case", SHAPE_CLAIMS["advance_unfavorable"], round(worst_advance, 3)),
        ("advance vs regular", SHAPE_CLAIMS["advance_vs_regular"], round(regular_ratio, 1)),
        ("advance vs logw", SHAPE_CLAIMS["advance_vs_logw"], round(logw_ratio, 1)),
    ]
    report.add("§6 summary ratios", render_paper_vs_measured(rows, title=""))
    report.check("advance near one reference (<=1.35 worst)", worst_advance <= 1.35)
    report.check("advance >10x better than the regular trie", regular_ratio > 10)

    # Figure 1 --------------------------------------------------------
    chain = ChainScenario(background=max(int(3000 * scale), 150), seed=seed)
    profile = chain.profile()
    report.add(
        "Figure 1 — BMP length and work along the path",
        format_table(
            ["router", "BMP length", "delta", "clue work", "legacy work"],
            profile.rows(),
        ),
    )
    report.check(
        "clue work <= legacy work after the first hop",
        all(c <= l for c, l in list(zip(profile.clue_work, profile.legacy_work))[1:]),
    )

    # Figure 8 --------------------------------------------------------
    fec = Prefix.parse("10.0.0.0/16")
    specifics = [
        (Prefix.parse("10.0.%d.0/24" % block), "exit-%d" % block)
        for block in range(1, 4)
    ]
    background = [
        (prefix, hop)
        for prefix, hop in generate_table(max(int(20000 * scale), 300), seed=seed + 5)
        if not fec.is_prefix_of(prefix)
    ]
    scenario = AggregationScenario(fec, specifics, background)
    rng = random.Random(seed)
    addresses = [fec.random_address(rng) for _ in range(min(packets, 500))]
    costs = scenario.aggregation_cost(addresses)
    report.add(
        "Figure 8 — MPLS aggregation point",
        format_table(
            ["scheme", "avg refs at aggregation"],
            sorted(costs.items()),
        ),
    )
    report.check("clue removes the MPLS aggregation spike",
                 costs["mpls+clue"] < costs["mpls"] / 3)

    # §3.5 space ------------------------------------------------------
    space = space_report(
        int(SPACE_CLAIMS["entries"]), SPACE_CLAIMS["pointer_fraction_max"]
    )
    report.add(
        "§3.5 — clue-table space (paper-sized)",
        format_table(
            ["quantity", "value"],
            [[key, value] for key, value in sorted(space.items())],
        ),
    )
    report.check(
        "60k-entry clue table lands in the 500-600 KB band",
        SPACE_CLAIMS["total_kilobytes_low"] * 0.9
        <= space["kilobytes"]
        <= SPACE_CLAIMS["total_kilobytes_high"],
    )
    return report


def _mean_ratio(results: Sequence[PairComparison], technique: str) -> float:
    import statistics

    common = statistics.mean(r.average(technique, "common") for r in results)
    advance = statistics.mean(r.average(technique, "advance") for r in results)
    return common / advance
