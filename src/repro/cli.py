"""Command-line interface to the reproduction.

Subcommands mirror the common workflows:

* ``generate``  — write a synthetic forwarding table as text;
* ``stats``     — Tables 1–3 style statistics for a router pair;
* ``compare``   — the §6 15-scheme comparison for a pair;
* ``figure1``   — the per-hop work profile of a packet crossing a chain;
* ``parse-rib`` — normalise a RIB text dump;
* ``space``     — the §3.5 clue-table space model;
* ``telemetry`` — run under full metrics/tracing and export the registry
  as JSON or Prometheus text;
* ``churn``     — live route churn over the netsim fabric with §3.4
  incremental clue-table maintenance, convergence tracking and
  from-scratch consistency audits;
* ``faults``    — adversarial fault injection (corrupted and Byzantine
  clues, record corruption, crashes, link failures) against the
  guarded, self-healing data path; the exit code reflects the
  never-wrong-forwarding invariant;
* ``lint``      — the :mod:`repro.analyzer` static-analysis pass over
  ``src/repro``; the exit code counts findings above the committed
  baseline;
* ``serve``     — the sharded serving plane: certified per-shard
  compiled tables, request batching with shed/block backpressure, a
  seeded Zipf/bursty load generator and a differential never-wrong
  audit, emitting ``BENCH_serve.json``;
* ``chaos``     — fault-tolerant serving: the R-way replicated plane
  under a seeded shard fault schedule (crashes with rebuild +
  re-certification, slow replicas, dropped batches) with deadlines,
  bounded retries, hedging, health-steered failover and a degraded
  full-table path; every served answer is audited, emitting
  ``BENCH_resilience.json``;
* ``control``   — convergence under load: a seeded link-state IGP
  (hello/adjacency, LSA flooding, SPF) computes the routing tables
  live while flaps, cost changes and crashes perturb it; SPF deltas
  feed the clue tables and a brute-force shortest-path certifier
  gates the result, emitting ``BENCH_control.json``.

Tables may come from files (one ``prefix next_hop`` per line, RIB style)
or from the built-in synthetic pairs (``--synthetic``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from repro.experiments import (
    compare_pair,
    format_table,
    render_comparison,
)
from repro.core.space import space_report
from repro.netsim.path_profile import ChainScenario
from repro.tablegen import (
    NeighborProfile,
    derive_neighbor,
    generate_table,
    parse_rib_file,
)
from repro.tablegen.synthetic import Entry
from repro.trie import BinaryTrie, TrieOverlay


def _write_table(entries: Sequence[Entry], stream) -> None:
    for prefix, next_hop in entries:
        stream.write("%s %s\n" % (prefix, next_hop if next_hop is not None else "-"))


def _sample_rate(text: str) -> float:
    rate = float(text)
    if not 0.0 <= rate <= 1.0:
        raise argparse.ArgumentTypeError(
            "sample rate must be within [0, 1], got %s" % text
        )
    return rate


def _load_pair(args) -> Tuple[List[Entry], List[Entry]]:
    if args.synthetic:
        sender = generate_table(args.count, seed=args.seed)
        receiver = derive_neighbor(sender, NeighborProfile(), seed=args.seed + 1)
        return sender, receiver
    if not (args.sender and args.receiver):
        raise SystemExit("either --synthetic or both --sender and --receiver files")
    return parse_rib_file(args.sender), parse_rib_file(args.receiver)


def _cmd_generate(args) -> int:
    entries = generate_table(args.count, seed=args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            _write_table(entries, handle)
    else:
        _write_table(entries, sys.stdout)
    return 0


def _cmd_stats(args) -> int:
    sender, receiver = _load_pair(args)
    overlay = TrieOverlay(
        BinaryTrie.from_prefixes(sender), BinaryTrie.from_prefixes(receiver)
    )
    stats = overlay.statistics()
    rows = [[key, value] for key, value in sorted(stats.items())]
    fraction = stats["problematic_clues"] / max(stats["sender_prefixes"], 1)
    rows.append(["claim1 holds for", "%.2f%% of clues" % (100 * (1 - fraction))])
    print(format_table(["statistic", "value"], rows, title="pair statistics"))
    return 0


def _cmd_compare(args) -> int:
    sender, receiver = _load_pair(args)
    result = compare_pair(sender, receiver, packets=args.packets, seed=args.seed)
    print(render_comparison(result))
    if result.mismatches:
        print("WARNING: %d oracle mismatches" % result.mismatches, file=sys.stderr)
        return 1
    return 0


def _cmd_figure1(args) -> int:
    scenario = ChainScenario(background=args.background, seed=args.seed)
    profile = scenario.profile()
    print(
        format_table(
            ["router", "BMP length", "delta", "clue work", "legacy work"],
            profile.rows(),
            title="Figure 1: per-hop BMP length and work",
        )
    )
    return 0


def _cmd_parse_rib(args) -> int:
    entries = parse_rib_file(args.file, strict=args.strict)
    _write_table(entries, sys.stdout)
    print("parsed %d unique prefixes" % len(entries), file=sys.stderr)
    return 0


def _cmd_flows(args) -> int:
    from repro.netsim.flows import FlowExperiment, pareto_flow_sizes

    experiment = FlowExperiment(
        hops=args.hops, table_size=args.count, seed=args.seed
    )
    schemes = experiment.run(
        pareto_flow_sizes(args.flows, seed=args.seed + 1), seed=args.seed + 2
    )
    rows = [
        [name, round(cost.per_packet(), 2), cost.setup_messages,
         cost.first_packet_delay_hops]
        for name, cost in sorted(schemes.items())
    ]
    print(
        format_table(
            ["scheme", "refs/packet", "setup msgs", "first-pkt delay (hops)"],
            rows,
            title="flow economics over a %d-hop path" % args.hops,
        )
    )
    crossover = experiment.crossover_flow_size(seed=args.seed + 3)
    print(
        "tag switching overtakes clues for flows longer than ~%.0f packets"
        % crossover
    )
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import pair_report

    sender, receiver = _load_pair(args)
    report = pair_report(sender, receiver)
    rows = [[key, round(value, 4)] for key, value in sorted(report.items())]
    print(format_table(["metric", "value"], rows, title="pair structure"))
    return 0


def _cmd_reproduce(args) -> int:
    from repro.experiments.report import run_reproduction

    report = run_reproduction(
        scale=args.scale, packets=args.packets, seed=args.seed
    )
    text = report.render()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print("report written to %s" % args.output)
    else:
        print(text)
    return 0 if report.passed() else 1


def _cmd_telemetry(args) -> int:
    from repro.telemetry import (
        LookupInstruments,
        MetricsRegistry,
        Tracer,
        render_json,
        render_prometheus,
    )
    from repro.telemetry.synthetic import synthetic_telemetry_run

    if args.synthetic:
        run = synthetic_telemetry_run(
            packets=args.packets,
            background=args.count,
            seed=args.seed,
            sample_rate=args.sample_rate,
        )
        print(run.render(args.format))
        reconciliation = run.reconcile()
        bad = [name for name, row in reconciliation.items() if not row["ok"]]
        tracer = run.tracer
        print(
            "telemetry: %d packets, %d spans sampled (rate %g), "
            "reconciliation %s"
            % (
                len(run.reports),
                len(tracer.spans()) if tracer is not None else 0,
                args.sample_rate,
                "OK" if not bad else "FAILED for %s" % ", ".join(bad),
            ),
            file=sys.stderr,
        )
        return 0 if not bad else 1

    # Pair mode: stream the §6 comparison matrix into a fresh registry.
    sender, receiver = _load_pair(args)
    instruments = LookupInstruments(
        MetricsRegistry(), tracer=Tracer(rate=args.sample_rate, seed=args.seed)
    )
    compare_pair(
        sender,
        receiver,
        packets=args.packets,
        seed=args.seed,
        instruments=instruments,
    )
    renderer = render_json if args.format == "json" else render_prometheus
    print(renderer(instruments.registry))
    return 0


def _cmd_churn(args) -> int:
    import json

    from repro.churn import ChurnEngine, ChurnProfile, build_churn_scenario
    from repro.telemetry.export import render_prometheus

    profile = ChurnProfile(
        burst_mean=args.updates,
        locality=args.locality,
        flap_fraction=args.flap,
    )
    network, stream = build_churn_scenario(
        routers=args.routers,
        per_node=args.per_node,
        seed=args.seed,
        technique=args.technique,
        profile=profile,
    )
    engine = ChurnEngine(
        network,
        stream,
        rebuild_budget=args.rebuild_budget,
        audit_every=args.audit_every,
        hard_audit=not args.soft_audit,
        seed=args.seed,
    )
    report = engine.run(args.epochs, traffic_per_epoch=args.traffic)
    if args.format == "prom":
        print(render_prometheus(network.instruments.registry))
    else:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    summary = report.summary()
    print(
        "churn: %d epochs (%d converged), %d updates, %d wrong hops; %s"
        % (
            summary["epochs"],
            summary["epochs_converged"],
            summary["updates_applied"],
            summary["wrong_hops"],
            summary["claim"],
        ),
        file=sys.stderr,
    )
    return 0 if report.passed() else 1


def _cmd_faults(args) -> int:
    import json

    from repro.faults import (
        FaultInvariantError,
        GuardPolicy,
        build_fault_scenario,
    )
    from repro.telemetry.export import render_prometheus

    guard_policy = None
    if args.guard != "off":
        guard_policy = GuardPolicy(
            quarantine_enabled=(args.guard == "quarantine")
        )
    network, plan = build_fault_scenario(
        routers=args.routers,
        per_node=args.per_node,
        seed=args.seed,
        technique=args.technique,
        flip_rate=args.flip_rate,
        scramble_rate=args.scramble_rate,
        byzantine_routers=args.byzantine,
        lie_mode=args.lie_mode,
        record_rate=args.record_rate,
        crashes=args.crashes,
        link_downs=args.link_downs,
        rounds=args.rounds,
    )
    try:
        report = network.run_with_faults(
            plan,
            rounds=args.rounds,
            traffic_per_round=args.traffic,
            guard_policy=guard_policy,
            seed=args.seed,
            hard_invariant=False if args.soft_invariant else None,
        )
    except FaultInvariantError as error:
        print("FAULT INVARIANT VIOLATED: %s" % error, file=sys.stderr)
        return 2
    if args.format == "prom":
        print(render_prometheus(network.instruments.registry))
    else:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    summary = report.summary()
    print(
        "faults: %d rounds, %d packets, %d injections, %d wrong hops "
        "(guard %s); %s"
        % (
            summary["rounds"],
            summary["packets"],
            summary["faults_total"],
            summary["wrong_hops"],
            args.guard,
            summary["claim"],
        ),
        file=sys.stderr,
    )
    return 0 if report.passed() else 1


def _cmd_control(args) -> int:
    import json

    from repro.control import (
        ControlConvergenceError,
        ControlInvariantError,
        build_control_scenario,
    )
    from repro.telemetry.export import render_prometheus

    if args.quick:
        args.per_node = min(args.per_node, 6)
        args.ticks = min(args.ticks, 80)
        args.traffic = min(args.traffic, 6)
    try:
        scenario = build_control_scenario(
            routers=args.routers,
            per_node=args.per_node,
            seed=args.seed,
            technique=args.technique,
            ticks=args.ticks,
            flaps=args.flaps,
            crashes=args.crashes,
            cost_changes=args.cost_changes,
            hello_interval=args.hello_interval,
            dead_interval=args.dead_interval,
            retransmit_interval=args.retransmit_interval,
        )
    except ControlConvergenceError as error:
        print("WARMUP NEVER CONVERGED: %s" % error, file=sys.stderr)
        return 2
    try:
        report = scenario.network.run_with_control(
            scenario.plane,
            scenario.plan,
            ticks=args.ticks,
            traffic_per_tick=args.traffic,
            cost_changes=scenario.cost_changes,
            rebuild_budget=args.rebuild_budget,
            seed=args.seed,
            hard_invariant=not args.soft_invariant,
        )
    except ControlInvariantError as error:
        print("CONTROL INVARIANT VIOLATED: %s" % error, file=sys.stderr)
        return 2
    if args.format == "prom":
        text = render_prometheus(scenario.network.instruments.registry)
    else:
        payload = {"scenario": scenario.config}
        payload.update(report.as_dict())
        text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    summary = report.summary()
    print(
        "control: %d ticks (%d converged), %d episodes, %d oracle "
        "divergences, %d wrong hops; %s"
        % (
            summary["ticks"],
            summary["ticks_converged"],
            summary["episodes"],
            summary["next_hop_divergences"] + summary["table_divergences"],
            summary["wrong_hops"],
            summary["claim"],
        ),
        file=sys.stderr,
    )
    if summary["next_hop_divergences"] or summary["table_divergences"]:
        print(
            "ORACLE DIVERGENCE: post-convergence tables differ from the "
            "brute-force shortest-path certifier",
            file=sys.stderr,
        )
        return 2
    return 0 if report.passed() else 1


def _cmd_lint(args) -> int:
    from repro.analyzer import (
        analyze_paths,
        default_rules,
        diff_baseline,
        gating_findings,
        load_baseline,
        render_json_report,
        render_sarif,
        render_text,
        write_baseline,
    )
    from repro.analyzer.incremental import analyze_paths_incremental

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            kind = " (informational)" if rule.informational else ""
            print("%s %s%s" % (rule.code, rule.name, kind))
            print("    %s" % rule.rationale)
        return 0
    if args.select:
        wanted = {code.strip() for code in args.select.split(",")}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            raise SystemExit(
                "unknown rule code(s): %s" % ", ".join(sorted(unknown))
            )
        rules = [rule for rule in rules if rule.code in wanted]
    try:
        if args.incremental:
            run = analyze_paths_incremental(
                args.paths, rules, cache_path=args.cache
            )
            result = run.result
            print(
                "incremental: %s run, %d/%d files re-parsed, "
                "%d graph-dirty, %d removed"
                % (
                    "cold" if run.cold else "warm",
                    len(run.reparsed),
                    result.files,
                    len(run.graph_dirty),
                    len(run.removed),
                ),
                file=sys.stderr,
            )
        else:
            result = analyze_paths(args.paths, rules)
    except FileNotFoundError as error:
        raise SystemExit(str(error))
    if args.write_baseline:
        previous = load_baseline(args.baseline)
        current = write_baseline(result.findings, args.baseline)
        pruned = sum(
            max(0, count - current.get(key, 0))
            for key, count in previous.items()
        )
        print(
            "baseline written to %s (%d findings, %d stale "
            "fingerprints pruned)"
            % (args.baseline, len(result.findings), pruned),
            file=sys.stderr,
        )
        return 0
    baseline = {} if args.no_baseline else load_baseline(args.baseline)
    new, stale = diff_baseline(result.findings, baseline)
    renderer = {
        "json": render_json_report,
        "sarif": render_sarif,
    }.get(args.format, render_text)
    print(renderer(result, new, stale, rules))
    return 1 if gating_findings(new, rules) else 0


def _cmd_bench_fastpath(args) -> int:
    import json
    import time

    from repro.experiments.fastbench import run_fastpath_bench
    from repro.fastpath import CertificationError

    if args.quick:
        args.table_size = min(args.table_size, 2000)
        args.packets = min(args.packets, 5000)
    layouts = args.layouts if args.layouts else ["dense"]
    try:
        payload = run_fastpath_bench(
            table_size=args.table_size,
            packets=args.packets,
            seed=args.seed,
            # The bench engine is wall-clock-free by design (RC103); the
            # CLI is the one place the real clock is injected, and passing
            # the callable is not a timing call on a library path.
            clock=time.perf_counter,
            force_python=args.force_python,
            layouts=layouts,
        )
    except CertificationError as error:
        print("CERTIFICATION FAILED: %s" % error, file=sys.stderr)
        return 2
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    for name, summary in payload["algorithms"].items():
        speedup = summary["speedup"]
        print(
            "%s: %.1fx batched over scalar (%.2f memrefs/packet, %s backend)"
            % (
                name,
                speedup if speedup else 0.0,
                summary["batched"]["memrefs_per_packet"],
                payload["backend"],
            ),
            file=sys.stderr,
        )
    for name, section in payload["layouts"].items():
        bound = section["entropy_bound_bytes_per_prefix"]
        print(
            "layout %s: %.1f B/prefix (entropy bound %.2f), "
            "%.2f full memrefs/packet (%.2fx dense)"
            % (
                name,
                section["bytes_per_prefix"],
                bound,
                section["full"]["memrefs_per_packet"],
                section["memrefs_vs_dense"] or 0.0,
            ),
            file=sys.stderr,
        )
    print(
        "certified: %d lanes, %d disagreements"
        % (
            payload["certification"]["checked"],
            payload["certification"]["disagreements"],
        ),
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args) -> int:
    import json
    import time

    from repro.fastpath import CertificationError
    from repro.serve import ServeConfig, ServeEngine

    if args.quick:
        args.table_size = min(args.table_size, 2000)
        args.requests = min(args.requests, 120000)
        args.universe = min(args.universe, 2048)
        args.audit = min(args.audit, 1000)
    config = ServeConfig(
        shards=args.shards,
        partition=args.partition,
        method=args.method,
        policy=args.policy,
        table_size=args.table_size,
        requests=args.requests,
        max_batch=args.batch_max,
        max_wait=args.max_wait,
        queue_capacity=args.queue_capacity,
        zipf_alpha=args.alpha,
        universe=args.universe,
        rate=args.rate,
        audit_samples=args.audit,
        seed=args.seed,
        force_python=args.force_python,
        layout=args.layout,
    )
    try:
        engine = ServeEngine(config)
    except CertificationError as error:
        print("SHARD CERTIFICATION FAILED: %s" % error, file=sys.stderr)
        return 2
    # The serving engine is wall-clock-free by design (RC103); the CLI
    # is the one place the real clock is injected, and passing the
    # callable is not a timing call on a library path.
    report = engine.run(clock=time.perf_counter)
    text = json.dumps(report.as_dict(), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    print(report.summary(), file=sys.stderr)
    if not report.passed():
        print("AUDIT FAILED: sharded path disagreed with the oracle",
              file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args) -> int:
    import json
    import time

    from repro.fastpath import CertificationError
    from repro.resilience import ChaosEngine, ResilienceConfig

    if args.quick:
        args.table_size = min(args.table_size, 2000)
        args.requests = min(args.requests, 120000)
        args.universe = min(args.universe, 2048)
    config = ResilienceConfig(
        shards=args.shards,
        replication=args.replication,
        partition=args.partition,
        method=args.method,
        policy=args.policy,
        table_size=args.table_size,
        requests=args.requests,
        max_batch=args.batch_max,
        max_wait=args.max_wait,
        queue_capacity=args.queue_capacity,
        zipf_alpha=args.alpha,
        universe=args.universe,
        rate=args.rate,
        seed=args.seed,
        force_python=args.force_python,
        deadline_ticks=args.deadline,
        hedge_ticks=args.hedge_after,
        max_retries=args.max_retries,
        rebuild_ticks=args.rebuild_ticks,
    )
    try:
        engine = ChaosEngine(config)
    except CertificationError as error:
        print("SHARD CERTIFICATION FAILED: %s" % error, file=sys.stderr)
        return 2
    plan = engine.default_plan(
        crashes=args.crashes, slowdowns=args.slowdowns, drops=args.drops
    )
    # The chaos engine is wall-clock-free by design (RC103); the CLI is
    # the one place the real clock is injected, and passing the callable
    # is not a timing call on a library path.
    report = engine.bench(plan, clock=time.perf_counter)
    text = json.dumps(report.as_dict(), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    print(report.summary(), file=sys.stderr)
    if not report.passed():
        print("AUDIT FAILED: a served answer disagreed with the oracle "
              "or requests went unaccounted", file=sys.stderr)
        return 1
    return 0


def _cmd_space(args) -> int:
    report = space_report(args.entries, args.pointer_fraction)
    rows = [[key, value] for key, value in sorted(report.items())]
    print(format_table(["quantity", "value"], rows, title="§3.5 space model"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-clue",
        description="Routing with a Clue (SIGCOMM 1999) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic forwarding table")
    gen.add_argument("--count", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", help="output file (default stdout)")
    gen.set_defaults(func=_cmd_generate)

    def add_pair_options(command):
        command.add_argument("--sender", help="sender RIB dump file")
        command.add_argument("--receiver", help="receiver RIB dump file")
        command.add_argument(
            "--synthetic", action="store_true",
            help="use a generated neighbour pair instead of files",
        )
        command.add_argument("--count", type=int, default=2000,
                             help="table size for --synthetic")
        command.add_argument("--seed", type=int, default=0)

    stats = sub.add_parser("stats", help="Tables 1-3 statistics for a pair")
    add_pair_options(stats)
    stats.set_defaults(func=_cmd_stats)

    comp = sub.add_parser("compare", help="the §6 15-scheme comparison")
    add_pair_options(comp)
    comp.add_argument("--packets", type=int, default=2000)
    comp.set_defaults(func=_cmd_compare)

    fig1 = sub.add_parser("figure1", help="per-hop work profile (Figure 1)")
    fig1.add_argument("--background", type=int, default=500)
    fig1.add_argument("--seed", type=int, default=0)
    fig1.set_defaults(func=_cmd_figure1)

    rib = sub.add_parser("parse-rib", help="normalise a RIB text dump")
    rib.add_argument("file")
    rib.add_argument("--strict", action="store_true")
    rib.set_defaults(func=_cmd_parse_rib)

    flows = sub.add_parser("flows", help="flow economics vs tag switching")
    flows.add_argument("--hops", type=int, default=5)
    flows.add_argument("--count", type=int, default=1000,
                       help="forwarding-table size per router")
    flows.add_argument("--flows", type=int, default=200)
    flows.add_argument("--seed", type=int, default=0)
    flows.set_defaults(func=_cmd_flows)

    analyze = sub.add_parser("analyze", help="structural metrics for a pair")
    add_pair_options(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    reproduce = sub.add_parser(
        "reproduce", help="run the whole evaluation, emit a markdown report"
    )
    reproduce.add_argument("--scale", type=float, default=0.05)
    reproduce.add_argument("--packets", type=int, default=500)
    reproduce.add_argument("--seed", type=int, default=42)
    reproduce.add_argument("--output", help="report file (default stdout)")
    reproduce.set_defaults(func=_cmd_reproduce)

    telemetry = sub.add_parser(
        "telemetry",
        help="run under full metrics/tracing, export the registry",
    )
    add_pair_options(telemetry)
    # Synthetic mode reuses --count as the chain's background-table size;
    # the full-pair default of 2000 would make the smoke run needlessly slow.
    telemetry.set_defaults(count=300)
    telemetry.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="export format (default json)",
    )
    telemetry.add_argument(
        "--sample-rate", type=_sample_rate, default=1.0,
        help="trace-sampling probability in [0, 1] (default 1.0)",
    )
    telemetry.add_argument(
        "--packets", type=int, default=16,
        help="packets per chain (synthetic) or sampled lookups (pair)",
    )
    telemetry.set_defaults(func=_cmd_telemetry)

    churn = sub.add_parser(
        "churn",
        help="live route churn with incremental clue-table maintenance",
    )
    churn.add_argument("--routers", type=int, default=5)
    churn.add_argument("--per-node", type=int, default=40,
                       help="originated prefixes per router")
    churn.add_argument("--epochs", type=int, default=60)
    churn.add_argument("--updates", type=float, default=6.0,
                       help="mean route updates per epoch (burst mean)")
    churn.add_argument("--traffic", type=int, default=25,
                       help="packets forwarded per epoch")
    churn.add_argument("--locality", type=float, default=0.6,
                       help="fraction of churn under the hot subtrees")
    churn.add_argument("--flap", type=float, default=0.25,
                       help="fraction of announcements reviving withdrawals")
    churn.add_argument("--rebuild-budget", type=int, default=None,
                       help="max clue entries rebuilt per epoch "
                            "(default: drain the backlog)")
    churn.add_argument("--audit-every", type=int, default=10,
                       help="from-scratch consistency audit period (epochs)")
    churn.add_argument("--soft-audit", action="store_true",
                       help="report divergences instead of raising")
    churn.add_argument("--technique", default="patricia",
                       choices=("regular", "patricia", "binary", "6way"))
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--format", choices=("json", "prom"), default="json",
                       help="report format (default json)")
    churn.set_defaults(func=_cmd_churn)

    faults = sub.add_parser(
        "faults",
        help="adversarial fault injection against the guarded data path",
    )
    faults.add_argument("--routers", type=int, default=5)
    faults.add_argument("--per-node", type=int, default=40,
                        help="originated prefixes per router")
    faults.add_argument("--rounds", type=int, default=12)
    faults.add_argument("--traffic", type=int, default=50,
                        help="packets forwarded per round")
    faults.add_argument("--flip-rate", type=_sample_rate, default=0.05,
                        help="clue bit-flip probability per link traversal")
    faults.add_argument("--scramble-rate", type=_sample_rate, default=0.02,
                        help="uniform clue-field corruption probability")
    faults.add_argument("--byzantine", type=int, default=1,
                        help="number of systematically lying routers")
    faults.add_argument("--lie-mode", default="shorter",
                        choices=("random", "shorter", "longer"))
    faults.add_argument("--record-rate", type=_sample_rate, default=0.2,
                        help="per-round clue-table corruption probability")
    faults.add_argument("--crashes", type=int, default=1,
                        help="router crash-restart events to schedule")
    faults.add_argument("--link-downs", type=int, default=1,
                        help="link-down windows to schedule")
    faults.add_argument("--guard", default="quarantine",
                        choices=("off", "guard", "quarantine"),
                        help="data-path policy (default quarantine)")
    faults.add_argument("--soft-invariant", action="store_true",
                        help="record wrong hops instead of raising")
    faults.add_argument("--technique", default="patricia",
                        choices=("regular", "patricia", "binary", "6way"))
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--format", choices=("json", "prom"), default="json",
                        help="report format (default json)")
    faults.set_defaults(func=_cmd_faults)

    control = sub.add_parser(
        "control",
        help="convergence under load: a link-state IGP drives the clue "
             "data path (BENCH_control.json)",
    )
    control.add_argument("--routers", type=int, default=12,
                         help="mesh size (default 12)")
    control.add_argument("--per-node", type=int, default=8,
                         help="originated prefixes per router")
    control.add_argument("--ticks", type=int, default=120,
                         help="simulation ticks after warmup (default 120)")
    control.add_argument("--traffic", type=int, default=8,
                         help="packets forwarded per tick")
    control.add_argument("--flaps", type=int, default=2,
                         help="link-flap windows to schedule")
    control.add_argument("--crashes", type=int, default=1,
                         help="router crash-restart windows to schedule")
    control.add_argument("--cost-changes", type=int, default=2,
                         help="link-cost changes to schedule")
    control.add_argument("--hello-interval", type=int, default=1,
                         help="ticks between hellos (default 1)")
    control.add_argument("--dead-interval", type=int, default=4,
                         help="silent ticks before an adjacency dies")
    control.add_argument("--retransmit-interval", type=int, default=2,
                         help="ticks before an unacked LSA is resent")
    control.add_argument("--rebuild-budget", type=int, default=None,
                         help="max clue entries rebuilt per tick "
                              "(default: drain the backlog)")
    control.add_argument("--soft-invariant", action="store_true",
                         help="record wrong hops instead of raising")
    control.add_argument("--technique", default="patricia",
                         choices=("regular", "patricia", "binary", "6way"))
    control.add_argument("--seed", type=int, default=0)
    control.add_argument("--quick", action="store_true",
                         help="CI mode: clamp prefixes/ticks/traffic "
                              "(the 12-router mesh is kept)")
    control.add_argument("--output", default=None,
                         help="write BENCH_control.json here (default stdout)")
    control.add_argument("--format", choices=("json", "prom"), default="json",
                         help="report format (default json)")
    control.set_defaults(func=_cmd_control)

    lint = sub.add_parser(
        "lint",
        help="static-analysis pass enforcing the repo's invariants",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files/directories to analyze (default src/repro)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default text; sarif is SARIF 2.1.0)",
    )
    lint.add_argument(
        "--baseline", default="lint-baseline.json",
        help="committed baseline file (default lint-baseline.json)",
    )
    lint.add_argument(
        "--incremental", action="store_true",
        help="reuse the analysis cache: only changed files are "
        "re-parsed and only changed call-graph neighborhoods re-run "
        "the interprocedural rules",
    )
    lint.add_argument(
        "--cache", default="lint-cache.json",
        help="incremental cache file (default lint-cache.json; "
        "not committed)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current findings as the new baseline",
    )
    lint.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with its rationale and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    bench = sub.add_parser(
        "bench-fastpath",
        help="scalar vs batched lookup throughput (BENCH_fastpath.json)",
    )
    bench.add_argument("--table-size", type=int, default=20000,
                       help="synthetic sender-table size (default 20000)")
    bench.add_argument("--packets", type=int, default=50000,
                       help="packets per timing loop (default 50000)")
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--quick", action="store_true",
                       help="CI mode: clamp to 2000 prefixes / 5000 packets")
    bench.add_argument("--output", default=None,
                       help="write the JSON payload here (default stdout)")
    bench.add_argument("--force-python", action="store_true",
                       help="time the pure-Python fallback kernels")
    bench.add_argument("--layout", action="append", dest="layouts",
                       choices=("dense", "multibit4", "multibit8"),
                       default=None,
                       help="compiled layout to certify and measure; repeat "
                            "for a matrix (default: dense)")
    bench.set_defaults(func=_cmd_bench_fastpath)

    serve = sub.add_parser(
        "serve",
        help="sharded serving plane: batching, backpressure, Zipf load "
             "(BENCH_serve.json)",
    )
    serve.add_argument("--shards", type=int, default=4,
                       help="worker shards (default 4)")
    serve.add_argument("--partition", choices=("range", "hash"),
                       default="range",
                       help="destination partitioning (default range)")
    serve.add_argument("--method", choices=("advance", "simple"),
                       default="advance",
                       help="clue-table construction (default advance)")
    serve.add_argument("--policy", choices=("shed", "block"), default="shed",
                       help="backpressure when a queue fills (default shed)")
    serve.add_argument("--table-size", type=int, default=20000,
                       help="synthetic sender-table size (default 20000)")
    serve.add_argument("--requests", type=int, default=1000000,
                       help="lookups to replay (default 1000000)")
    serve.add_argument("--batch-max", type=int, default=256,
                       help="max coalesced batch size (default 256)")
    serve.add_argument("--max-wait", type=int, default=4,
                       help="ticks a partial batch may wait (default 4)")
    serve.add_argument("--queue-capacity", type=int, default=4096,
                       help="per-shard queue bound (default 4096)")
    serve.add_argument("--alpha", type=float, default=1.1,
                       help="Zipf popularity skew; 0 = uniform (default 1.1)")
    serve.add_argument("--rate", type=float, default=512.0,
                       help="mean arrivals per tick (default 512)")
    serve.add_argument("--universe", type=int, default=4096,
                       help="distinct destinations in the workload")
    serve.add_argument("--audit", type=int, default=2000,
                       help="live requests replayed against the oracle")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--quick", action="store_true",
                       help="CI mode: clamp to 2000 prefixes / 120k requests")
    serve.add_argument("--output", default=None,
                       help="write BENCH_serve.json here (default stdout)")
    serve.add_argument("--force-python", action="store_true",
                       help="serve on the pure-Python fallback kernels")
    serve.add_argument("--layout", choices=("dense", "multibit4", "multibit8"),
                       default="dense",
                       help="compiled trie layout the shards serve through "
                            "(default dense)")
    serve.set_defaults(func=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="fault-tolerant serving: replica failover, deadlines, "
             "hedging, shard chaos (BENCH_resilience.json)",
    )
    chaos.add_argument("--shards", type=int, default=2,
                       help="table slices (default 2)")
    chaos.add_argument("--replication", type=int, default=2,
                       help="replicas per slice (default 2)")
    chaos.add_argument("--partition", choices=("range", "hash"),
                       default="range",
                       help="destination partitioning (default range)")
    chaos.add_argument("--method", choices=("advance", "simple"),
                       default="advance",
                       help="clue-table construction (default advance)")
    chaos.add_argument("--policy", choices=("shed", "block"), default="shed",
                       help="backpressure when every replica is full "
                            "(default shed)")
    chaos.add_argument("--table-size", type=int, default=20000,
                       help="synthetic sender-table size (default 20000)")
    chaos.add_argument("--requests", type=int, default=250000,
                       help="lookups to replay (default 250000)")
    chaos.add_argument("--batch-max", type=int, default=256,
                       help="max coalesced batch size (default 256)")
    chaos.add_argument("--max-wait", type=int, default=4,
                       help="ticks a partial batch may wait (default 4)")
    chaos.add_argument("--queue-capacity", type=int, default=4096,
                       help="per-replica queue bound (default 4096)")
    chaos.add_argument("--alpha", type=float, default=1.1,
                       help="Zipf popularity skew; 0 = uniform (default 1.1)")
    chaos.add_argument("--rate", type=float, default=512.0,
                       help="mean arrivals per tick (default 512)")
    chaos.add_argument("--universe", type=int, default=4096,
                       help="distinct destinations in the workload")
    chaos.add_argument("--deadline", type=int, default=32,
                       help="per-request deadline budget in ticks")
    chaos.add_argument("--hedge-after", type=int, default=6,
                       help="ticks pending before hedged re-dispatch")
    chaos.add_argument("--max-retries", type=int, default=3,
                       help="bounded retry budget per request")
    chaos.add_argument("--rebuild-ticks", type=int, default=8,
                       help="ticks a crashed replica takes to rebuild")
    chaos.add_argument("--crashes", type=int, default=1,
                       help="replica crash/restart episodes to schedule")
    chaos.add_argument("--slowdowns", type=int, default=1,
                       help="slow-replica windows to schedule")
    chaos.add_argument("--drops", type=int, default=1,
                       help="batch-drop windows to schedule")
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument("--quick", action="store_true",
                       help="CI mode: clamp to 2000 prefixes / 120k requests")
    chaos.add_argument("--output", default=None,
                       help="write BENCH_resilience.json here "
                            "(default stdout)")
    chaos.add_argument("--force-python", action="store_true",
                       help="serve on the pure-Python fallback kernels")
    chaos.set_defaults(func=_cmd_chaos)

    space = sub.add_parser("space", help="§3.5 clue-table space model")
    space.add_argument("--entries", type=int, default=60000)
    space.add_argument("--pointer-fraction", type=float, default=0.1)
    space.set_defaults(func=_cmd_space)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
