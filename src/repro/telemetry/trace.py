"""Per-packet trace spans with deterministic sampling.

Metrics (``registry.py``) answer *how much*; traces answer *what exactly
happened to this packet*.  A :class:`TraceSpan` records, for one hop of
one packet, which resolution method the router chose (clue-table hit
with an immediate final decision, a resumed search, or a full lookup),
how many memory references it charged, and the clue lengths in and out.

Full tracing of every packet would dominate the hot path, so the
:class:`Tracer` samples whole packets: the forwarding fabric calls
:meth:`Tracer.begin_packet` once per injected packet, and every router
on the path then checks the cheap :attr:`Tracer.active` flag.  The
sampling decision is drawn from a seeded RNG, so a given (rate, seed)
pair always samples the same packet indices — experiments are exactly
reproducible.  ``rate=0`` and ``rate=1`` short-circuit without touching
the RNG at all, so tracing can be compiled out of a benchmark run by
configuration alone.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional

#: Resolution methods, as charged by the lookup layers (see
#: :mod:`repro.lookup.counters` for the constants the hot path stamps).
from repro.lookup.counters import (  # noqa: F401  (re-exported)
    METHOD_CLUE_MISS,
    METHOD_FD_IMMEDIATE,
    METHOD_FULL,
    METHOD_RESUMED,
    METHODS,
)

#: Default bound on retained spans; old spans are dropped FIFO.
DEFAULT_TRACE_CAPACITY = 65536


class TraceSpan:
    """What one router did to one sampled packet."""

    __slots__ = ("router", "hop", "method", "accesses", "clue_in", "clue_out")

    def __init__(
        self,
        router: str,
        hop: int,
        method: str,
        accesses: int,
        clue_in: Optional[int],
        clue_out: Optional[int],
    ):
        self.router = router
        #: 0-based position of this hop on the packet's path.
        self.hop = hop
        self.method = method
        self.accesses = accesses
        #: Clue length on the arriving packet (None = no clue).
        self.clue_in = clue_in
        #: Clue length stamped on the departing packet (None = cleared).
        self.clue_out = clue_out

    def as_dict(self) -> dict:
        return {
            "router": self.router,
            "hop": self.hop,
            "method": self.method,
            "accesses": self.accesses,
            "clue_in": self.clue_in,
            "clue_out": self.clue_out,
        }

    def __repr__(self) -> str:
        return "TraceSpan(%s, hop=%d, %s, accesses=%d)" % (
            self.router,
            self.hop,
            self.method,
            self.accesses,
        )


class Tracer:
    """Samples packets at a configurable rate and buffers their spans."""

    __slots__ = (
        "rate",
        "capacity",
        "_rng",
        "_seed",
        "_active",
        "_spans",
        "packets_seen",
        "packets_sampled",
    )

    def __init__(
        self,
        rate: float = 1.0,
        seed: int = 0,
        capacity: int = DEFAULT_TRACE_CAPACITY,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sampling rate must be within [0, 1]")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.rate = rate
        self.capacity = capacity
        self._seed = seed
        self._rng = random.Random(seed)
        self._active = rate >= 1.0
        self._spans: Deque[TraceSpan] = deque(maxlen=capacity)
        self.packets_seen = 0
        self.packets_sampled = 0

    @classmethod
    def one_in(
        cls, n: int, seed: int = 0, capacity: int = DEFAULT_TRACE_CAPACITY
    ) -> "Tracer":
        """A tracer sampling ~1-in-``n`` packets."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return cls(rate=1.0 / n, seed=seed, capacity=capacity)

    # -- sampling -------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the packet currently in flight is being traced."""
        return self._active

    def begin_packet(self) -> bool:
        """Decide (deterministically) whether to trace the next packet."""
        self.packets_seen += 1
        rate = self.rate
        if rate >= 1.0:
            active = True
        elif rate <= 0.0:
            active = False
        else:
            active = self._rng.random() < rate
        self._active = active
        if active:
            self.packets_sampled += 1
        return active

    # -- recording ------------------------------------------------------
    def record(
        self,
        router: str,
        hop: int,
        method: str,
        accesses: int,
        clue_in: Optional[int],
        clue_out: Optional[int],
    ) -> None:
        """Append a span for the in-flight packet (if sampled)."""
        if self._active:
            self._spans.append(
                TraceSpan(router, hop, method, accesses, clue_in, clue_out)
            )

    def spans(self) -> List[TraceSpan]:
        """The retained spans, oldest first."""
        return list(self._spans)

    def sample_fraction(self) -> float:
        """Observed fraction of packets sampled."""
        if not self.packets_seen:
            return 0.0
        return self.packets_sampled / self.packets_seen

    def reset(self) -> None:
        """Drop spans, zero counts, and re-seed the RNG for replay."""
        self._spans.clear()
        self._rng = random.Random(self._seed)
        self._active = self.rate >= 1.0
        self.packets_seen = 0
        self.packets_sampled = 0

    def __repr__(self) -> str:
        return "Tracer(rate=%g, %d spans, %d/%d packets)" % (
            self.rate,
            len(self._spans),
            self.packets_sampled,
            self.packets_seen,
        )


#: A tracer that never samples — the explicit "tracing off" object.
NULL_TRACER = Tracer(rate=0.0)
