"""The canonical metric set for distributed IP lookup.

The paper's whole evaluation counts four things: clue-table hits, final
decisions taken without any search, resumed (restricted) searches, and
full lookups — all denominated in memory references.  This module pins
those quantities down as named metrics, once, so the lookup hot path,
the netsim fabric, and the experiment harnesses all report through the
same series instead of each keeping private tallies.

Catalogue (all living in one :class:`MetricsRegistry`):

====================================  =========  =====================
metric                                kind       labels
====================================  =========  =====================
``clue_hits_total``                   counter    router
``clue_misses_total``                 counter    router
``fd_immediate_total``                counter    router
``resumed_search_total``              counter    router
``full_lookups_total``                counter    router
``clue_entries_built_total``          counter    router, method
``problematic_clues_total``           counter    router
``memory_accesses``                   histogram  router
``resumed_search_depth``              histogram  router
``clue_table_size``                   gauge      router, upstream
``packets_forwarded_total``           counter    result
``traced_packets_total``              counter    (none)
``updates_applied_total``             counter    kind
``clues_rebuilt_total``               counter    router
``epochs_converged_total``            counter    (none)
``clue_table_staleness``              histogram  (none)
``faults_injected_total``             counter    kind
``clue_guard_rejections_total``       counter    router, reason
``neighbors_quarantined_total``       counter    router
``degraded_lookup_accesses``          histogram  router
``serve_requests_total``              counter    shard
``serve_batches_total``               counter    shard
``serve_shed_total``                  counter    shard
``serve_queue_depth``                 gauge      shard
``serve_batch_size``                  histogram  shard
``serve_retries_total``               counter    shard
``serve_hedges_total``                counter    shard
``serve_failovers_total``             counter    shard
``serve_deadline_expired_total``      counter    (none)
``shard_health_state``                gauge      shard
``control_lsas_flooded_total``        counter    router
``control_spf_runs_total``            counter    router
``control_adjacency_transitions_total``  counter  router, state
``control_table_updates_total``       counter    router
``control_convergence_ticks``         histogram  (none)
====================================  =========  =====================

Identities the series satisfy by construction (and the end-to-end tests
assert): ``clue_hits_total = fd_immediate_total + resumed_search_total``,
and every lookup lands in exactly one of hit / miss / full, so
``memory_accesses.count = clue_hits + clue_misses + full_lookups``.

Routers grab a :class:`RouterInstruments` via :meth:`LookupInstruments
.bind_router`; it caches bound (zero-allocation) children of every
per-router series, so the per-lookup cost is a handful of dict stores.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.lookup.counters import (
    METHOD_CLUE_MISS,
    METHOD_FD_IMMEDIATE,
    METHOD_RESUMED,
)
from repro.lookup.hotpath import hot_path
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
)
from repro.telemetry.trace import Tracer

#: Depth of a resumed search in memory references (beyond the one
#: clue-table probe); restricted searches are shallow by design.
DEPTH_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)

#: Label value used for the clue table learned from packets whose
#: upstream is unknown (packets injected directly into a router).
DIRECT_UPSTREAM = "direct"

#: Per-pair rebuild backlog observed at each churn epoch boundary
#: (``clue_table_staleness``): deactivated records still awaiting their
#: deferred rebuild.  Zero means the pair is fully converged.
STALENESS_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Released batch sizes (``serve_batch_size``): powers of two up to the
#: kernel-sized default; a healthy batcher sits near ``max_batch``,
#: max-wait flushes of a trickling queue populate the low buckets.
BATCH_SIZE_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)

#: Length in ticks of control-plane disruption episodes
#: (``control_convergence_ticks``): from the tick convergence is first
#: lost to the tick the plane is quiescent and correct again.
CONVERGENCE_BUCKETS = (
    1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0,
)

#: Adjacency states whose transition counters are pre-bound per router
#: (the ``state`` label of ``control_adjacency_transitions_total``).
ADJACENCY_STATES = ("down", "init", "full")


class RouterInstruments:
    """Per-router bound view over the canonical series (the hot handle)."""

    __slots__ = (
        "owner",
        "clue_hits",
        "clue_misses",
        "fd_immediate",
        "resumed_search",
        "full_lookups",
        "memory_accesses",
        "resumed_depth",
        "entries_built",
        "problematic_clues",
    )

    def __init__(self, instruments: "LookupInstruments", owner: str):
        self.owner = owner
        self.clue_hits = instruments.clue_hits.labels(owner)
        self.clue_misses = instruments.clue_misses.labels(owner)
        self.fd_immediate = instruments.fd_immediate.labels(owner)
        self.resumed_search = instruments.resumed_search.labels(owner)
        self.full_lookups = instruments.full_lookups.labels(owner)
        self.memory_accesses = instruments.memory_accesses.labels(owner)
        self.resumed_depth = instruments.resumed_depth.labels(owner)
        self.entries_built = {
            method: instruments.clue_entries_built.labels(owner, method)
            for method in ("simple", "advance")
        }
        self.problematic_clues = instruments.problematic_clues.labels(owner)

    @hot_path
    def record_lookup(self, method: Optional[str], accesses: int) -> None:
        """Attribute one lookup's cost to the right series."""
        self.memory_accesses.observe(accesses)
        if method == METHOD_FD_IMMEDIATE:
            self.clue_hits.inc()
            self.fd_immediate.inc()
        elif method == METHOD_RESUMED:
            self.clue_hits.inc()
            self.resumed_search.inc()
            # Depth = work beyond the single clue-table probe.
            self.resumed_depth.observe(accesses - 1)
        elif method == METHOD_CLUE_MISS:
            self.clue_misses.inc()
            self.full_lookups.inc()
        else:
            self.full_lookups.inc()

    def record_lookup_batch(
        self,
        full: int,
        misses: int,
        fd: int,
        resumed: int,
        accesses,
        resumed_accesses,
    ) -> None:
        """Attribute a whole batch of lookups with one update per series.

        ``full``/``misses``/``fd``/``resumed`` are the per-method lane
        counts, ``accesses`` the per-lane memory-reference counts, and
        ``resumed_accesses`` the access counts of the resumed lanes only
        (depth = work beyond the single clue-table probe).  The series
        end up exactly as if :meth:`record_lookup` ran per lane.
        """
        self.memory_accesses.observe_many(accesses)
        hits = fd + resumed
        if hits:
            self.clue_hits.inc(hits)
        if fd:
            self.fd_immediate.inc(fd)
        if resumed:
            self.resumed_search.inc(resumed)
            self.resumed_depth.observe_many(
                [value - 1 for value in resumed_accesses]
            )
        if misses:
            self.clue_misses.inc(misses)
        if full or misses:
            self.full_lookups.inc(full + misses)

    def record_entry_built(self, method_name: str, problematic: bool) -> None:
        """Account one clue-table record construction (off the fast path)."""
        bound = self.entries_built.get(method_name)
        if bound is not None:
            bound.inc()
        if problematic:
            self.problematic_clues.inc()

    def __repr__(self) -> str:
        return "RouterInstruments(%r)" % self.owner


class GuardInstruments:
    """Per-router bound view of the guard series (the GuardedLookup sink).

    Matches the monitor protocol of :class:`repro.faults.guard
    .GuardedLookup`: ``record_rejection``, ``record_quarantine``,
    ``record_degraded``.  Rejection children are bound lazily per reason
    (the reason set is small and stable).
    """

    __slots__ = ("owner", "_instruments", "_rejections", "quarantined", "degraded")

    def __init__(self, instruments: "LookupInstruments", owner: str):
        self.owner = owner
        self._instruments = instruments
        self._rejections: Dict[str, object] = {}
        self.quarantined = instruments.neighbors_quarantined.labels(owner)
        self.degraded = instruments.degraded_lookups.labels(owner)

    def record_rejection(self, reason: str) -> None:
        bound = self._rejections.get(reason)
        if bound is None:
            bound = self._instruments.clue_guard_rejections.labels(
                self.owner, reason
            )
            self._rejections[reason] = bound
        bound.inc()

    def record_quarantine(self) -> None:
        self.quarantined.inc()

    def record_degraded(self, accesses: int) -> None:
        self.degraded.observe(accesses)

    def __repr__(self) -> str:
        return "GuardInstruments(%r)" % self.owner


class ShardInstruments:
    """Per-shard bound view of the serving-plane series (repro.serve).

    Every handle is pre-bound at shard construction so the batch path
    (``Shard.process``, the engine tick loop) records without a single
    ``labels(...)`` call — the same zero-allocation discipline as
    :class:`RouterInstruments`.
    """

    __slots__ = ("owner", "requests", "batches", "shed", "queue_depth", "batch_size")

    def __init__(self, instruments: "LookupInstruments", owner: str):
        self.owner = owner
        self.requests = instruments.serve_requests.labels(owner)
        self.batches = instruments.serve_batches.labels(owner)
        self.shed = instruments.serve_shed.labels(owner)
        self.queue_depth = instruments.serve_queue_depth.labels(owner)
        self.batch_size = instruments.serve_batch_size.labels(owner)

    def __repr__(self) -> str:
        return "ShardInstruments(%r)" % self.owner


class ResilienceInstruments:
    """Per-replica-worker bound view of the resilience series.

    One per ``slice.replica`` worker of the chaos engine's replicated
    plane, pre-bound at binding time so the retry/hedge/failover
    accounting in the tick loop never calls ``labels(...)`` — the same
    zero-allocation discipline as :class:`ShardInstruments`.
    """

    __slots__ = ("owner", "retries", "hedges", "failovers", "health_state")

    def __init__(self, instruments: "LookupInstruments", owner: str):
        self.owner = owner
        self.retries = instruments.serve_retries.labels(owner)
        self.hedges = instruments.serve_hedges.labels(owner)
        self.failovers = instruments.serve_failovers.labels(owner)
        self.health_state = instruments.shard_health_state.labels(owner)

    def __repr__(self) -> str:
        return "ResilienceInstruments(%r)" % self.owner


class ControlInstruments:
    """Per-router bound view of the control-plane series (repro.control).

    Every handle — including one transition counter per adjacency
    state — is pre-bound at process construction, so the per-tick
    protocol loop records without a single ``labels(...)`` call.
    """

    __slots__ = ("owner", "lsas_flooded", "spf_runs", "table_updates", "_transitions")

    def __init__(self, instruments: "LookupInstruments", owner: str):
        self.owner = owner
        self.lsas_flooded = instruments.control_lsas_flooded.labels(owner)
        self.spf_runs = instruments.control_spf_runs.labels(owner)
        self.table_updates = instruments.control_table_updates.labels(owner)
        self._transitions = {
            state: instruments.control_adjacency_transitions.labels(
                owner, state
            )
            for state in ADJACENCY_STATES
        }

    def record_flood(self, count: int = 1) -> None:
        if count:
            self.lsas_flooded.inc(count)

    def record_spf(self) -> None:
        self.spf_runs.inc()

    def record_transition(self, state: str) -> None:
        self._transitions[state].inc()

    def record_table_updates(self, count: int) -> None:
        if count:
            self.table_updates.inc(count)

    def __repr__(self) -> str:
        return "ControlInstruments(%r)" % self.owner


class LookupInstruments:
    """The canonical metric set over one registry, plus an optional tracer."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.registry = registry if registry is not None else get_registry()
        #: Per-packet trace sampling; None disables tracing entirely.
        self.tracer = tracer
        reg = self.registry
        self.clue_hits = reg.counter(
            "clue_hits_total",
            "Lookups resolved off a clue-table hit (FD or resumed search)",
            labels=("router",),
        )
        self.clue_misses = reg.counter(
            "clue_misses_total",
            "Clue-carrying lookups whose clue table had no record",
            labels=("router",),
        )
        self.fd_immediate = reg.counter(
            "fd_immediate_total",
            "Clue hits short-circuited by the precomputed final decision",
            labels=("router",),
        )
        self.resumed_search = reg.counter(
            "resumed_search_total",
            "Clue hits that ran the restricted resumed search",
            labels=("router",),
        )
        self.full_lookups = reg.counter(
            "full_lookups_total",
            "Lookups answered by the base algorithm (no clue, or clue miss)",
            labels=("router",),
        )
        self.clue_entries_built = reg.counter(
            "clue_entries_built_total",
            "Clue-table records constructed, by building method",
            labels=("router", "method"),
        )
        self.problematic_clues = reg.counter(
            "problematic_clues_total",
            "Built records for clues violating Claim 1 (non-empty Ptr)",
            labels=("router",),
        )
        self.memory_accesses = reg.histogram(
            "memory_accesses",
            "Memory references charged per lookup",
            labels=("router",),
            buckets=DEFAULT_BUCKETS,
        )
        self.resumed_depth = reg.histogram(
            "resumed_search_depth",
            "References spent in the resumed search beyond the table probe",
            labels=("router",),
            buckets=DEPTH_BUCKETS,
        )
        self.clue_table_size = reg.gauge(
            "clue_table_size",
            "Learned clue-table records per (router, upstream) pair",
            labels=("router", "upstream"),
        )
        self.packets_forwarded = reg.counter(
            "packets_forwarded_total",
            "Packets forwarded end-to-end, by exit reason",
            labels=("result",),
        )
        self.traced_packets = reg.counter(
            "traced_packets_total",
            "Packets selected by the trace sampler",
        )
        # -- churn series (repro.churn) ---------------------------------
        self.updates_applied = reg.counter(
            "updates_applied_total",
            "Route updates applied to the fabric, by event kind",
            labels=("kind",),
        )
        self.clues_rebuilt = reg.counter(
            "clues_rebuilt_total",
            "Clue-table records rebuilt by incremental maintenance",
            labels=("router",),
        )
        self.epochs_converged = reg.counter(
            "epochs_converged_total",
            "Churn epochs that ended with every pair's backlog empty",
        )
        self.clue_table_staleness = reg.histogram(
            "clue_table_staleness",
            "Per-pair deferred-rebuild backlog at each epoch boundary",
            buckets=STALENESS_BUCKETS,
        )
        # -- fault/guard series (repro.faults) ---------------------------
        self.faults_injected = reg.counter(
            "faults_injected_total",
            "Adversarial faults injected into the fabric, by kind",
            labels=("kind",),
        )
        self.clue_guard_rejections = reg.counter(
            "clue_guard_rejections_total",
            "Clue consultations rejected by the guarded data path",
            labels=("router", "reason"),
        )
        self.neighbors_quarantined = reg.counter(
            "neighbors_quarantined_total",
            "Guard quarantine transitions (an upstream lost trust)",
            labels=("router",),
        )
        self.degraded_lookups = reg.histogram(
            "degraded_lookup_accesses",
            "Memory references of lookups the guard degraded to full",
            labels=("router",),
            buckets=DEFAULT_BUCKETS,
        )
        # -- serving-plane series (repro.serve) ---------------------------
        self.serve_requests = reg.counter(
            "serve_requests_total",
            "Lookup requests served through the batched shard plane",
            labels=("shard",),
        )
        self.serve_batches = reg.counter(
            "serve_batches_total",
            "Coalesced batches released to the shard kernels",
            labels=("shard",),
        )
        self.serve_shed = reg.counter(
            "serve_shed_total",
            "Requests dropped by shed backpressure at a full shard queue",
            labels=("shard",),
        )
        self.serve_queue_depth = reg.gauge(
            "serve_queue_depth",
            "Pending requests in a shard's batcher queue (end of tick)",
            labels=("shard",),
        )
        self.serve_batch_size = reg.histogram(
            "serve_batch_size",
            "Requests per released batch (max-size vs max-wait mix)",
            labels=("shard",),
            buckets=BATCH_SIZE_BUCKETS,
        )
        # -- resilience series (repro.resilience) --------------------------
        self.serve_retries = reg.counter(
            "serve_retries_total",
            "Requests re-dispatched after a crash or a dropped batch",
            labels=("shard",),
        )
        self.serve_hedges = reg.counter(
            "serve_hedges_total",
            "Requests duplicated to another replica after hedge_ticks",
            labels=("shard",),
        )
        self.serve_failovers = reg.counter(
            "serve_failovers_total",
            "Requests placed on a replica other than their preferred one",
            labels=("shard",),
        )
        self.serve_deadline_expired = reg.counter(
            "serve_deadline_expired_total",
            "Requests whose deadline budget ran out before completion",
        )
        self.shard_health_state = reg.gauge(
            "shard_health_state",
            "Health FSM state code per replica worker (end of tick)",
            labels=("shard",),
        )
        # -- control-plane series (repro.control) --------------------------
        self.control_lsas_flooded = reg.counter(
            "control_lsas_flooded_total",
            "LSAs sent in LsUpdate messages (fresh floods + retransmissions)",
            labels=("router",),
        )
        self.control_spf_runs = reg.counter(
            "control_spf_runs_total",
            "Shortest-path-first recomputations triggered by LSDB changes",
            labels=("router",),
        )
        self.control_adjacency_transitions = reg.counter(
            "control_adjacency_transitions_total",
            "Neighbour state-machine transitions, by state entered",
            labels=("router", "state"),
        )
        self.control_table_updates = reg.counter(
            "control_table_updates_total",
            "Prefix-level routing-table deltas the SPF feed applied",
            labels=("router",),
        )
        self.control_convergence_ticks = reg.histogram(
            "control_convergence_ticks",
            "Ticks from losing control-plane convergence to regaining it",
            buckets=CONVERGENCE_BUCKETS,
        )

    # -- binding --------------------------------------------------------
    def bind_router(self, owner: str) -> RouterInstruments:
        """A per-router view with every label key pre-bound."""
        return RouterInstruments(self, owner)

    # -- fabric-level recording -----------------------------------------
    def record_delivery(self, exit_reason: str) -> None:
        self.packets_forwarded.inc(labels=(exit_reason,))

    def begin_packet(self) -> bool:
        """Ask the tracer (if any) to decide sampling for a new packet."""
        if self.tracer is None:
            return False
        sampled = self.tracer.begin_packet()
        if sampled:
            self.traced_packets.inc()
        return sampled

    def set_clue_table_size(
        self, router: str, upstream: Optional[str], size: int
    ) -> None:
        label = upstream if upstream is not None else DIRECT_UPSTREAM
        self.clue_table_size.set(size, labels=(router, label))

    # -- fault/guard recording --------------------------------------------
    def record_fault(self, kind: str, count: int = 1) -> None:
        """Account ``count`` injected faults of one kind."""
        if count:
            self.faults_injected.inc(count, labels=(kind,))

    def bind_guard(self, router: str) -> "GuardInstruments":
        """A per-router guard monitor (the GuardedLookup telemetry sink)."""
        return GuardInstruments(self, router)

    # -- serving-plane recording ------------------------------------------
    def bind_shard(self, shard: str) -> ShardInstruments:
        """A per-shard serving-plane view with every label pre-bound."""
        return ShardInstruments(self, shard)

    def bind_resilience(self, shard: str) -> ResilienceInstruments:
        """A per-replica-worker resilience view with every label pre-bound."""
        return ResilienceInstruments(self, shard)

    # -- control-plane recording ------------------------------------------
    def bind_control(self, router: str) -> ControlInstruments:
        """A per-router control-plane view with every label pre-bound."""
        return ControlInstruments(self, router)

    def record_convergence_episode(self, ticks: int) -> None:
        """Account one completed control-plane disruption episode."""
        self.control_convergence_ticks.observe(ticks)

    # -- churn recording -------------------------------------------------
    def record_update(self, kind: str, count: int = 1) -> None:
        """Account ``count`` route updates of one kind (announce/withdraw)."""
        self.updates_applied.inc(count, labels=(kind,))

    def record_rebuilds(self, router: str, count: int) -> None:
        """Account clue records rebuilt at ``router`` by maintenance."""
        if count:
            self.clues_rebuilt.inc(count, labels=(router,))

    def record_epoch(self, converged: bool, backlogs: Sequence[int]) -> None:
        """Close one churn epoch: convergence flag + per-pair backlogs."""
        if converged:
            self.epochs_converged.inc()
        for backlog in backlogs:
            self.clue_table_staleness.observe(backlog)

    # -- convenience reads ----------------------------------------------
    def totals(self) -> Dict[str, float]:
        """Registry-wide sums of the per-router counters (for reports)."""
        return {
            "clue_hits_total": self.clue_hits.total(),
            "clue_misses_total": self.clue_misses.total(),
            "fd_immediate_total": self.fd_immediate.total(),
            "resumed_search_total": self.resumed_search.total(),
            "full_lookups_total": self.full_lookups.total(),
            "problematic_clues_total": self.problematic_clues.total(),
            "packets_forwarded_total": self.packets_forwarded.total(),
            "lookups_total": self.memory_accesses.total_count(),
            "updates_applied_total": self.updates_applied.total(),
            "clues_rebuilt_total": self.clues_rebuilt.total(),
            "epochs_converged_total": self.epochs_converged.total(),
            "faults_injected_total": self.faults_injected.total(),
            "clue_guard_rejections_total": self.clue_guard_rejections.total(),
            "neighbors_quarantined_total": self.neighbors_quarantined.total(),
        }

    def reset(self) -> None:
        """Zero every series and (if present) the tracer."""
        self.registry.reset()
        if self.tracer is not None:
            self.tracer.reset()

    def __repr__(self) -> str:
        return "LookupInstruments(registry=%r, tracer=%r)" % (
            self.registry,
            self.tracer,
        )


#: Lazily created instruments over the process default registry.
_default_instruments: Optional[LookupInstruments] = None


def default_instruments() -> LookupInstruments:
    """The process-wide instruments (tracing disabled by default)."""
    global _default_instruments
    if (
        _default_instruments is None
        or _default_instruments.registry is not get_registry()
    ):
        _default_instruments = LookupInstruments(get_registry())
    return _default_instruments


def set_default_instruments(
    instruments: Optional[LookupInstruments],
) -> Optional[LookupInstruments]:
    """Swap the process-wide instruments; returns the previous value."""
    global _default_instruments
    previous = _default_instruments
    _default_instruments = instruments
    return previous
