"""A self-contained telemetry run over the Figure 1 chain scenario.

``repro telemetry --synthetic`` (and the end-to-end tests) need a run
whose metrics can be checked *exactly*: every counter the registry
reports must reconcile with the per-hop :class:`HopRecord` traces of the
very packets that produced it.  This module forwards a packet stream
through a :class:`ChainScenario` — the clue-aware chain and its legacy
twin share one fresh registry — keeps every packet, and recomputes the
canonical counters from the traces for comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lookup.counters import (
    METHOD_CLUE_MISS,
    METHOD_FD_IMMEDIATE,
    METHOD_FULL,
    METHOD_RESUMED,
)
from repro.telemetry.export import render_json, render_prometheus
from repro.telemetry.instruments import LookupInstruments
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import Tracer


class SyntheticTelemetryRun:
    """Everything one synthetic run produced, ready to export or audit."""

    def __init__(
        self,
        instruments: LookupInstruments,
        scenario,
        reports: List[object],
    ):
        self.instruments = instruments
        self.registry = instruments.registry
        self.tracer = instruments.tracer
        self.scenario = scenario
        #: The :class:`DeliveryReport` of every forwarded packet, in
        #: order (clue-chain packets first, then the legacy chain's).
        self.reports = reports

    # -- reconciliation -------------------------------------------------
    def trace_method_counts(self) -> Dict[str, int]:
        """Method counts recomputed from the packets' HopRecord traces."""
        counts = {
            METHOD_FULL: 0,
            METHOD_CLUE_MISS: 0,
            METHOD_FD_IMMEDIATE: 0,
            METHOD_RESUMED: 0,
        }
        for report in self.reports:
            for record in report.packet.trace:
                counts[record.method] += 1
        return counts

    def reconcile(self) -> Dict[str, Dict[str, float]]:
        """Registry counters vs. trace-derived ground truth, per series."""
        counts = self.trace_method_counts()
        totals = self.instruments.totals()
        hops = sum(counts.values())
        accesses = sum(
            record.accesses
            for report in self.reports
            for record in report.packet.trace
        )
        memory = self.registry.get("memory_accesses")
        expectations = {
            "clue_hits_total": (
                totals["clue_hits_total"],
                counts[METHOD_FD_IMMEDIATE] + counts[METHOD_RESUMED],
            ),
            "fd_immediate_total": (
                totals["fd_immediate_total"],
                counts[METHOD_FD_IMMEDIATE],
            ),
            "resumed_search_total": (
                totals["resumed_search_total"],
                counts[METHOD_RESUMED],
            ),
            "clue_misses_total": (
                totals["clue_misses_total"],
                counts[METHOD_CLUE_MISS],
            ),
            "full_lookups_total": (
                totals["full_lookups_total"],
                counts[METHOD_FULL] + counts[METHOD_CLUE_MISS],
            ),
            "lookups_total": (totals["lookups_total"], hops),
            "memory_accesses_sum": (
                sum(snap.sum for _, snap in memory.samples()),
                accesses,
            ),
            "packets_forwarded_total": (
                totals["packets_forwarded_total"],
                len(self.reports),
            ),
        }
        return {
            name: {"metric": metric, "trace": trace, "ok": metric == trace}
            for name, (metric, trace) in expectations.items()
        }

    def reconciled(self) -> bool:
        """True when every counter matches the traces exactly."""
        return all(row["ok"] for row in self.reconcile().values())

    # -- export ---------------------------------------------------------
    def render(self, fmt: str = "json") -> str:
        """The run's registry as JSON or Prometheus text."""
        for network in (self.scenario.clue_network, self.scenario.legacy_network):
            for router in network.routers.values():
                sync = getattr(router, "sync_gauges", None)
                if sync is not None:
                    sync()
        if fmt == "json":
            return render_json(self.registry)
        if fmt == "prom":
            return render_prometheus(self.registry)
        raise ValueError("unknown format %r (json or prom)" % fmt)


def synthetic_telemetry_run(
    packets: int = 16,
    background: int = 200,
    seed: int = 0,
    sample_rate: float = 1.0,
    technique: str = "patricia",
    method: str = "advance",
    registry: Optional[MetricsRegistry] = None,
) -> SyntheticTelemetryRun:
    """Forward ``packets`` through a fresh chain pair under full telemetry.

    The first clue-chain packet learns every clue on its way (one
    ``clue_miss`` per hop past the first); later packets ride the learned
    records, so the run exercises every resolution method.  The same
    stream then crosses the legacy chain for a full-lookup baseline.
    """
    # Imported here: telemetry is a leaf package and must not pull the
    # simulation layers in at import time.
    from repro.netsim.packet import Packet
    from repro.netsim.path_profile import ChainScenario

    if packets < 1:
        raise ValueError("need at least one packet")
    instruments = LookupInstruments(
        registry if registry is not None else MetricsRegistry(),
        tracer=Tracer(rate=sample_rate, seed=seed),
    )
    scenario = ChainScenario(
        background=background,
        seed=seed,
        technique=technique,
        method=method,
        instruments=instruments,
    )
    start = scenario.router_names[0]
    reports = []
    for _ in range(packets):
        reports.append(
            scenario.clue_network.forward(Packet(scenario.destination), start)
        )
    for _ in range(packets):
        reports.append(
            scenario.legacy_network.forward(Packet(scenario.destination), start)
        )
    return SyntheticTelemetryRun(instruments, scenario, reports)
