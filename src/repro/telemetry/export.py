"""Render a metrics registry as JSON or Prometheus text exposition.

Two formats, one data model:

* **JSON** — a nested dict (``registry_to_dict``) serialised with sorted
  samples, meant for experiment harnesses and the CLI's machine output;
* **Prometheus text format 0.0.4** — ``# HELP`` / ``# TYPE`` headers,
  one line per series, histograms exploded into cumulative ``_bucket``
  series plus ``_sum`` and ``_count``, ready to be scraped or pushed.

Both renderings are deterministic (insertion order for metrics, sorted
label keys within a metric), so they can be golden-tested.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def _labels_dict(names: Sequence[str], values: Sequence[str]) -> Dict[str, str]:
    return {name: str(value) for name, value in zip(names, values)}


def registry_to_dict(registry: MetricsRegistry) -> dict:
    """The registry as a plain JSON-serialisable dict."""
    metrics: Dict[str, dict] = {}
    for metric in registry.collect():
        entry: dict = {
            "type": metric.kind,
            "help": metric.help,
            "labels": list(metric.label_names),
        }
        if isinstance(metric, (Counter, Gauge)):
            entry["samples"] = [
                {
                    "labels": _labels_dict(metric.label_names, key),
                    "value": value,
                }
                for key, value in metric.samples()
            ]
        elif isinstance(metric, Histogram):
            entry["buckets"] = list(metric.buckets)
            entry["samples"] = [
                {
                    "labels": _labels_dict(metric.label_names, key),
                    "counts": list(snapshot.counts),
                    "sum": snapshot.sum,
                    "count": snapshot.count,
                }
                for key, snapshot in metric.samples()
            ]
        metrics[metric.name] = entry
    return {"metrics": metrics}


def render_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    """The registry as a JSON document."""
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_bound(bound: float) -> str:
    return _format_value(bound)


def _label_pairs(
    names: Sequence[str],
    values: Sequence[str],
    extra: Sequence[str] = (),
) -> str:
    pairs = [
        '%s="%s"' % (name, _escape_label_value(str(value)))
        for name, value in zip(names, values)
    ]
    pairs.extend(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join(pairs)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append("# HELP %s %s" % (metric.name, _escape_help(metric.help)))
        lines.append("# TYPE %s %s" % (metric.name, metric.kind))
        if isinstance(metric, (Counter, Gauge)):
            for key, value in metric.samples():
                lines.append(
                    "%s%s %s"
                    % (
                        metric.name,
                        _label_pairs(metric.label_names, key),
                        _format_value(value),
                    )
                )
        elif isinstance(metric, Histogram):
            for key, snapshot in metric.samples():
                cumulative = snapshot.cumulative()
                bounds = [_format_bound(b) for b in snapshot.buckets] + ["+Inf"]
                for bound, running in zip(bounds, cumulative):
                    lines.append(
                        "%s_bucket%s %d"
                        % (
                            metric.name,
                            _label_pairs(
                                metric.label_names,
                                key,
                                extra=('le="%s"' % bound,),
                            ),
                            running,
                        )
                    )
                lines.append(
                    "%s_sum%s %s"
                    % (
                        metric.name,
                        _label_pairs(metric.label_names, key),
                        _format_value(snapshot.sum),
                    )
                )
                lines.append(
                    "%s_count%s %d"
                    % (
                        metric.name,
                        _label_pairs(metric.label_names, key),
                        snapshot.count,
                    )
                )
    return "\n".join(lines) + "\n" if lines else ""
