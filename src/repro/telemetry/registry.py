"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is the repo's single source of observable truth.  Every
metric lives in a :class:`MetricsRegistry`; a process-wide default
registry (:func:`get_registry`) backs the instruments that the lookup
hot path and the netsim fabric increment.

Design constraints, in order:

* **Zero allocation on the increment path.**  A metric's ``labels(...)``
  method returns a *bound* child that caches the frozen label-key tuple
  and the parent's value dict; ``inc()`` on the child is one dict store.
* **Resettable.**  Experiments reuse the process registry between runs;
  ``registry.reset()`` zeroes every series without invalidating bound
  children (they keep writing into the same dicts).
* **Deterministic exports.**  Iteration orders are insertion order for
  metrics and sorted order for label series, so rendered output is
  stable and golden-testable.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[str, ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, tuned for per-lookup memory-reference
#: counts (§6 reports averages in the 1–30 range; the tail covers cold
#: full lookups on large tries).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError("invalid metric name %r" % name)
    return name


def _check_labels(label_names: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(label_names)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ValueError("invalid label name %r" % label)
    if len(set(names)) != len(names):
        raise ValueError("duplicate label names %r" % (names,))
    return names


class _BoundCounter:
    """A counter pre-bound to one label key; ``inc`` is one dict store."""

    __slots__ = ("_values", "_key")

    def __init__(self, values: Dict[LabelKey, float], key: LabelKey):
        self._values = values
        self._key = key

    def inc(self, amount: float = 1) -> None:
        values = self._values
        values[self._key] = values.get(self._key, 0) + amount

    def value(self) -> float:
        return self._values.get(self._key, 0)


class Counter:
    """A monotonically increasing count, optionally partitioned by labels."""

    __slots__ = ("name", "help", "label_names", "_values")

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.label_names = _check_labels(labels)
        self._values: Dict[LabelKey, float] = {}

    def _key(self, labels: Sequence[str]) -> LabelKey:
        key = tuple(labels)
        if len(key) != len(self.label_names):
            raise ValueError(
                "%s expects %d label values, got %r"
                % (self.name, len(self.label_names), key)
            )
        return key

    def inc(self, amount: float = 1, labels: Sequence[str] = ()) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def labels(self, *values: str) -> _BoundCounter:
        """A bound child caching the label key (the hot-path handle)."""
        return _BoundCounter(self._values, self._key(values))

    def value(self, labels: Sequence[str] = ()) -> float:
        return self._values.get(tuple(labels), 0)

    def total(self) -> float:
        """Sum across every label series."""
        return sum(self._values.values())

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())

    def reset(self) -> None:
        self._values.clear()

    def __repr__(self) -> str:
        return "Counter(%s, %d series)" % (self.name, len(self._values))


class _BoundGauge:
    """A gauge pre-bound to one label key."""

    __slots__ = ("_values", "_key")

    def __init__(self, values: Dict[LabelKey, float], key: LabelKey):
        self._values = values
        self._key = key

    def set(self, value: float) -> None:
        self._values[self._key] = value

    def inc(self, amount: float = 1) -> None:
        values = self._values
        values[self._key] = values.get(self._key, 0) + amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def value(self) -> float:
        return self._values.get(self._key, 0)


class Gauge:
    """A value that can go up and down (sizes, rates, occupancy)."""

    __slots__ = ("name", "help", "label_names", "_values")

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.label_names = _check_labels(labels)
        self._values: Dict[LabelKey, float] = {}

    _key = Counter._key

    def set(self, value: float, labels: Sequence[str] = ()) -> None:
        self._values[self._key(labels)] = value

    def inc(self, amount: float = 1, labels: Sequence[str] = ()) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, labels: Sequence[str] = ()) -> None:
        self.inc(-amount, labels)

    def labels(self, *values: str) -> _BoundGauge:
        return _BoundGauge(self._values, self._key(values))

    def value(self, labels: Sequence[str] = ()) -> float:
        return self._values.get(tuple(labels), 0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())

    def reset(self) -> None:
        self._values.clear()

    def __repr__(self) -> str:
        return "Gauge(%s, %d series)" % (self.name, len(self._values))


class _BoundHistogram:
    """A histogram series pre-bound to one label key."""

    __slots__ = ("_buckets", "_state")

    def __init__(self, buckets: Tuple[float, ...], state: list):
        self._buckets = buckets
        self._state = state

    def observe(self, value: float) -> None:
        state = self._state
        state[0][bisect_left(self._buckets, value)] += 1
        state[1] += value
        state[2] += 1

    def observe_many(self, values) -> None:
        """Fold a whole batch into the series with one state update.

        The batched data path (repro.fastpath) records one histogram
        update per *batch* instead of per packet; the resulting series
        is identical to calling :meth:`observe` per element.
        """
        state = self._state
        counts = state[0]
        buckets = self._buckets
        total = 0
        n = 0
        for value in values:
            counts[bisect_left(buckets, value)] += 1
            total += value
            n += 1
        state[1] += total
        state[2] += n


class HistogramSnapshot:
    """One histogram series frozen for reading/export."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(
        self,
        buckets: Tuple[float, ...],
        counts: Tuple[int, ...],
        sum_: float,
        count: int,
    ):
        self.buckets = buckets
        #: Per-bucket (non-cumulative) counts; the final slot is +Inf.
        self.counts = counts
        self.sum = sum_
        self.count = count

    def cumulative(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (ending at count)."""
        out: List[int] = []
        running = 0
        for value in self.counts:
            running += value
            out.append(running)
        return out

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram:
    """Fixed-bucket distribution: per-bucket counts plus sum and count.

    Buckets are upper bounds with ``value <= bound`` semantics; a final
    implicit +Inf bucket catches the tail, so ``observe`` never fails.
    """

    __slots__ = ("name", "help", "label_names", "buckets", "_series")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        self.name = _check_name(name)
        self.help = help
        self.label_names = _check_labels(labels)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram %s needs at least one bucket" % name)
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram %s has duplicate buckets" % name)
        self.buckets = bounds
        #: label key → [bucket counts, sum, count] (mutable in place so
        #: bound children survive concurrent inserts).
        self._series: Dict[LabelKey, list] = {}

    _key = Counter._key

    def _state(self, key: LabelKey) -> list:
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
        return state

    def observe(self, value: float, labels: Sequence[str] = ()) -> None:
        state = self._state(self._key(labels))
        state[0][bisect_left(self.buckets, value)] += 1
        state[1] += value
        state[2] += 1

    def labels(self, *values: str) -> _BoundHistogram:
        return _BoundHistogram(self.buckets, self._state(self._key(values)))

    def snapshot(self, labels: Sequence[str] = ()) -> HistogramSnapshot:
        state = self._series.get(tuple(labels))
        if state is None:
            return HistogramSnapshot(
                self.buckets, (0,) * (len(self.buckets) + 1), 0.0, 0
            )
        return HistogramSnapshot(
            self.buckets, tuple(state[0]), state[1], state[2]
        )

    def samples(self) -> List[Tuple[LabelKey, HistogramSnapshot]]:
        return [(key, self.snapshot(key)) for key in sorted(self._series)]

    def count(self, labels: Sequence[str] = ()) -> int:
        state = self._series.get(tuple(labels))
        return state[2] if state is not None else 0

    def total_count(self) -> int:
        """Observations across every label series."""
        return sum(state[2] for state in self._series.values())

    def reset(self) -> None:
        # Zero in place: bound children hold references to the state lists.
        for state in self._series.values():
            state[0] = [0] * (len(self.buckets) + 1)
            state[1] = 0.0
            state[2] = 0

    def __repr__(self) -> str:
        return "Histogram(%s, %d buckets, %d series)" % (
            self.name,
            len(self.buckets),
            len(self._series),
        )


class MetricsRegistry:
    """A named, ordered collection of metrics.

    ``counter`` / ``gauge`` / ``histogram`` are *get-or-create*: asking
    twice for the same name returns the same object (so independent
    modules can share canonical instruments), but re-registering a name
    as a different kind or with different labels is an error.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # -- registration ---------------------------------------------------
    def _get_or_create(self, cls, name, help, label_names, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    "metric %r already registered as %s"
                    % (name, type(existing).kind)
                )
            if existing.label_names != tuple(label_names):
                raise ValueError(
                    "metric %r already registered with labels %r"
                    % (name, existing.label_names)
                )
            return existing
        metric = cls(name, help, label_names, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    # -- access ---------------------------------------------------------
    def get(self, name: str):
        """The metric registered under ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def names(self) -> List[str]:
        return list(self._metrics)

    def collect(self) -> Iterator[object]:
        """Metrics in registration order (the export order)."""
        return iter(self._metrics.values())

    def reset(self) -> None:
        """Zero every metric; registrations and bound children survive."""
        for metric in self._metrics.values():
            metric.reset()

    def unregister(self, name: str) -> bool:
        """Drop a metric entirely.  True if it existed."""
        return self._metrics.pop(name, None) is not None

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[object]:
        return self.collect()

    def __repr__(self) -> str:
        return "MetricsRegistry(%d metrics)" % len(self._metrics)


#: The process-wide default registry backing the default instruments.
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
