"""Metrics, tracing, and export for the distributed-IP-lookup repro.

Three layers, smallest surface first:

* :mod:`repro.telemetry.registry` — ``Counter`` / ``Gauge`` /
  ``Histogram`` primitives behind a resettable :class:`MetricsRegistry`;
* :mod:`repro.telemetry.trace` — per-packet :class:`TraceSpan` records
  behind a deterministically sampling :class:`Tracer`;
* :mod:`repro.telemetry.instruments` — the canonical metric catalogue
  (:class:`LookupInstruments`) the lookup hot path and the netsim
  fabric report through;
* :mod:`repro.telemetry.export` — JSON and Prometheus text renderings.

The synthetic end-to-end harness (``repro telemetry --synthetic``) lives
in :mod:`repro.telemetry.synthetic`, imported lazily to keep this
package free of any dependency on the simulation layers above it.
"""

from repro.telemetry.export import (
    registry_to_dict,
    render_json,
    render_prometheus,
)
from repro.telemetry.instruments import (
    ADJACENCY_STATES,
    CONVERGENCE_BUCKETS,
    ControlInstruments,
    DEPTH_BUCKETS,
    DIRECT_UPSTREAM,
    LookupInstruments,
    RouterInstruments,
    default_instruments,
    set_default_instruments,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.telemetry.trace import (
    DEFAULT_TRACE_CAPACITY,
    METHOD_CLUE_MISS,
    METHOD_FD_IMMEDIATE,
    METHOD_FULL,
    METHOD_RESUMED,
    METHODS,
    NULL_TRACER,
    TraceSpan,
    Tracer,
)

__all__ = [
    "ADJACENCY_STATES",
    "CONVERGENCE_BUCKETS",
    "ControlInstruments",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_TRACE_CAPACITY",
    "DEPTH_BUCKETS",
    "DIRECT_UPSTREAM",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "LookupInstruments",
    "METHOD_CLUE_MISS",
    "METHOD_FD_IMMEDIATE",
    "METHOD_FULL",
    "METHOD_RESUMED",
    "METHODS",
    "MetricsRegistry",
    "NULL_TRACER",
    "RouterInstruments",
    "TraceSpan",
    "Tracer",
    "default_instruments",
    "get_registry",
    "registry_to_dict",
    "render_json",
    "render_prometheus",
    "set_default_instruments",
    "set_registry",
]
