"""Prefix-length distribution of 1999-era backbone tables.

The paper's experiments ran on snapshots of MAE-East/MAE-West/Paix route
servers and two ISP router pairs taken in 1998/99.  Published analyses of
that era's tables (e.g. the IPMA project the paper cites as [14]) show a
distribution dominated by /24s (class-C legacy allocations) with a strong
/16 mode and a CIDR band around /19–/23.  The default histogram below
encodes that shape; the generator treats it as a sampling weight, so any
other distribution (including IPv6 profiles) can be supplied instead.
"""

from __future__ import annotations

from typing import Dict

#: Default IPv4 prefix-length weights (1999 backbone shape).  Values are
#: relative weights, normalised by the generator.
DEFAULT_IPV4_HISTOGRAM: Dict[int, float] = {
    8: 0.004,
    9: 0.001,
    10: 0.001,
    11: 0.002,
    12: 0.003,
    13: 0.005,
    14: 0.010,
    15: 0.010,
    16: 0.120,
    17: 0.020,
    18: 0.035,
    19: 0.060,
    20: 0.040,
    21: 0.040,
    22: 0.045,
    23: 0.050,
    24: 0.540,
    25: 0.004,
    26: 0.004,
    27: 0.002,
    28: 0.002,
    29: 0.001,
    30: 0.001,
}

#: A plausible IPv6 profile for the paper's "scales to IPv6" argument:
#: aggregation-friendly allocations between /32 and /64.
DEFAULT_IPV6_HISTOGRAM: Dict[int, float] = {
    16: 0.01,
    24: 0.02,
    32: 0.25,
    40: 0.10,
    44: 0.05,
    48: 0.35,
    56: 0.10,
    64: 0.12,
}


def normalise(histogram: Dict[int, float]) -> Dict[int, float]:
    """Scale weights to sum to one; rejects empty or non-positive input."""
    if not histogram:
        raise ValueError("histogram must not be empty")
    total = float(sum(histogram.values()))
    if total <= 0:
        raise ValueError("histogram weights must sum to a positive value")
    for length, weight in histogram.items():
        if weight < 0:
            raise ValueError("negative weight for length %d" % length)
    return {length: weight / total for length, weight in histogram.items()}


def mean_length(histogram: Dict[int, float]) -> float:
    """Expected prefix length under the (normalised) histogram."""
    normal = normalise(histogram)
    return sum(length * weight for length, weight in normal.items())
