"""Parsing RIB-style text dumps (``sh ip route`` and friends).

The paper's experiments were driven by router snapshots obtained either
from the IPMA route servers [14] or via ``sh ip route``.  This parser
accepts the common textual shapes so real dumps can be dropped into the
harness in place of the synthetic tables:

* ``10.24.0.0/13 via 192.205.31.165`` — plain prefix + next hop;
* ``B  10.24.0.0/13 [20/0] via 192.205.31.165, 3d01h`` — Cisco style;
* ``10.24.0.0/13`` — bare prefix (next hop defaults to None);
* classful lines ``10.0.0.0 255.0.0.0 192.0.2.1`` — netmask form.

Lines that are blank, comments (``#``/``!``) or unparseable headers are
skipped; strict mode raises on unparseable non-empty lines instead.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Tuple

from repro.addressing import AddressParseError, Prefix, parse_ipv4
from repro.tablegen.synthetic import Entry


class RibParseError(ValueError):
    """A RIB line could not be parsed in strict mode."""


_PREFIX_RE = re.compile(r"(\d{1,3}(?:\.\d{1,3}){3})/(\d{1,2})")
_MASK_RE = re.compile(
    r"(\d{1,3}(?:\.\d{1,3}){3})\s+(\d{1,3}(?:\.\d{1,3}){3})"
)
_VIA_RE = re.compile(r"via\s+(\d{1,3}(?:\.\d{1,3}){3})")


def mask_to_length(mask_text: str) -> int:
    """Convert a dotted netmask into a prefix length."""
    value = parse_ipv4(mask_text)
    length = 0
    seen_zero = False
    for shift in range(31, -1, -1):
        bit = (value >> shift) & 1
        if bit:
            if seen_zero:
                raise RibParseError("non-contiguous netmask %s" % mask_text)
            length += 1
        else:
            seen_zero = True
    return length


def parse_line(line: str) -> Optional[Entry]:
    """Parse one RIB line into ``(prefix, next_hop)``; None if no route."""
    stripped = line.strip()
    if not stripped or stripped.startswith(("#", "!")):
        return None
    next_hop: Optional[str] = None
    via = _VIA_RE.search(stripped)
    if via:
        next_hop = via.group(1)
    slash = _PREFIX_RE.search(stripped)
    if slash:
        network, length_text = slash.groups()
        length = int(length_text)
        if length > 32:
            raise RibParseError("prefix length %s too long" % length_text)
        address_value = parse_ipv4(network)
        masked = (
            address_value >> (32 - length) << (32 - length)
            if length
            else 0
        )
        if masked != address_value:
            # Tolerate host bits in dumps; canonicalise instead of failing.
            address_value = masked
        return Prefix(address_value >> (32 - length) if length else 0, length), next_hop
    mask = _MASK_RE.search(stripped)
    if mask:
        network, mask_text = mask.groups()
        try:
            length = mask_to_length(mask_text)
        except (RibParseError, AddressParseError):
            return None
        address_value = parse_ipv4(network)
        bits = address_value >> (32 - length) if length else 0
        return Prefix(bits, length), next_hop
    return None


def parse_rib(
    lines: Iterable[str], strict: bool = False
) -> List[Entry]:
    """Parse a whole dump; duplicate prefixes keep the first next hop."""
    seen = {}
    for number, line in enumerate(lines, start=1):
        try:
            entry = parse_line(line)
        except (RibParseError, AddressParseError) as exc:
            if strict:
                raise RibParseError("line %d: %s" % (number, exc))
            continue
        if entry is None:
            if strict and line.strip() and not line.strip().startswith(("#", "!")):
                raise RibParseError("line %d: unrecognised route" % number)
            continue
        prefix, next_hop = entry
        seen.setdefault(prefix, next_hop)
    return sorted(seen.items(), key=lambda item: (item[0].length, item[0].bits))


def parse_rib_file(path: str, strict: bool = False) -> List[Entry]:
    """Parse a RIB dump from a file path."""
    with open(path) as handle:
        return parse_rib(handle, strict=strict)
