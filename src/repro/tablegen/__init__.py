"""Forwarding-table sources: synthetic generation, neighbours, RIB dumps."""

from repro.tablegen.histogram import (
    DEFAULT_IPV4_HISTOGRAM,
    DEFAULT_IPV6_HISTOGRAM,
    mean_length,
    normalise,
)
from repro.tablegen.neighbors import (
    PAPER_PAIRS,
    PAPER_TABLE_SIZES,
    NeighborProfile,
    derive_neighbor,
    paper_router_tables,
    subset_table,
)
from repro.tablegen.ribparse import (
    RibParseError,
    mask_to_length,
    parse_line,
    parse_rib,
    parse_rib_file,
)
from repro.tablegen.synthetic import TableGenerator, generate_table

__all__ = [
    "DEFAULT_IPV4_HISTOGRAM",
    "DEFAULT_IPV6_HISTOGRAM",
    "NeighborProfile",
    "PAPER_PAIRS",
    "PAPER_TABLE_SIZES",
    "RibParseError",
    "TableGenerator",
    "derive_neighbor",
    "generate_table",
    "mask_to_length",
    "mean_length",
    "normalise",
    "paper_router_tables",
    "parse_line",
    "parse_rib",
    "parse_rib_file",
    "subset_table",
]
