"""Synthetic BGP-like forwarding tables.

Real 1999 snapshots are unavailable, so this generator builds tables whose
*structure* matches what the clue scheme is sensitive to:

* the prefix-length histogram of the era (``repro.tablegen.histogram``);
* nesting — a sizeable share of prefixes are more-specifics of other table
  entries (customer routes under provider aggregates), which is what makes
  clue vertices have descendants at all;
* clustered address usage — allocations concentrate under a set of top
  blocks rather than spraying uniformly over the 32-bit space.

The generator is deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.addressing import Prefix
from repro.tablegen.histogram import DEFAULT_IPV4_HISTOGRAM, normalise

Entry = Tuple[Prefix, object]

#: Default probability that a new prefix is planted under an existing,
#: shorter one (provider aggregate → customer more-specific).
DEFAULT_NESTING = 0.45

#: Default number of top-level allocation blocks (/8s) that receive all
#: the generated prefixes, mimicking the clustered IPv4 space of 1999.
DEFAULT_TOP_BLOCKS = 48


class TableGenerator:
    """Generates synthetic forwarding tables with a BGP-like shape."""

    def __init__(
        self,
        histogram: Optional[Dict[int, float]] = None,
        width: int = 32,
        nesting: float = DEFAULT_NESTING,
        top_blocks: int = DEFAULT_TOP_BLOCKS,
        next_hops: Sequence[object] = ("hop-a", "hop-b", "hop-c", "hop-d"),
    ):
        if not 0.0 <= nesting <= 1.0:
            raise ValueError("nesting must be within [0, 1]")
        if top_blocks < 1:
            raise ValueError("at least one top block is required")
        if not next_hops:
            raise ValueError("a non-empty next-hop pool is required")
        self.width = width
        self.histogram = normalise(
            histogram if histogram is not None else DEFAULT_IPV4_HISTOGRAM
        )
        self.nesting = nesting
        self.top_blocks = top_blocks
        self.next_hops = list(next_hops)
        self._lengths = sorted(self.histogram)
        self._weights = [self.histogram[length] for length in self._lengths]

    # ------------------------------------------------------------------
    def generate(self, count: int, seed: int = 0) -> List[Entry]:
        """Generate ``count`` unique prefixes with next hops."""
        if count < 0:
            raise ValueError("count cannot be negative")
        rng = random.Random(seed)
        blocks = self._allocate_blocks(rng)
        chosen: Dict[Prefix, object] = {}
        # Prefixes sampled shortest-first so more-specifics can nest under
        # already-chosen entries.
        lengths = sorted(
            rng.choices(self._lengths, weights=self._weights, k=count)
        )
        shorter_pool: List[Prefix] = []
        attempts_left = count * 20
        for length in lengths:
            # Cap the attempts spent on any single entry: a saturated
            # length (e.g. all top blocks already chosen as /8s) would
            # otherwise burn the whole global budget on one impossible
            # draw and silently truncate every later length.
            per_entry = 200
            while attempts_left and per_entry:
                attempts_left -= 1
                per_entry -= 1
                prefix = self._draw_prefix(rng, length, blocks, shorter_pool)
                if prefix not in chosen:
                    chosen[prefix] = rng.choice(self.next_hops)
                    shorter_pool.append(prefix)
                    break
        return sorted(chosen.items(), key=lambda item: (item[0].length, item[0].bits))

    # ------------------------------------------------------------------
    def _allocate_blocks(self, rng: random.Random) -> List[Prefix]:
        """The top-level /8-style allocation blocks."""
        block_length = min(8, self.width)
        values = rng.sample(range(1 << block_length), k=min(self.top_blocks, 1 << block_length))
        return [Prefix(value, block_length, self.width) for value in values]

    def _draw_prefix(
        self,
        rng: random.Random,
        length: int,
        blocks: List[Prefix],
        shorter_pool: List[Prefix],
    ) -> Prefix:
        """One candidate prefix of the requested length."""
        if shorter_pool and rng.random() < self.nesting:
            parent = rng.choice(shorter_pool)
            if parent.length < length:
                extra = length - parent.length
                bits = (parent.bits << extra) | rng.getrandbits(extra)
                return Prefix(bits, length, self.width)
        block = rng.choice(blocks)
        if block.length >= length:
            return block.truncate(length)
        extra = length - block.length
        bits = (block.bits << extra) | rng.getrandbits(extra)
        return Prefix(bits, length, self.width)


def generate_table(
    count: int,
    seed: int = 0,
    histogram: Optional[Dict[int, float]] = None,
    width: int = 32,
    nesting: float = DEFAULT_NESTING,
    next_hops: Sequence[object] = ("hop-a", "hop-b", "hop-c", "hop-d"),
) -> List[Entry]:
    """Convenience wrapper: one-shot table generation."""
    generator = TableGenerator(
        histogram=histogram, width=width, nesting=nesting, next_hops=next_hops
    )
    return generator.generate(count, seed)
