"""Deriving *neighbouring* forwarding tables with controlled similarity.

The premise of the clue scheme is that neighbouring routers hold very
similar tables (§3).  This module derives a neighbour's table from a base
table with explicit knobs for every way real neighbours diverge:

* ``drop`` — routes the neighbour filters or never heard (BGP policy);
* ``add`` — routes only the neighbour has (its own customers/peers);
* ``add_specifics`` — more-specifics only the neighbour has.  These are
  *exactly* what creates the paper's "problematic clues": a clue ``s`` of
  the sender below which the receiver holds a prefix the sender lacks;
* ``aggregate`` — groups of the base table's more-specifics the neighbour
  has aggregated away (replaced by their covering prefix), producing
  Advance-method case 1 (clue vertex absent at the receiver);
* ``rehop`` — shared prefixes whose next hop differs.

The seven named routers of the paper's §6 (Table 1) are reconstructed by
:func:`paper_router_tables`, with all cross-similarities calibrated so the
pair statistics land in the regime of Tables 2 and 3.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.addressing import Prefix
from repro.tablegen.synthetic import Entry, TableGenerator, generate_table

#: Sizes of the paper's seven router tables (Table 1).
PAPER_TABLE_SIZES: Dict[str, int] = {
    "MAE-East": 42986,
    "MAE-West": 23123,
    "Paix": 5974,
    "AT&T-1": 23414,
    "AT&T-2": 60475,
    "ISP-B-1": 56034,
    "ISP-B-2": 55959,
}

#: The ordered (sender, receiver) pairs evaluated in the paper's tables.
PAPER_PAIRS: List[Tuple[str, str]] = [
    ("MAE-East", "MAE-West"),
    ("MAE-East", "Paix"),
    ("Paix", "MAE-East"),
    ("AT&T-1", "AT&T-2"),
    ("AT&T-2", "AT&T-1"),
    ("ISP-B-1", "ISP-B-2"),
    ("ISP-B-2", "ISP-B-1"),
]


class NeighborProfile:
    """Perturbation knobs describing how a neighbour's table differs."""

    def __init__(
        self,
        drop: float = 0.01,
        add: float = 0.01,
        add_specifics: float = 0.005,
        aggregate: float = 0.002,
        rehop: float = 0.05,
    ):
        for name, value in (
            ("drop", drop),
            ("add", add),
            ("add_specifics", add_specifics),
            ("aggregate", aggregate),
            ("rehop", rehop),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError("%s must be within [0, 1]" % name)
        self.drop = drop
        self.add = add
        self.add_specifics = add_specifics
        self.aggregate = aggregate
        self.rehop = rehop


def derive_neighbor(
    base: Sequence[Entry],
    profile: Optional[NeighborProfile] = None,
    seed: int = 1,
    next_hops: Sequence[object] = ("hop-a", "hop-b", "hop-c", "hop-d"),
    width: int = 32,
    histogram: Optional[dict] = None,
) -> List[Entry]:
    """Derive a neighbouring router's table from ``base``.

    ``width``/``histogram`` control the family of the *fresh* prefixes
    only the neighbour has; IPv6 callers should pass 128 and an IPv6
    histogram so extras land in the right space.
    """
    if width == 128 and histogram is None:
        from repro.tablegen.histogram import DEFAULT_IPV6_HISTOGRAM

        histogram = DEFAULT_IPV6_HISTOGRAM
    profile = profile if profile is not None else NeighborProfile()
    rng = random.Random(seed)
    base = list(base)
    existing = {prefix for prefix, _ in base}
    result: Dict[Prefix, object] = {}

    # Aggregation: victims lose their more-specifics, keeping (or creating)
    # the covering prefix one to four bits shorter.
    aggregated: set = set()
    if profile.aggregate > 0:
        for prefix, _ in base:
            if prefix.length > 8 and rng.random() < profile.aggregate:
                aggregated.add(prefix)

    for prefix, next_hop in base:
        if prefix in aggregated:
            cover = prefix.truncate(max(prefix.length - rng.randint(1, 4), 1))
            result.setdefault(cover, next_hop)
            continue
        if rng.random() < profile.drop:
            continue
        hop = rng.choice(next_hops) if rng.random() < profile.rehop else next_hop
        result[prefix] = hop

    # Fresh prefixes only the neighbour has, planted in the same address
    # regions (under random base prefixes' top blocks).
    extra_count = round(len(base) * profile.add)
    extras = generate_table(
        extra_count,
        seed=seed + 101,
        width=width,
        next_hops=next_hops,
        histogram=histogram,
    )
    for prefix, next_hop in extras:
        if prefix not in existing:
            result.setdefault(prefix, next_hop)

    # More-specifics only the neighbour has — the problematic-clue source.
    specific_count = round(len(base) * profile.add_specifics)
    for _ in range(specific_count):
        parent, _ = base[rng.randrange(len(base))]
        room = width - parent.length
        if room < 1:
            continue
        extra_bits = rng.randint(1, min(8, room))
        bits = (parent.bits << extra_bits) | rng.getrandbits(extra_bits)
        specific = Prefix(bits, parent.length + extra_bits, width)
        if specific not in existing:
            result.setdefault(specific, rng.choice(next_hops))

    return sorted(result.items(), key=lambda item: (item[0].length, item[0].bits))


def subset_table(
    base: Sequence[Entry],
    count: int,
    seed: int = 2,
    extra_fraction: float = 0.01,
    hole_fraction: float = 0.02,
    specific_fraction: float = 0.008,
    next_hops: Sequence[object] = ("hop-a", "hop-b", "hop-c", "hop-d"),
    width: int = 32,
) -> List[Entry]:
    """A smaller router whose table is (almost) a subset of ``base``.

    Models the paper's route-server relationships: the Paix and MAE-West
    tables are nearly contained in MAE-East's (Table 3).  Sampling is
    *family-complete*: prefixes are grouped under their top-level marked
    ancestor and whole families are taken, because a router that holds an
    aggregate route almost always heard its more-specifics too.  Sampling
    independently instead would leave "holes" — the subset keeping an
    aggregate whose specifics only the big table has — and those holes are
    exactly what Claim 1 calls problematic, wildly inflating Table 2.

    Real subsets are not perfectly family-complete, so two knobs restore
    the paper's (small, nonzero) Table 2 counts: ``hole_fraction`` drops
    a few covered more-specifics (creating problematic clues towards the
    big table), and ``specific_fraction`` adds a few private
    more-specifics (creating problematic clues from the big table).
    """
    rng = random.Random(seed)
    base = list(base)
    count = min(count, len(base))
    from repro.trie.binary_trie import BinaryTrie

    trie = BinaryTrie.from_prefixes(base, width)
    families: Dict[Prefix, List[Entry]] = {}
    for prefix, next_hop in base:
        ancestor = trie.least_marked_ancestor(prefix)
        root = ancestor.prefix
        # repro: noqa[RC106] -- climbs marked ancestors; height <= prefix.length
        while True:
            above = trie.least_marked_ancestor(root, include_self=False)
            if above is None:
                break
            root = above.prefix
        families.setdefault(root, []).append((prefix, next_hop))
    order = sorted(families)
    rng.shuffle(order)
    result: Dict[Prefix, object] = {}
    for root in order:
        if len(result) >= count:
            break
        for prefix, next_hop in families[root]:
            result[prefix] = next_hop
    # Holes: drop a few covered more-specifics (kept by the big table).
    covered = [
        prefix
        for prefix in result
        if any(ancestor in result for ancestor in prefix.ancestors())
    ]
    rng.shuffle(covered)
    for prefix in covered[: round(len(result) * hole_fraction)]:
        del result[prefix]
    # Private more-specifics of included prefixes, absent from the base.
    base_prefixes = {prefix for prefix, _ in base}
    included = list(result)
    for _ in range(round(count * specific_fraction)):
        parent = included[rng.randrange(len(included))]
        room = width - parent.length
        if room < 1:
            continue
        extra_bits = rng.randint(1, min(6, room))
        bits = (parent.bits << extra_bits) | rng.getrandbits(extra_bits)
        specific = Prefix(bits, parent.length + extra_bits, width)
        if specific not in base_prefixes:
            result.setdefault(specific, rng.choice(next_hops))
    extras = generate_table(
        round(count * extra_fraction), seed=seed + 7, width=width, next_hops=next_hops
    )
    for prefix, next_hop in extras:
        result.setdefault(prefix, next_hop)
    return sorted(result.items(), key=lambda item: (item[0].length, item[0].bits))


def paper_router_tables(
    scale: float = 0.1, seed: int = 42
) -> Dict[str, List[Entry]]:
    """Synthetic stand-ins for the paper's seven routers (Table 1).

    ``scale`` multiplies every table size (1.0 reproduces paper-sized
    tables; the default 0.1 keeps the full 15-method matrix fast).
    Relationships encoded, per Tables 1 and 3:

    * MAE-West and Paix are near-subsets of MAE-East (route servers);
    * AT&T-1 is a near-subset of its bigger sibling AT&T-2;
    * ISP-B-1 and ISP-B-2 are same-size siblings with ~99 % overlap.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    sizes = {name: max(int(round(size * scale)), 50) for name, size in PAPER_TABLE_SIZES.items()}
    generator = TableGenerator()
    tables: Dict[str, List[Entry]] = {}

    mae_east = generator.generate(sizes["MAE-East"], seed=seed)
    tables["MAE-East"] = mae_east
    tables["MAE-West"] = subset_table(
        mae_east, sizes["MAE-West"], seed=seed + 1, extra_fraction=0.012
    )
    # Paix nests inside MAE-West (and hence inside MAE-East): Table 3 shows
    # its snapshot almost entirely contained in both route servers.
    tables["Paix"] = subset_table(
        tables["MAE-West"], sizes["Paix"], seed=seed + 2, extra_fraction=0.013
    )

    att2 = generator.generate(sizes["AT&T-2"], seed=seed + 3)
    tables["AT&T-2"] = att2
    tables["AT&T-1"] = subset_table(
        att2, sizes["AT&T-1"], seed=seed + 4, extra_fraction=0.002
    )

    ispb1 = generator.generate(sizes["ISP-B-1"], seed=seed + 5)
    tables["ISP-B-1"] = ispb1
    tables["ISP-B-2"] = derive_neighbor(
        ispb1,
        NeighborProfile(drop=0.009, add=0.008, add_specifics=0.0012, aggregate=0.0, rehop=0.05),
        seed=seed + 6,
    )
    return tables
