"""Network topologies for the routing substrate.

The routing protocols of this package run over a :mod:`networkx` graph.
Node attributes used downstream:

* ``originated`` — list of ``Prefix`` objects the node injects into the
  routing system (its own customers/subnets);
* ``role`` — free-form tag (``"backbone"``, ``"edge"``, ``"stub"``) used
  by the load-balancing and Figure 1 experiments.

Besides arbitrary user-supplied graphs, three constructors cover the
shapes the paper reasons about: a linear source→backbone→destination
chain (Figure 1), a two-level ISP hierarchy, and a random mesh.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.addressing import Prefix
from repro.tablegen.synthetic import TableGenerator


def chain_topology(length: int) -> nx.Graph:
    """A linear chain ``r0 – r1 – … – r{length-1}``.

    Ends are tagged ``edge``; interior nodes ``backbone``, matching the
    paper's Figure 1 narrative where the middle of the path crosses the
    Internet core.
    """
    if length < 2:
        raise ValueError("a chain needs at least two routers")
    graph = nx.Graph()
    for index in range(length):
        role = "edge" if index in (0, length - 1) else "backbone"
        graph.add_node("r%d" % index, role=role, originated=[])
    for index in range(length - 1):
        graph.add_edge("r%d" % index, "r%d" % (index + 1))
    return graph


def hierarchy_topology(
    backbone: int = 4,
    regionals_per_backbone: int = 2,
    stubs_per_regional: int = 3,
    seed: int = 0,
) -> nx.Graph:
    """A three-tier ISP hierarchy: backbone ring, regionals, stubs."""
    if backbone < 2:
        raise ValueError("the backbone needs at least two routers")
    rng = random.Random(seed)
    graph = nx.Graph()
    backbone_names = ["bb%d" % i for i in range(backbone)]
    for name in backbone_names:
        graph.add_node(name, role="backbone", originated=[])
    for index, name in enumerate(backbone_names):
        graph.add_edge(name, backbone_names[(index + 1) % backbone])
    for b_index, b_name in enumerate(backbone_names):
        for r_index in range(regionals_per_backbone):
            r_name = "reg%d_%d" % (b_index, r_index)
            graph.add_node(r_name, role="regional", originated=[])
            graph.add_edge(r_name, b_name)
            # A second uplink for some regionals keeps the graph biconnected.
            if rng.random() < 0.5:
                graph.add_edge(r_name, backbone_names[(b_index + 1) % backbone])
            for s_index in range(stubs_per_regional):
                s_name = "stub%d_%d_%d" % (b_index, r_index, s_index)
                graph.add_node(s_name, role="stub", originated=[])
                graph.add_edge(s_name, r_name)
    return graph


def mesh_topology(nodes: int, degree: int = 3, seed: int = 0) -> nx.Graph:
    """A random connected mesh (regular-ish degree)."""
    if nodes < 2:
        raise ValueError("a mesh needs at least two routers")
    degree = min(degree, nodes - 1)
    graph: nx.Graph = nx.random_regular_graph(
        degree if (degree * nodes) % 2 == 0 else degree + 1, nodes, seed=seed
    )
    graph = nx.relabel_nodes(graph, {i: "r%d" % i for i in range(nodes)})
    if not nx.is_connected(graph):
        components = [list(c) for c in nx.connected_components(graph)]
        for first, second in zip(components, components[1:]):
            graph.add_edge(first[0], second[0])
    for name in graph.nodes:
        graph.nodes[name]["role"] = "backbone"
        graph.nodes[name]["originated"] = []
    return graph


def originate_prefixes(
    graph: nx.Graph,
    per_node: int = 4,
    seed: int = 0,
    roles: Optional[Sequence[str]] = None,
    nesting: float = 0.3,
) -> Dict[str, List[Prefix]]:
    """Assign originated prefixes to (a role subset of) the graph's nodes.

    Each selected node receives ``per_node`` unique prefixes drawn from the
    1999 histogram; the assignment is recorded in the node attribute and
    returned.
    """
    generator = TableGenerator(nesting=nesting)
    nodes = [
        name
        for name in sorted(graph.nodes)
        if roles is None or graph.nodes[name].get("role") in roles
    ]
    table = generator.generate(per_node * len(nodes), seed=seed)
    assignment: Dict[str, List[Prefix]] = {name: [] for name in nodes}
    for index, (prefix, _hop) in enumerate(table):
        name = nodes[index % len(nodes)]
        assignment[name].append(prefix)
    for name, prefixes in assignment.items():
        graph.nodes[name]["originated"] = prefixes
    return assignment
