"""A simplified path-vector protocol (BGP-like) over a topology.

The clue scheme's premise — neighbouring forwarding tables are similar
because "the computation of a forwarding table at a router is based on the
forwarding tables of its neighbors" (§3) — is demonstrated here from first
principles: routers exchange route advertisements carrying a router-level
path, select the shortest loop-free path per prefix, and install the
neighbour they heard it from as the next hop.

Policy knobs mirror the BGP behaviours the paper discusses:

* ``aggregation_points`` — routers that aggregate the prefixes they
  administer (their own originated more-specifics) into a covering
  prefix before exporting, the behaviour that creates Advance-method
  case 1 / problematic clues between domains;
* ``filters`` — per-router predicates hiding routes from neighbours
  ("policies by which a BGP router tries to hide information").

The computation is a synchronous fixed-point iteration, deterministic for
a given topology.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.addressing import Prefix

#: route = (path, prefix): ``path`` is the router-name path to the origin,
#: path[0] being the router holding the route.
Route = Tuple[Tuple[str, ...], Prefix]
FilterFn = Callable[[str, str, Prefix], bool]


class PathVectorRouting:
    """Run a path-vector computation and expose per-router tables."""

    def __init__(
        self,
        graph: nx.Graph,
        aggregation_points: Optional[Dict[str, int]] = None,
        export_filter: Optional[FilterFn] = None,
        max_iterations: int = 64,
    ):
        self.graph = graph
        #: router -> aggregation length: originated prefixes longer than
        #: this are exported as their truncation to this length.
        self.aggregation_points = aggregation_points or {}
        self.export_filter = export_filter
        self.max_iterations = max_iterations
        #: router -> prefix -> (path, next_hop)
        self.rib: Dict[str, Dict[Prefix, Tuple[Tuple[str, ...], Optional[str]]]] = {}
        self._converged = False
        self._iterations = 0

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Iterate advertisement rounds to a fixed point."""
        rib: Dict[str, Dict[Prefix, Tuple[Tuple[str, ...], Optional[str]]]] = {
            name: {} for name in self.graph.nodes
        }
        for name in self.graph.nodes:
            for prefix in self._exported_originations(name):
                rib[name][prefix] = ((name,), None)
        for iteration in range(self.max_iterations):
            changed = False
            for name in sorted(self.graph.nodes):
                for neighbor in sorted(self.graph.neighbors(name)):
                    for prefix, (path, _hop) in list(rib[neighbor].items()):
                        if name in path:
                            continue  # loop prevention, BGP-style
                        if self.export_filter is not None and not self.export_filter(
                            neighbor, name, prefix
                        ):
                            continue
                        candidate = (name,) + path
                        current = rib[name].get(prefix)
                        if current is None or len(candidate) < len(current[0]):
                            rib[name][prefix] = (candidate, neighbor)
                            changed = True
            self._iterations = iteration + 1
            if not changed:
                self._converged = True
                break
        self.rib = rib

    def _exported_originations(self, name: str) -> Set[Prefix]:
        """A router's originated prefixes after local aggregation."""
        originated: Iterable[Prefix] = self.graph.nodes[name].get("originated", [])
        limit = self.aggregation_points.get(name)
        exported: Set[Prefix] = set()
        for prefix in originated:
            if limit is not None and prefix.length > limit:
                exported.add(prefix.truncate(limit))
            else:
                exported.add(prefix)
        return exported

    # ------------------------------------------------------------------
    def converged(self) -> bool:
        """True if a fixed point was reached within the iteration budget."""
        return self._converged

    def iterations(self) -> int:
        """Rounds executed."""
        return self._iterations

    def forwarding_table(self, name: str) -> List[Tuple[Prefix, object]]:
        """The ``(prefix, next_hop_router)`` table of one router.

        Originated prefixes get the router itself as next hop (local
        delivery).
        """
        if not self.rib:
            raise RuntimeError("run() must be called first")
        table = []
        for prefix, (path, next_hop) in self.rib[name].items():
            table.append((prefix, next_hop if next_hop is not None else name))
        table.sort(key=lambda item: (item[0].length, item[0].bits))
        return table

    def all_tables(self) -> Dict[str, List[Tuple[Prefix, object]]]:
        """Forwarding tables of every router."""
        return {name: self.forwarding_table(name) for name in self.graph.nodes}

    def path_of(self, name: str, prefix: Prefix) -> Optional[Tuple[str, ...]]:
        """The selected router path from ``name`` to the prefix's origin."""
        entry = self.rib.get(name, {}).get(prefix)
        return entry[0] if entry else None
