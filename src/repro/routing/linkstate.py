"""A link-state (OSPF-like) intra-domain routing substrate.

Every router learns the full topology (that is the essence of link
state); forwarding tables follow from single-source shortest paths.  The
substrate exists for the §5.2 "BGP over OSPF" scenario: inside an
autonomous system the egress router is reached over IGP routes, so a
border router resolves a destination in two passes (see
:mod:`repro.routing.twopass`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.addressing import Prefix


class LinkStateRouting:
    """Shortest-path routing over a weighted graph."""

    def __init__(self, graph: nx.Graph, weight: str = "weight"):
        self.graph = graph
        self.weight = weight
        self._paths: Dict[str, Dict[str, List[str]]] = {}

    def run(self) -> None:
        """Compute all-pairs shortest paths (Dijkstra per source)."""
        self._paths = {}
        for source in self.graph.nodes:
            self._paths[source] = nx.single_source_dijkstra_path(
                self.graph, source, weight=self.weight
            )

    def next_hop(self, source: str, target: str) -> Optional[str]:
        """First hop on the shortest path from ``source`` to ``target``."""
        if not self._paths:
            raise RuntimeError("run() must be called first")
        path = self._paths.get(source, {}).get(target)
        if path is None or len(path) < 2:
            return None
        return path[1]

    def path(self, source: str, target: str) -> Optional[List[str]]:
        """The full shortest path, or None when unreachable."""
        if not self._paths:
            raise RuntimeError("run() must be called first")
        return self._paths.get(source, {}).get(target)

    def forwarding_table(
        self, source: str, destinations: Dict[str, List[Prefix]]
    ) -> List[Tuple[Prefix, object]]:
        """Prefix table of ``source`` given per-router prefix ownership.

        ``destinations`` maps router name → prefixes homed there; the next
        hop for each prefix is the first hop towards its home router.
        """
        table: List[Tuple[Prefix, object]] = []
        for target, prefixes in destinations.items():
            if target == source:
                hop: object = source
            else:
                hop = self.next_hop(source, target)
                if hop is None:
                    continue
            for prefix in prefixes:
                table.append((prefix, hop))
        table.sort(key=lambda item: (item[0].length, item[0].bits))
        return table
