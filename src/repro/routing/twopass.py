"""BGP over OSPF: the two-pass lookup of §5.2.

When a border router's best match resolves to a *recursive* next hop (the
BGP router on the far side of the AS, with no directly attached
interface), the router walks its table twice: once for the destination —
yielding the egress router's address — and once for that address —
yielding the actual interface next hop.

The paper's point: the clue placed on the packet is still the *first*
BMP, because downstream routers resolve the packet's destination, not the
local egress.  Optionally both BMPs can travel ("in some cases it might
be beneficial to place both BMPs on the packet"); the class reports both
so the caller can model either choice.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.addressing import Address, Prefix
from repro.lookup.base import LookupAlgorithm
from repro.lookup.counters import MemoryCounter


class RecursiveNextHop:
    """A BGP next hop that is itself an address to be resolved by the IGP."""

    __slots__ = ("egress_address",)

    def __init__(self, egress_address: Address):
        self.egress_address = egress_address

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RecursiveNextHop)
            and self.egress_address == other.egress_address
        )

    def __hash__(self) -> int:
        return hash(("recursive", self.egress_address))

    def __repr__(self) -> str:
        return "RecursiveNextHop(%s)" % self.egress_address


class TwoPassResult:
    """Outcome of a (possibly) two-pass lookup."""

    __slots__ = (
        "destination_prefix",
        "egress_prefix",
        "next_hop",
        "accesses",
        "passes",
    )

    def __init__(
        self,
        destination_prefix: Optional[Prefix],
        egress_prefix: Optional[Prefix],
        next_hop: Optional[object],
        accesses: int,
        passes: int,
    ):
        self.destination_prefix = destination_prefix
        self.egress_prefix = egress_prefix
        self.next_hop = next_hop
        self.accesses = accesses
        self.passes = passes

    def clue_prefix(self) -> Optional[Prefix]:
        """The clue to stamp on the packet: always the *first* BMP (§5.2)."""
        return self.destination_prefix


class TwoPassLookup:
    """Wraps a base algorithm with recursive-next-hop resolution."""

    def __init__(self, base: LookupAlgorithm):
        self.base = base

    def lookup(
        self, address: Address, counter: Optional[MemoryCounter] = None
    ) -> TwoPassResult:
        """Resolve ``address``; a recursive next hop triggers a second pass."""
        counter = counter if counter is not None else MemoryCounter()
        first = self.base.lookup(address, counter)
        if not isinstance(first.next_hop, RecursiveNextHop):
            return TwoPassResult(
                first.prefix, None, first.next_hop, counter.accesses, 1
            )
        second = self.base.lookup(first.next_hop.egress_address, counter)
        return TwoPassResult(
            first.prefix,
            second.prefix,
            second.next_hop,
            counter.accesses,
            2,
        )


def recursive_fraction(entries: Iterable[Tuple[Prefix, object]]) -> float:
    """Fraction of table entries whose next hop is recursive."""
    total = 0
    recursive = 0
    for _prefix, next_hop in entries:
        total += 1
        if isinstance(next_hop, RecursiveNextHop):
            recursive += 1
    return recursive / total if total else 0.0
