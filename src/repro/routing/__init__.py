"""Routing substrate: topologies, path-vector, link-state, two-pass."""

from repro.routing.linkstate import LinkStateRouting
from repro.routing.pathvector import PathVectorRouting
from repro.routing.topology import (
    chain_topology,
    hierarchy_topology,
    mesh_topology,
    originate_prefixes,
)
from repro.routing.twopass import (
    RecursiveNextHop,
    TwoPassLookup,
    TwoPassResult,
    recursive_fraction,
)

__all__ = [
    "LinkStateRouting",
    "PathVectorRouting",
    "RecursiveNextHop",
    "TwoPassLookup",
    "TwoPassResult",
    "chain_topology",
    "hierarchy_topology",
    "mesh_topology",
    "originate_prefixes",
    "recursive_fraction",
]
