"""Structural metrics of forwarding tables and table pairs.

The clue scheme's performance is a function of table *structure* —
nesting (do clue vertices have descendants?), and pair similarity (does
Claim 1 hold?).  These metrics quantify both, and are what
``repro.tablegen`` is calibrated against; pointing them at real RIB
dumps shows immediately whether a deployment is in the paper's regime.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.addressing import Prefix
from repro.tablegen.synthetic import Entry
from repro.trie.binary_trie import BinaryTrie
from repro.trie.overlay import TrieOverlay


def jaccard(left: Sequence[Entry], right: Sequence[Entry]) -> float:
    """Jaccard similarity of the two prefix sets."""
    a = {prefix for prefix, _ in left}
    b = {prefix for prefix, _ in right}
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def containment(inner: Sequence[Entry], outer: Sequence[Entry]) -> float:
    """Fraction of ``inner``'s prefixes also present in ``outer``."""
    a = {prefix for prefix, _ in inner}
    if not a:
        return 1.0
    b = {prefix for prefix, _ in outer}
    return len(a & b) / len(a)


def nesting_profile(entries: Sequence[Entry], width: int = 32) -> Dict[str, float]:
    """How deeply the table nests: covered fraction and depth histogram.

    ``covered_fraction`` is the share of prefixes having a shorter table
    prefix above them — the provider-aggregate/customer-specific pattern
    the clue scheme feeds on.
    """
    trie = BinaryTrie.from_prefixes(entries, width)
    covered = 0
    depths: Dict[int, int] = {}
    for prefix, _hop in entries:
        level = 0
        probe = prefix
        while probe.length:
            probe = probe.parent()
            node = trie.find_node(probe)
            if node is not None and node.marked:
                level += 1
        if level:
            covered += 1
        depths[level] = depths.get(level, 0) + 1
    total = len(entries) or 1
    max_depth = max(depths) if depths else 0
    return {
        "covered_fraction": covered / total,
        "max_nesting_depth": float(max_depth),
        "mean_nesting_depth": sum(k * v for k, v in depths.items()) / total,
    }


def length_histogram(entries: Sequence[Entry]) -> Dict[int, float]:
    """Normalised prefix-length distribution of a table."""
    counts: Dict[int, int] = {}
    for prefix, _hop in entries:
        counts[prefix.length] = counts.get(prefix.length, 0) + 1
    total = len(entries) or 1
    return {length: count / total for length, count in sorted(counts.items())}


def histogram_distance(
    left: Dict[int, float], right: Dict[int, float]
) -> float:
    """Total-variation distance between two length distributions."""
    lengths = set(left) | set(right)
    return 0.5 * sum(
        abs(left.get(length, 0.0) - right.get(length, 0.0)) for length in lengths
    )


def pair_report(
    sender: Sequence[Entry], receiver: Sequence[Entry], width: int = 32
) -> Dict[str, float]:
    """Everything that predicts how well clues will work for a pair."""
    sender_trie = BinaryTrie.from_prefixes(sender, width)
    receiver_trie = BinaryTrie.from_prefixes(receiver, width)
    overlay = TrieOverlay(sender_trie, receiver_trie)
    stats = overlay.statistics()
    problematic = stats["problematic_clues"]
    nesting = nesting_profile(receiver, width)
    return {
        "sender_prefixes": float(stats["sender_prefixes"]),
        "receiver_prefixes": float(stats["receiver_prefixes"]),
        "jaccard": jaccard(sender, receiver),
        "sender_in_receiver": containment(sender, receiver),
        "receiver_in_sender": containment(receiver, sender),
        "problematic_clues": float(problematic),
        "claim1_fraction": 1.0 - problematic / max(stats["sender_prefixes"], 1),
        "receiver_covered_fraction": nesting["covered_fraction"],
        "length_histogram_distance": histogram_distance(
            length_histogram(sender), length_histogram(receiver)
        ),
    }
