"""Structural analysis of forwarding tables and pairs."""

from repro.analysis.similarity import (
    containment,
    histogram_distance,
    jaccard,
    length_histogram,
    nesting_profile,
    pair_report,
)

__all__ = [
    "containment",
    "histogram_distance",
    "jaccard",
    "length_histogram",
    "nesting_profile",
    "pair_report",
]
