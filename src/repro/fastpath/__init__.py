"""repro.fastpath — flat-array clue tables and vectorized batch lookup.

Compiles built object-graph structures (`BinaryTrie`, `ClueTable`) into
immutable contiguous arrays and batches whole destination vectors
through numpy kernels — with a pure-Python fallback so numpy never
becomes a hard dependency — while reproducing the paper's per-packet
memory-reference accounting exactly (enforced by `certify`).
"""

from repro.fastpath.backend import (
    CODE_CLUE_MISS,
    CODE_FD_IMMEDIATE,
    CODE_FULL,
    CODE_RESUMED,
    CODE_TO_METHOD,
    HAVE_NUMPY,
    get_numpy,
    numpy_eligible,
)
from repro.fastpath.certify import (
    CertificationError,
    certification_batch,
    certify_clue,
    certify_full,
)
from repro.fastpath.compile import (
    CompiledClueTable,
    CompiledTrie,
    FastpathUnsupported,
    ResultPool,
    compile_clue_table,
    compile_trie,
)
from repro.fastpath.kernels import (
    as_destination_array,
    as_length_array,
    full_lookup_batch,
    lookup_batch,
)
from repro.fastpath.layouts import (
    LAYOUTS,
    STRIDES,
    CompiledMultibitTrie,
    compile_layout,
    layout_stride,
)

__all__ = [
    "CODE_CLUE_MISS",
    "CODE_FD_IMMEDIATE",
    "CODE_FULL",
    "CODE_RESUMED",
    "CODE_TO_METHOD",
    "CertificationError",
    "CompiledClueTable",
    "CompiledMultibitTrie",
    "CompiledTrie",
    "FastpathUnsupported",
    "HAVE_NUMPY",
    "LAYOUTS",
    "ResultPool",
    "STRIDES",
    "as_destination_array",
    "as_length_array",
    "certification_batch",
    "certify_clue",
    "certify_full",
    "compile_clue_table",
    "compile_layout",
    "compile_trie",
    "full_lookup_batch",
    "get_numpy",
    "layout_stride",
    "lookup_batch",
    "numpy_eligible",
]
