"""Pure-Python batch kernels: semantics-identical twins of the numpy path.

These run whenever numpy is absent, when the caller forces them (the
differential tests do), and always for width-128 tables whose addresses
do not fit an int64 lane.  They iterate per packet — the point is
portability and a second implementation to certify against, not speed —
so they are deliberately *not* marked ``@hot_path`` — the per-element
loops that RC111 bans from vectorized kernels are the whole method here
— and *are* marked ``@cold_path``, so the closure rule (RC113) treats
the kernel dispatch into them as a sanctioned boundary: their per-batch
result lists are amortized across every lane of the batch.

Cost-model parity with the object graph (and with the numpy kernels):

* full lookup — 1 reference for the root plus 1 per successful descent;
* clue probe — exactly 1 reference, hit or miss;
* a miss (or absent/out-of-range clue) adds a full lookup on top;
* a hit with empty Ptr is final at 1 reference (FD immediate);
* a hit with a Ptr resumes below the clue vertex, 1 reference per
  vertex actually visited, honouring the record's Claim-1 stop bits.

Under a multibit layout (`repro.fastpath.layouts`) the full-lookup side
costs one reference per *stride node* probed instead — bounded by
``ceil(width / stride)`` — while the probe and resume accounting above
is unchanged; answers stay bit-identical either way.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.fastpath.backend import (
    CODE_CLUE_MISS,
    CODE_FD_IMMEDIATE,
    CODE_FULL,
    CODE_RESUMED,
)
from repro.fastpath.compile import CompiledClueTable, CompiledTrie
from repro.fastpath.layouts import CompiledMultibitTrie
from repro.lookup.hotpath import cold_path


def _descend_multibit(mtrie, dst):
    """Stride walk for one packet: (code, refs).

    Mirrors the numpy stride kernel: one reference per stride-node
    probe, terminal slots carry the leaf-pushed answer, the packed
    ``leaf_codes`` pool decodes for free (cache-resident by design).
    """
    slots = mtrie.slots
    fanout = mtrie.fanout
    leaf_codes = mtrie.leaf_codes
    node = 0
    refs = 0
    for shift, mask in mtrie.level_shifts:
        chunk = (dst >> shift) & mask
        value = int(slots[node * fanout + chunk])
        refs += 1
        if value < 0:
            return int(leaf_codes[-(value + 1)]), refs
        node = value
    # Unreachable by construction (the final level is all-terminal),
    # but stay total: report no match at the full probe budget.
    return -1, refs


def _full_one(layout, dst):
    """One clueless lookup through whichever layout compiled: (code, refs)."""
    if type(layout) is CompiledMultibitTrie:
        return _descend_multibit(layout, dst)
    best, refs = _descend(layout, dst, 0, 0, 0, None)
    if best < 0:
        best = layout.root_result
    return best, refs + 1  # the root itself is always touched


def _descend(ctrie, dst, node, depth, row, masks):
    """Restricted walk from ``node`` at ``depth``: (best code, refs).

    Mirrors ``TrieContinuation.search``: the start vertex itself is
    neither charged nor eligible as a match; each successful step costs
    one reference, updates the best marked code, then checks the stop
    bit of the vertex just entered.
    """
    child = ctrie.child
    node_result = ctrie.node_result
    width = ctrie.width
    best = -1
    refs = 0
    for index in range(depth, width):
        bit = (dst >> (width - 1 - index)) & 1
        branch = int(child[2 * node + bit])
        if branch < 0:
            break
        node = branch
        refs += 1
        code = int(node_result[branch])
        if code >= 0:
            best = code
        if masks is not None and (masks[row][branch >> 3] >> (branch & 7)) & 1:
            break
    return best, refs


@cold_path
def full_lookup_batch(
    ctrie, dsts: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Clueless lookups over a batch, any layout: (codes, memrefs)."""
    codes: List[int] = []
    memrefs: List[int] = []
    for dst in dsts:
        best, refs = _full_one(ctrie, int(dst))
        codes.append(best)
        memrefs.append(refs)
    return codes, memrefs


@cold_path
def clue_lookup_batch(
    ctable: CompiledClueTable, dsts: Sequence[int], clue_lens: Sequence[int]
) -> Tuple[List[int], List[int], List[int], List[int]]:
    """Clue-assisted lookup over a batch.

    Returns ``(methods, codes, new_clues, memrefs)``; ``clue_lens[i]``
    is the arriving clue length or -1 for a clueless packet, and the
    clue value is by construction the destination's own prefix of that
    length (what a well-formed upstream stamps).
    """
    ctrie = ctable.trie
    layout = ctable.layout
    width = ctable.width
    probe = ctable.probe_index
    pool_lengths = ctable.trie.pool.lengths
    masks = ctable.stop_masks if ctable.has_stops else None
    methods: List[int] = []
    codes: List[int] = []
    new_clues: List[int] = []
    memrefs: List[int] = []
    for dst, length in zip(dsts, clue_lens):
        dst = int(dst)
        length = int(length)
        if length < 0 or length > width:
            best, refs = _full_one(layout, dst)
            method = CODE_FULL
        else:
            record = probe.get((length, dst >> (width - length) if length else 0), -1)
            if record < 0:
                best, refs = _full_one(layout, dst)
                method = CODE_CLUE_MISS
                refs += 1  # the failed probe on top of the full walk
            else:
                start = int(ctable.rec_cont_node[record])
                fd = int(ctable.rec_fd[record])
                if start < 0:
                    method = CODE_FD_IMMEDIATE
                    best = fd
                    refs = 1
                else:
                    method = CODE_RESUMED
                    best, refs = _descend(
                        ctrie,
                        dst,
                        start,
                        int(ctable.rec_cont_depth[record]),
                        int(ctable.rec_stop_row[record]),
                        masks,
                    )
                    if best < 0:
                        best = fd
                    refs += 1  # the probe that found the record
        methods.append(method)
        codes.append(best)
        new_clues.append(pool_lengths[best] if best >= 0 else -1)
        memrefs.append(refs)
    return methods, codes, new_clues, memrefs
