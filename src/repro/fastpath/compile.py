"""Freeze clue tables and binary tries into flat, contiguous arrays.

The object-graph structures (`trie.binary_trie.BinaryTrie`,
`core.table.ClueTable`) chase one Python pointer per "memory reference"
of the paper's cost model.  This module compiles a *built* pair into the
struct-of-arrays layout the batch kernels iterate over:

``CompiledTrie`` — one dense integer id per trie vertex (pre-order,
root = 0), ``child[2 * node + bit]`` holding the child id or -1, and
``node_result[node]`` holding a result-pool code for marked vertices
(-1 otherwise).  Descending one bit is a single gather instead of two
dict probes.

``CompiledClueTable`` — per-clue-length sorted key arrays probed with a
binary search (numpy ``searchsorted`` over the whole batch at once),
parallel record arrays for the FD code, the Ptr continuation vertex and
its depth, and per-record rows into a packed Claim-1 stop bitmask
(Advance's "can any longer match exist below?" Booleans, one bit per
trie vertex).

Results are interned in a shared ``ResultPool`` so a lane's outcome is
one int32 code; the pool decodes it back to ``(prefix, next_hop)`` and
supplies the new clue length.  Only *active* table records compile —
an inactive record probes as a miss in the object graph, so omitting it
preserves semantics exactly.

Only the "regular" technique (``TrieContinuation`` Ptr fields) is
compilable; anything else raises ``FastpathUnsupported`` and the caller
stays on the scalar path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.addressing import Prefix
from repro.fastpath.backend import get_numpy, numpy_eligible
from repro.lookup.restricted import TrieContinuation
from repro.trie.binary_trie import BinaryTrie


class FastpathUnsupported(ValueError):
    """The structure cannot be frozen into flat arrays (wrong technique,
    foreign continuation type, or a continuation pointing outside the
    compiled trie); callers fall back to the object-graph path."""


class ResultPool:
    """Interned ``(prefix, next_hop)`` outcomes shared by trie and table.

    A lane's result is a small int code; decoding is a list index.  The
    pool also exposes the prefix lengths as an array so the kernels can
    derive the outgoing clue of a whole batch with one gather.
    """

    __slots__ = ("prefixes", "next_hops", "lengths", "_index", "_frozen")

    def __init__(self) -> None:
        self.prefixes: List[Prefix] = []
        self.next_hops: List[object] = []
        self.lengths: List[int] = []
        self._index: Dict[object, int] = {}
        self._frozen = None

    def intern(self, prefix: Prefix, next_hop: object) -> int:
        """The code for ``(prefix, next_hop)``, allocating on first use."""
        try:
            key: Optional[Tuple[Prefix, object]] = (prefix, next_hop)
            code = self._index.get(key)
        except TypeError:  # unhashable next hop payload: store un-deduped
            key = None
            code = None
        if code is None:
            code = len(self.prefixes)
            self.prefixes.append(prefix)
            self.next_hops.append(next_hop)
            self.lengths.append(prefix.length)
            if key is not None:
                self._index[key] = code
        return code

    def lengths_array(self):
        """Prefix lengths by code — numpy int64 when available.

        Rebuilt lazily: the pool keeps growing while a ``CompiledTrie``
        and one or more ``CompiledClueTable``s intern into it.
        """
        np = get_numpy()
        if np is None:
            return self.lengths
        if self._frozen is None or len(self._frozen) != len(self.lengths):
            self._frozen = np.asarray(self.lengths, dtype=np.int64)
        return self._frozen

    def nbytes(self) -> int:
        """Data-plane footprint: one int64 length per interned code.

        The prefix/next-hop decode side is control-plane bookkeeping
        (Python objects a hardware table would not hold); the kernels
        only ever gather the lengths array, so that is what counts.
        """
        return len(self.lengths) * 8

    def __len__(self) -> int:
        return len(self.prefixes)


class CompiledTrie:
    """A ``BinaryTrie`` frozen into flat child / result arrays."""

    __slots__ = (
        "width",
        "size",
        "backend",
        "child",
        "node_result",
        "node_index",
        "root_result",
        "pool",
    )

    def __init__(self, trie: BinaryTrie, pool: Optional[ResultPool] = None):
        self.width = trie.width
        self.pool = pool if pool is not None else ResultPool()
        self.backend = "numpy" if numpy_eligible(trie.width) else "python"
        nodes = []
        index: Dict[Prefix, int] = {}
        stack = [trie.root]
        while stack:
            node = stack.pop()
            index[node.prefix] = len(nodes)
            nodes.append(node)
            one = node.children.get(1)
            if one is not None:
                stack.append(one)
            zero = node.children.get(0)
            if zero is not None:
                stack.append(zero)
        child = [-1] * (2 * len(nodes))
        result = [-1] * len(nodes)
        for position, node in enumerate(nodes):
            for bit in (0, 1):
                branch = node.children.get(bit)
                if branch is not None:
                    child[2 * position + bit] = index[branch.prefix]
            if node.marked:
                result[position] = self.pool.intern(node.prefix, node.next_hop)
        self.size = len(nodes)
        self.node_index = index
        self.root_result = result[0]
        np = get_numpy()
        if self.backend == "numpy":
            self.child = np.asarray(child, dtype=np.int64)
            self.node_result = np.asarray(result, dtype=np.int64)
        else:
            self.child = child
            self.node_result = result

    def nbytes(self) -> int:
        """Data-plane footprint of the flat arrays, in bytes.

        ``child`` plus ``node_result``, both int64 lanes (the python
        backend is accounted at the same 8 bytes per element so the two
        backends report comparable numbers); the ``node_index`` decode
        dict is compile-time-only and excluded.
        """
        return (len(self.child) + len(self.node_result)) * 8


class CompiledClueTable:
    """A ``ClueTable`` frozen for the regular-technique batch kernels.

    ``trie`` may be the dense :class:`CompiledTrie` or any layout
    wrapping one (a ``CompiledMultibitTrie`` exposes it as ``.base``).
    The clue-probe arrays and the continuation/stop machinery always
    address the dense binary arrays — Claim-1 stop bits are a
    per-binary-vertex notion — while :attr:`layout` records which
    layout the *full-lookup* side of the kernels should descend.
    """

    __slots__ = (
        "trie",
        "layout",
        "width",
        "backend",
        "records",
        "levels",
        "probe_index",
        "rec_fd",
        "rec_cont_node",
        "rec_cont_depth",
        "rec_stop_row",
        "stop_masks",
        "has_stops",
    )

    def __init__(self, table, trie):
        self.layout = trie
        trie = getattr(trie, "base", trie)
        self.trie = trie
        self.width = trie.width
        self.backend = trie.backend
        pool = trie.pool
        by_length: Dict[int, List[Tuple[int, int]]] = {}
        probe_index: Dict[Tuple[int, int], int] = {}
        rec_fd: List[int] = []
        rec_cont_node: List[int] = []
        rec_cont_depth: List[int] = []
        rec_stop_row: List[int] = []
        stop_dicts: List[Optional[Dict[Prefix, bool]]] = [None]
        row_of: Dict[int, int] = {}
        for entry in table.entries():
            if not entry.active:
                continue  # probes identically to an absent record
            clue = entry.clue
            if clue.width != trie.width:
                raise FastpathUnsupported(
                    "clue width %d does not match trie width %d"
                    % (clue.width, trie.width)
                )
            record = len(rec_fd)
            by_length.setdefault(clue.length, []).append((clue.bits, record))
            probe_index[(clue.length, clue.bits)] = record
            if entry.fd_prefix is not None:
                rec_fd.append(pool.intern(entry.fd_prefix, entry.fd_next_hop))
            else:
                rec_fd.append(-1)
            continuation = entry.continuation
            if continuation is None:
                rec_cont_node.append(-1)
                rec_cont_depth.append(0)
                rec_stop_row.append(0)
                continue
            if type(continuation) is not TrieContinuation:
                raise FastpathUnsupported(
                    "only regular-technique TrieContinuation records "
                    "compile; found %s" % type(continuation).__name__
                )
            start_id = trie.node_index.get(continuation.start.prefix)
            if start_id is None:
                raise FastpathUnsupported(
                    "continuation start %r is not a vertex of the "
                    "compiled trie" % (continuation.start.prefix,)
                )
            rec_cont_node.append(start_id)
            rec_cont_depth.append(continuation.start.prefix.length)
            stops = continuation.stops
            if stops is None:
                rec_stop_row.append(0)
            else:
                row = row_of.get(id(stops))
                if row is None:
                    row = len(stop_dicts)
                    stop_dicts.append(stops)
                    row_of[id(stops)] = row
                rec_stop_row.append(row)
        self.records = len(rec_fd)
        self.probe_index = probe_index
        self.has_stops = len(stop_dicts) > 1
        mask_bytes = (trie.size + 7) // 8
        mask_rows = []
        for stops in stop_dicts:
            row_bits = bytearray(mask_bytes)
            if stops:
                for prefix, flag in stops.items():
                    if not flag:
                        continue
                    node_id = trie.node_index.get(prefix)
                    if node_id is not None:
                        row_bits[node_id >> 3] |= 1 << (node_id & 7)
            mask_rows.append(row_bits)
        np = get_numpy()
        if self.backend == "numpy":
            levels = []
            for length in sorted(by_length):
                pairs = sorted(by_length[length])
                keys = np.asarray([bits for bits, _ in pairs], dtype=np.int64)
                recs = np.asarray([rec for _, rec in pairs], dtype=np.int64)
                levels.append((length, keys, recs))
            self.levels = tuple(levels)
            self.rec_fd = np.asarray(rec_fd, dtype=np.int64)
            self.rec_cont_node = np.asarray(rec_cont_node, dtype=np.int64)
            self.rec_cont_depth = np.asarray(rec_cont_depth, dtype=np.int64)
            self.rec_stop_row = np.asarray(rec_stop_row, dtype=np.int64)
            self.stop_masks = np.frombuffer(
                bytes(b"".join(mask_rows)), dtype=np.uint8
            ).reshape(len(mask_rows), mask_bytes)
        else:
            self.levels = tuple(
                (
                    length,
                    [bits for bits, _ in sorted(by_length[length])],
                    [rec for _, rec in sorted(by_length[length])],
                )
                for length in sorted(by_length)
            )
            self.rec_fd = rec_fd
            self.rec_cont_node = rec_cont_node
            self.rec_cont_depth = rec_cont_depth
            self.rec_stop_row = rec_stop_row
            self.stop_masks = mask_rows

    def nbytes(self) -> int:
        """Data-plane footprint of the probe and record arrays, in bytes.

        Per-length sorted keys and record ids, the four parallel record
        columns (int64 lanes; the python backend is accounted the same
        way for comparability) plus the packed stop bitmask rows.  The
        ``probe_index`` dict is the python backend's probe structure but
        mirrors the levels arrays entry for entry, so the flat-array
        accounting covers it.  Excludes the trie layout — report that
        separately via the layout's own ``nbytes()``.
        """
        total = 4 * self.records * 8
        for _length, keys, recs in self.levels:
            total += (len(keys) + len(recs)) * 8
        for row in self.stop_masks:
            total += len(row)
        return total


def compile_trie(trie: BinaryTrie, pool: Optional[ResultPool] = None) -> CompiledTrie:
    """Freeze a built ``BinaryTrie`` into a :class:`CompiledTrie`."""
    return CompiledTrie(trie, pool)


def compile_clue_table(table, trie) -> CompiledClueTable:
    """Freeze a built ``ClueTable`` against its receiver trie.

    ``trie`` may be the receiver's ``BinaryTrie``, an already-compiled
    :class:`CompiledTrie` (sharing one across tables shares the result
    pool and the flat trie arrays), or any compiled layout wrapping one
    (e.g. :class:`repro.fastpath.layouts.CompiledMultibitTrie`), in
    which case the batch kernels run their full-lookup descents through
    that layout.
    """
    if isinstance(trie, BinaryTrie):
        trie = CompiledTrie(trie)
    return CompiledClueTable(table, trie)
