"""Differential certification: compiled kernels vs the object graph.

A compiled table is only trustworthy if the batch kernels agree with the
existing scalar lookups on *everything* a packet can carry: prefix,
next hop, method classification, and the exact memory-reference count.
This module runs both paths over a deterministic destination sweep and
raises :class:`CertificationError` on the first disagreement — the
bench refuses to report numbers for an uncertified table, and the
differential test suite drives the same functions with hypothesis.

Any layout implementing the compiled-trie protocol certifies here, not
just the dense :class:`CompiledTrie`.  For stride layouts
(`repro.fastpath.layouts.CompiledMultibitTrie`) the memory-reference
comparison is skipped by default — stride descent legitimately changes
the count; that is the optimisation — while prefix, next hop, method
and new clue stay bit-identical requirements.  Pass ``check_memrefs``
explicitly to override the auto-detection either way.

The sweep covers, for every prefix of the deployed tables (senders and
receivers alike, capped for very large tables): the network address,
the broadcast address, and seeded random hosts — each visited clueless,
with the clue=0 edge (the root as BMP), and with the sender's true BMP
length (what a well-formed upstream actually stamps).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.addressing import Address
from repro.fastpath.backend import CODE_TO_METHOD
from repro.fastpath.compile import CompiledClueTable
from repro.fastpath.kernels import (
    as_destination_array,
    as_length_array,
    full_lookup_batch,
    lookup_batch,
)
from repro.lookup.counters import METHOD_FULL, MemoryCounter


class CertificationError(ValueError):
    """A compiled kernel disagreed with the object-graph lookup."""


def certification_batch(
    sender_trie,
    entries: Iterable[Tuple[object, object]],
    width: int = 32,
    seed: int = 0,
    max_prefixes: int = 512,
    randoms_per_prefix: int = 1,
) -> Tuple[List[int], List[int]]:
    """Deterministic ``(destinations, clue_lengths)`` sweep.

    ``entries`` seeds the destination set (pass receiver plus sender
    entries for full edge coverage); ``sender_trie`` supplies each
    destination's true BMP length.  Every destination appears three
    times: clueless (−1), clue length 0, and the sender-BMP length.
    """
    rng = random.Random(seed)
    prefixes = []
    seen = set()
    for prefix, _next_hop in entries:
        if prefix in seen:
            continue
        seen.add(prefix)
        prefixes.append(prefix)
        if len(prefixes) >= max_prefixes:
            break
    destinations: List[int] = []
    clue_lens: List[int] = []
    for prefix in prefixes:
        host_bits = width - prefix.length
        network = prefix.bits << host_bits
        candidates = [network, network | ((1 << host_bits) - 1)]
        for _ in range(randoms_per_prefix):
            candidates.append(prefix.random_address(rng).value)
        for value in candidates:
            bmp = sender_trie.best_prefix(Address(value, width))
            bmp_length = bmp.length if bmp is not None else 0
            for clue_length in (-1, 0, bmp_length):
                destinations.append(value)
                clue_lens.append(clue_length)
    return destinations, clue_lens


def certify_full(
    ctrie,
    base,
    destinations: Sequence[int],
    force_python: bool = False,
    check_memrefs: Optional[bool] = None,
) -> int:
    """Certify the clueless kernel against ``base.lookup``; count checked.

    ``ctrie`` is any compiled layout; ``check_memrefs=None`` compares
    reference counts only for the dense layout, whose cost model matches
    the object graph step for step.
    """
    if check_memrefs is None:
        check_memrefs = getattr(ctrie, "stride", 0) == 0
    width = ctrie.width
    dsts = as_destination_array(destinations, width)
    codes, memrefs = full_lookup_batch(ctrie, dsts, force_python=force_python)
    pool = ctrie.pool
    for lane, value in enumerate(destinations):
        counter = MemoryCounter()
        expected = base.lookup(Address(int(value), width), counter)
        code = int(codes[lane])
        got_prefix = pool.prefixes[code] if code >= 0 else None
        got_hop = pool.next_hops[code] if code >= 0 else None
        got_refs = int(memrefs[lane]) if check_memrefs else None
        want_refs = expected.accesses if check_memrefs else None
        _require(
            lane,
            int(value),
            None,
            (got_prefix, got_hop, METHOD_FULL, got_refs),
            (expected.prefix, expected.next_hop, METHOD_FULL, want_refs),
        )
    return len(destinations)


def certify_clue(
    ctable: CompiledClueTable,
    scalar,
    destinations: Sequence[int],
    clue_lens: Sequence[int],
    force_python: bool = False,
    check_memrefs: Optional[bool] = None,
) -> int:
    """Certify the clue kernel against a scalar ``ClueAssistedLookup``.

    ``scalar`` must wrap the *same* table and a regular base over the
    same receiver entries, and must not learn (pass a preprocessed
    table; learning would mutate the table mid-sweep).
    ``check_memrefs=None`` compares reference counts only when the
    table's full-lookup layout is the dense trie itself.
    """
    if check_memrefs is None:
        check_memrefs = ctable.layout is ctable.trie
    width = ctable.width
    dsts = as_destination_array(destinations, width)
    lens = as_length_array(clue_lens, width)
    methods, codes, new_clues, memrefs = lookup_batch(
        ctable, dsts, lens, force_python=force_python
    )
    pool = ctable.trie.pool
    for lane, value in enumerate(destinations):
        value = int(value)
        length = int(clue_lens[lane])
        address = Address(value, width)
        clue = address.prefix(length) if 0 <= length <= width else None
        counter = MemoryCounter()
        expected = scalar.lookup(address, clue, counter)
        code = int(codes[lane])
        got_prefix = pool.prefixes[code] if code >= 0 else None
        got_hop = pool.next_hops[code] if code >= 0 else None
        got_method = CODE_TO_METHOD[int(methods[lane])]
        got_refs = int(memrefs[lane]) if check_memrefs else None
        want_refs = expected.accesses if check_memrefs else None
        _require(
            lane,
            value,
            length,
            (got_prefix, got_hop, got_method, got_refs),
            (
                expected.prefix,
                expected.next_hop,
                expected.method,
                want_refs,
            ),
        )
        expected_clue = (
            expected.prefix.length if expected.prefix is not None else -1
        )
        if int(new_clues[lane]) != expected_clue:
            raise CertificationError(
                "lane %d dst=%#010x clue_len=%s: new clue %d != %d"
                % (lane, value, length, int(new_clues[lane]), expected_clue)
            )
    return len(destinations)


def _require(
    lane: int,
    value: int,
    clue_length: Optional[int],
    got: Tuple,
    expected: Tuple,
) -> None:
    if got != expected:
        raise CertificationError(
            "lane %d dst=%#010x clue_len=%s: compiled %r != scalar %r"
            % (lane, value, clue_length, got, expected)
        )
