"""Entropy-bounded, cache-aware compiled trie layouts.

The dense :class:`~repro.fastpath.compile.CompiledTrie` spends one gather
per *bit* of descent and a full int64 per child slot.  Following Rétvári
et al. (*Compressing IP Forwarding Tables: Towards Entropy Bounds*,
arXiv:1402.1194) and Yegorov (*Cache-aware data structures for packet
forwarding tables*, arXiv:1804.09254), this module compiles the same
binary trie into a **multibit fixed-stride layout** that consumes *k*
address bits per gather:

``CompiledMultibitTrie`` — stride nodes of ``2**stride`` slots laid out
in one flat array, **leaf-pushed** so every slot resolves in a single
probe: a slot either continues to a child stride node (value ``>= 0``,
the child id) or terminates with the best-matching result of the whole
absent subtree folded into it (value ``< 0``).  The tables are
level-compressed in the sense that only *populated* stride nodes are
materialized — an empty or leaf-pushed subtree costs exactly one slot,
never a 2**stride expansion.

The result side is a **frequency-ranked packed pool**: terminal slots do
not carry raw int64 result-pool codes but small indices into a per-table
``leaf_codes`` array, assigned in descending frequency order so the hot
next hops get the smallest indices.  The per-table index bit-width
(``leaf_bits``) is chosen from the empirical next-hop distribution, and
the slot array itself is stored in the narrowest integer dtype that
holds both the child ids and the packed indices — this is where the
bytes-per-prefix approach toward the entropy bound comes from.

Memory-reference accounting for the stride kernels counts **one
reference per stride-node probe** (the ``leaf_codes`` pool is a few
hundred bytes and deliberately modelled as cache-resident — the entire
point of packing it).  A full lookup therefore terminates within
``ceil(width / stride)`` references instead of up to ``width + 1``.
Clue-table *resume* walks (Advance Ptr continuations with their per-bit
Claim-1 stop masks) stay on the dense binary arrays of the underlying
:class:`CompiledTrie` — stop bits are a per-binary-vertex notion — so a
multibit layout always carries its ``base`` dense trie alongside.

Every layout certifies bit-identical against the scalar object-graph
path on prefix, next hop, method and new clue; memrefs are *reported*
per layout, not required equal — stride descent legitimately changes
the count (that is the optimisation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fastpath.backend import get_numpy
from repro.fastpath.compile import CompiledTrie, ResultPool
from repro.trie.binary_trie import BinaryTrie

#: The compiled layout family, as spelled on every ``--layout`` knob.
LAYOUTS = ("dense", "multibit4", "multibit8")

#: Address bits consumed per gather, per non-dense layout name.
STRIDES: Dict[str, int] = {"multibit4": 4, "multibit8": 8}


def _bits_for(count: int) -> int:
    """Bits needed to index ``count`` distinct values (min 1)."""
    return max(1, (max(count - 1, 0)).bit_length())


def _slot_dtype_bytes(lo: int, hi: int) -> int:
    """Bytes of the narrowest signed integer field holding [lo, hi]."""
    for nbytes in (1, 2, 4, 8):
        half = 1 << (8 * nbytes - 1)
        if -half <= lo and hi < half:
            return nbytes
    return 8


class CompiledMultibitTrie:
    """A fixed-stride, leaf-pushed view over a compiled binary trie.

    Built *from* a :class:`CompiledTrie` (the dense arrays are the
    structural source of truth and stay available as :attr:`base` for
    clue-table resume walks).  Implements the compiled-trie protocol the
    kernels and the certifier dispatch on: ``width``, ``backend``,
    ``pool``, ``stride`` plus the stride arrays below.

    * ``slots[node * fanout + chunk]`` — ``>= 0``: child stride-node id;
      ``< 0``: terminal, packed leaf index ``-(value + 1)``.
    * ``leaf_codes[packed]`` — result-pool code (``-1`` = no match),
      frequency-ranked so index 0 is the most common outcome.
    * ``level_shifts`` — per-level ``(shift, mask)`` pairs; the walk is
      bounded by ``len(level_shifts) == ceil(width / stride)`` probes.
    """

    __slots__ = (
        "base",
        "pool",
        "width",
        "backend",
        "stride",
        "fanout",
        "size",
        "kind",
        "slots",
        "leaf_codes",
        "level_shifts",
        "leaf_bits",
        "slot_bits",
        "slot_bytes",
        "leaf_slots",
        "root_result",
    )

    def __init__(self, base: CompiledTrie, stride: int):
        if stride < 1:
            raise ValueError("stride must be at least 1, got %d" % stride)
        self.base = base
        self.pool: ResultPool = base.pool
        self.width = base.width
        self.backend = base.backend
        self.stride = stride
        self.fanout = 1 << stride
        self.kind = "multibit%d" % stride
        self.root_result = base.root_result
        self.level_shifts = self._level_shifts(base.width, stride)
        segments, leaf_counts = self._expand(base, stride)
        self.size = len(segments)
        self._pack(segments, leaf_counts)

    # ------------------------------------------------------------------
    @staticmethod
    def _level_shifts(width: int, stride: int) -> Tuple[Tuple[int, int], ...]:
        shifts: List[Tuple[int, int]] = []
        depth = 0
        while depth < width:
            step = min(stride, width - depth)
            shifts.append((width - depth - step, (1 << step) - 1))
            depth += step
        return tuple(shifts)

    def _expand(self, base: CompiledTrie, stride: int):
        """Leaf-pushed stride expansion of the binary child arrays.

        BFS over stride boundaries: each stride node expands the binary
        subtree below its vertex for up to ``stride`` levels, folding
        dead branches into terminal slots carrying the best marked
        result seen on the path so far (that *is* leaf pushing — the
        answer travels down into the slot, so no backtracking and no
        best-so-far bookkeeping remain at lookup time).
        """
        child = base.child
        node_result = base.node_result
        width = base.width
        fanout = self.fanout
        # Parallel per-stride-node records: binary vertex, inherited
        # best (including the vertex's own mark), and start depth.
        m_vertex: List[int] = [0]
        m_best: List[int] = [base.root_result]
        m_depth: List[int] = [0]
        segments: List[List] = []
        leaf_counts: Dict[int, int] = {}
        index = 0
        while index < len(m_vertex):
            vertex = m_vertex[index]
            inherited = m_best[index]
            depth = m_depth[index]
            index += 1
            step = min(stride, width - depth)
            seg: List = [None] * fanout
            stack: List[Tuple[int, int, int, int]] = [(vertex, 0, 0, inherited)]
            while stack:
                node, level, path, best = stack.pop()
                if level == step:
                    descends = (
                        int(child[2 * node]) >= 0
                        or int(child[2 * node + 1]) >= 0
                    )
                    if descends and depth + step < width:
                        m_vertex.append(node)
                        m_best.append(best)
                        m_depth.append(depth + step)
                        seg[path] = ("c", len(m_vertex) - 1)
                    else:
                        seg[path] = best
                        leaf_counts[best] = leaf_counts.get(best, 0) + 1
                    continue
                span = 1 << (step - level - 1)
                for bit in (0, 1):
                    branch = int(child[2 * node + bit])
                    prefix_path = (path << 1) | bit
                    if branch < 0:
                        # The whole absent subtree leaf-pushes to one
                        # terminal run carrying the best so far.
                        low = prefix_path << (step - level - 1)
                        seg[low:low + span] = [best] * span
                        leaf_counts[best] = leaf_counts.get(best, 0) + span
                    else:
                        code = int(node_result[branch])
                        stack.append(
                            (
                                branch,
                                level + 1,
                                prefix_path,
                                code if code >= 0 else best,
                            )
                        )
            segments.append(seg)
        return segments, leaf_counts

    def _pack(self, segments: List[List], leaf_counts: Dict[int, int]) -> None:
        """Frequency-rank the leaf pool and pack the flat slot array."""
        ranked = sorted(leaf_counts.items(), key=lambda item: (-item[1], item[0]))
        packed_of = {code: rank for rank, (code, _count) in enumerate(ranked)}
        if not packed_of:  # width == 0 cannot happen, but stay total
            packed_of = {-1: 0}
        leaf_codes = sorted(packed_of, key=packed_of.get)
        slots: List[int] = []
        for seg in segments:
            for entry in seg:
                if entry is None:
                    # Padding past a partial final level: never probed.
                    slots.append(-1)
                elif type(entry) is tuple:
                    slots.append(entry[1])
                else:
                    slots.append(-(packed_of[entry] + 1))
        self.leaf_slots = sum(leaf_counts.values())
        self.leaf_bits = _bits_for(len(leaf_codes))
        hi = max(self.size - 1, 0)
        self.slot_bits = max(_bits_for(self.size), self.leaf_bits) + 1
        self.slot_bytes = _slot_dtype_bytes(-len(leaf_codes), hi)
        np = get_numpy()
        if self.backend == "numpy":
            dtype = {1: np.int8, 2: np.int16, 4: np.int32, 8: np.int64}[
                self.slot_bytes
            ]
            self.slots = np.asarray(slots, dtype=dtype)
            self.leaf_codes = np.asarray(leaf_codes, dtype=np.int64)
        else:
            self.slots = slots
            self.leaf_codes = leaf_codes

    # ------------------------------------------------------------------
    def leaf_entropy_bits(self) -> float:
        """Empirical entropy (bits/leaf slot) of the packed leaf pool.

        The information-theoretic floor for storing this layout's
        leaf-pushed result function: ``leaf_slots * leaf_entropy_bits``
        bits is what an ideal entropy coder would need for the result
        side at this stride granularity (Rétvári et al. §III).
        """
        import math

        np = get_numpy()
        counts: Dict[int, int] = {}
        iterable = (
            self.slots.tolist() if np is not None and self.backend == "numpy"
            else self.slots
        )
        for value in iterable:
            if value < 0:
                counts[value] = counts.get(value, 0) + 1
        total = sum(counts.values())
        if total <= 1:
            return 0.0
        entropy = 0.0
        for count in counts.values():
            share = count / total
            entropy -= share * math.log2(share)
        return entropy

    def nbytes(self) -> int:
        """Data-plane footprint of the stride arrays, in bytes.

        Counts the slot array at its chosen narrow width plus the packed
        leaf pool (one int64 code per distinct outcome).  The dense
        ``base`` arrays are accounted separately — a clue table that
        resumes continuations still holds them; a pure full-lookup
        deployment would not.
        """
        return len(self.slots) * self.slot_bytes + len(self.leaf_codes) * 8

    def __repr__(self) -> str:
        return "CompiledMultibitTrie(stride=%d, nodes=%d, leaf_bits=%d)" % (
            self.stride,
            self.size,
            self.leaf_bits,
        )


def layout_stride(layout) -> int:
    """The stride of a compiled layout object (0 for the dense trie)."""
    return getattr(layout, "stride", 0)


def compile_layout(trie, layout: str = "dense", pool: Optional[ResultPool] = None):
    """Compile ``trie`` into the named layout.

    ``trie`` may be a built :class:`BinaryTrie` or an already-compiled
    :class:`CompiledTrie` (reused as the base, sharing its result pool).
    Returns a :class:`CompiledTrie` for ``"dense"`` or a
    :class:`CompiledMultibitTrie` for ``"multibit4"``/``"multibit8"``.
    """
    if isinstance(trie, BinaryTrie):
        base = CompiledTrie(trie, pool)
    elif isinstance(trie, CompiledTrie):
        base = trie
    else:
        raise TypeError(
            "expected BinaryTrie or CompiledTrie, got %s" % type(trie).__name__
        )
    if layout == "dense":
        return base
    stride = STRIDES.get(layout)
    if stride is None:
        raise ValueError(
            "unknown layout %r; expected one of %s" % (layout, (LAYOUTS,))
        )
    return CompiledMultibitTrie(base, stride)
