"""Optional numpy backend gate for the fastpath kernels.

numpy is an accelerator, never a dependency: every fastpath entry point
has a pure-Python twin (`repro.fastpath.fallback`) with identical
semantics, and the compiler only emits numpy arrays when the module is
importable *and* the address width fits a 64-bit lane (width 32).  IPv6
tables (width 128) always compile to plain Python lists, where arbitrary
precision integers do the shifting.

The four action codes returned by every batch kernel are defined here —
the leaf module of the package — so the numpy kernels and the fallback
can share them without importing each other.
"""

from __future__ import annotations

from repro.lookup.counters import (
    METHOD_CLUE_MISS,
    METHOD_FD_IMMEDIATE,
    METHOD_FULL,
    METHOD_RESUMED,
)

try:  # pragma: no cover - exercised implicitly by every kernel call
    import numpy as _numpy
except ImportError:  # pragma: no cover - image bakes numpy in
    _numpy = None  # type: ignore[assignment]

#: True when the numpy backend is importable in this interpreter.
HAVE_NUMPY = _numpy is not None

#: Widest address width the int64 numpy lanes can carry.
NUMPY_MAX_WIDTH = 32

#: Batch action codes, index-aligned with :data:`CODE_TO_METHOD`.
CODE_FULL = 0
CODE_CLUE_MISS = 1
CODE_FD_IMMEDIATE = 2
CODE_RESUMED = 3

#: Maps a kernel action code to the scalar path's method string.
CODE_TO_METHOD = (
    METHOD_FULL,
    METHOD_CLUE_MISS,
    METHOD_FD_IMMEDIATE,
    METHOD_RESUMED,
)


def get_numpy():
    """The numpy module, or None when the interpreter lacks it."""
    return _numpy


def numpy_eligible(width: int) -> bool:
    """True when compiled arrays for ``width`` may use the numpy backend."""
    return _numpy is not None and width <= NUMPY_MAX_WIDTH
