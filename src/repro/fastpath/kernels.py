"""Vectorized batch lookup kernels over the compiled flat arrays.

One numpy gather per trie level replaces two dict probes per packet:
all lanes of a batch descend in lockstep, with boolean masks retiring
lanes whose walk ended (no child, or an Advance Claim-1 stop bit).  The
dense kernels reproduce the object-graph memory-reference accounting
*bit for bit* — `repro.fastpath.certify` enforces that — so the paper's
counters stay exact while the wall-clock cost collapses.

The stride kernels (`repro.fastpath.layouts.CompiledMultibitTrie`)
consume *k* address bits per gather instead of one: answers stay
bit-identical (prefix, next hop, method, new clue — certified the same
way) while memrefs/packet drop to at most ``ceil(width / stride)`` on
the full-lookup side; the certifier compares those counts per layout
instead of requiring equality.  Clue-table resume walks always descend
the dense binary arrays — Claim-1 stop bits are per binary vertex.

The public entry points (`full_lookup_batch`, `lookup_batch`) dispatch
on the compiled structure's backend: numpy arrays when available and the
width fits an int64 lane, otherwise the pure-Python twins in
`repro.fastpath.fallback`.  ``force_python=True`` pins the fallback,
which the differential tests use to certify the two implementations
against each other and against the scalar path.
"""

from __future__ import annotations

from repro.fastpath import fallback
from repro.fastpath.backend import (
    CODE_CLUE_MISS,
    CODE_FD_IMMEDIATE,
    CODE_FULL,
    CODE_RESUMED,
    get_numpy,
)
from repro.fastpath.compile import CompiledClueTable, CompiledTrie
from repro.fastpath.layouts import CompiledMultibitTrie
from repro.lookup.hotpath import hot_path


def as_destination_array(values, width: int = 32):
    """Pack destination address values for the kernels.

    numpy int64 when the backend allows it for ``width``; otherwise the
    values are returned as a plain list for the fallback kernels.  An
    already-packed int64 ndarray passes through untouched — the serve
    loadgen materializes flat arrays up front, and re-boxing every
    element through a Python list each batch was pure hot-path overhead.
    """
    np = get_numpy()
    if np is not None and width <= 32:
        if isinstance(values, np.ndarray):
            if values.dtype == np.int64:
                return values
            return values.astype(np.int64)
        return np.asarray(
            [int(getattr(value, "value", value)) for value in values],
            dtype=np.int64,
        )
    return [int(getattr(value, "value", value)) for value in values]


def as_length_array(lengths, width: int = 32):
    """Pack clue lengths (−1 = clueless) to match the destination array.

    Like :func:`as_destination_array`, an int64 ndarray is returned
    as-is instead of being re-boxed element by element.
    """
    np = get_numpy()
    if np is not None and width <= 32:
        if isinstance(lengths, np.ndarray):
            if lengths.dtype == np.int64:
                return lengths
            return lengths.astype(np.int64)
        return np.asarray([int(length) for length in lengths], dtype=np.int64)
    return [int(length) for length in lengths]


@hot_path
def _descend_numpy(np, ctrie, dsts, cur, depths, stop_masks, rows):
    """Lockstep restricted descent for every lane: (best codes, refs).

    Lanes join the walk once the level reaches their start depth; a lane
    retires when its next child is absent or (with ``stop_masks``) when
    the vertex it just entered carries its record's Claim-1 stop bit.
    Per the scalar semantics the start vertex itself is never charged
    nor matched; every *entered* vertex costs one reference, may update
    the best marked code, and only then is its stop bit consulted.
    """
    width = ctrie.width
    child = ctrie.child
    node_result = ctrie.node_result
    lanes = dsts.shape[0]
    best = np.full(lanes, -1, dtype=np.int64)
    refs = np.zeros(lanes, dtype=np.int64)
    alive = np.ones(lanes, dtype=bool)
    start = int(depths.min()) if lanes else width
    for depth in range(start, width):
        if not alive.any():
            break
        moving = alive & (depths <= depth)
        if not moving.any():
            continue
        bits = (dsts >> (width - 1 - depth)) & 1
        branch = child[2 * cur + bits]
        entered = moving & (branch >= 0)
        alive = alive & (~moving | entered)
        cur = np.where(entered, branch, cur)
        refs = refs + entered
        codes = node_result[cur]
        best = np.where(entered & (codes >= 0), codes, best)
        if stop_masks is not None:
            stop_bytes = stop_masks[rows, cur >> 3].astype(np.int64)
            stopped = entered & ((stop_bytes >> (cur & 7)) & 1 > 0)
            alive = alive & ~stopped
    return best, refs


@hot_path
def _full_lookup_numpy(np, ctrie, dsts):
    """Clueless Regular baseline, batched: (codes, memrefs)."""
    lanes = dsts.shape[0]
    cur = np.zeros(lanes, dtype=np.int64)
    depths = np.zeros(lanes, dtype=np.int64)
    best, refs = _descend_numpy(np, ctrie, dsts, cur, depths, None, None)
    best = np.where(best >= 0, best, np.int64(ctrie.root_result))
    return best, refs + 1  # the root itself is always touched


@hot_path
def _full_lookup_multibit_numpy(np, mtrie, dsts):
    """Leaf-pushed stride descent for every lane: (codes, memrefs).

    One gather per stride level, all lanes in lockstep; a lane retires
    the moment it hits a terminal slot — the leaf-pushed answer is *in*
    the slot, so there is no best-so-far bookkeeping and the walk is
    bounded by ``ceil(width / stride)`` probes.  Each stride-node probe
    costs one memory reference; the packed ``leaf_codes`` pool is
    modelled as cache-resident (that is the point of packing it) and
    decodes for free.
    """
    lanes = dsts.shape[0]
    fanout = mtrie.fanout
    slots = mtrie.slots
    cur = np.zeros(lanes, dtype=np.int64)
    out = np.zeros(lanes, dtype=np.int64)
    refs = np.zeros(lanes, dtype=np.int64)
    alive = np.ones(lanes, dtype=bool)
    for shift, mask in mtrie.level_shifts:
        if not alive.any():
            break
        chunk = (dsts >> shift) & mask
        value = slots[cur * fanout + chunk].astype(np.int64)
        refs = refs + alive
        terminal = alive & (value < 0)
        out = np.where(terminal, -(value + 1), out)
        alive = alive & ~terminal
        cur = np.where(alive, value, cur)
    if lanes:
        codes = mtrie.leaf_codes[out]
    else:
        codes = np.zeros(0, dtype=np.int64)
    return codes, refs


@hot_path
def _full_dispatch_numpy(np, layout, dsts):
    """Full-lookup codes and memrefs through whichever layout compiled."""
    if type(layout) is CompiledMultibitTrie:
        return _full_lookup_multibit_numpy(np, layout, dsts)
    return _full_lookup_numpy(np, layout, dsts)


@hot_path
def _clue_lookup_numpy(np, ctable, dsts, clue_lens):
    """Clue-assisted lookup, batched: (methods, codes, new_clues, memrefs)."""
    ctrie = ctable.trie
    width = ctable.width
    lanes = dsts.shape[0]
    methods = np.full(lanes, np.int64(CODE_FULL), dtype=np.int64)
    codes = np.full(lanes, -1, dtype=np.int64)
    memrefs = np.zeros(lanes, dtype=np.int64)
    record = np.full(lanes, -1, dtype=np.int64)
    carrying = (clue_lens >= 0) & (clue_lens <= width)
    memrefs = memrefs + carrying  # every probe costs one reference
    for length, keys, recs in ctable.levels:
        level = carrying & (clue_lens == length)
        if not level.any():
            continue
        if length:
            wanted = dsts[level] >> (width - length)
        else:
            wanted = dsts[level] & 0
        if keys.shape[0]:
            position = np.minimum(
                np.searchsorted(keys, wanted), keys.shape[0] - 1
            )
            record[level] = np.where(
                keys[position] == wanted, recs[position], np.int64(-1)
            )
    hit = record >= 0
    miss = carrying & ~hit
    methods = np.where(miss, np.int64(CODE_CLUE_MISS), methods)
    full_path = ~hit
    if full_path.any():
        full_codes, full_refs = _full_dispatch_numpy(
            np, ctable.layout, dsts[full_path]
        )
        codes[full_path] = full_codes
        memrefs[full_path] += full_refs
    if ctable.records:
        safe = np.maximum(record, 0)
        fd = ctable.rec_fd[safe]
        cont = ctable.rec_cont_node[safe]
        immediate = hit & (cont < 0)
        methods = np.where(immediate, np.int64(CODE_FD_IMMEDIATE), methods)
        codes = np.where(immediate, fd, codes)
        resumed = hit & (cont >= 0)
        if resumed.any():
            methods = np.where(resumed, np.int64(CODE_RESUMED), methods)
            masks = ctable.stop_masks if ctable.has_stops else None
            rows = (
                ctable.rec_stop_row[safe][resumed]
                if masks is not None
                else None
            )
            best, refs = _descend_numpy(
                np,
                ctrie,
                dsts[resumed],
                cont[resumed],
                ctable.rec_cont_depth[safe][resumed],
                masks,
                rows,
            )
            codes[resumed] = np.where(best >= 0, best, fd[resumed])
            memrefs[resumed] += refs
    lengths = ctrie.pool.lengths_array()
    if len(lengths):
        new_clues = np.where(
            codes >= 0, lengths[np.maximum(codes, 0)], np.int64(-1)
        )
    else:  # empty pool: nothing ever matches, so no lane carries a clue
        new_clues = np.full(lanes, -1, dtype=np.int64)
    return methods, codes, new_clues, memrefs


@hot_path
def full_lookup_batch(ctrie, dsts, force_python: bool = False):
    """Batched clueless lookups: ``(codes, memrefs)``.

    ``ctrie`` is any compiled layout — the dense :class:`CompiledTrie`
    or a :class:`CompiledMultibitTrie`; ``dsts`` comes from
    :func:`as_destination_array`; codes decode through ``ctrie.pool``.
    """
    if ctrie.backend == "numpy" and not force_python:
        return _full_dispatch_numpy(get_numpy(), ctrie, dsts)
    return fallback.full_lookup_batch(ctrie, dsts)


@hot_path
def lookup_batch(
    ctable: CompiledClueTable, dsts, clue_lens, force_python: bool = False
):
    """Batched clue-assisted lookups over a compiled table.

    Returns ``(methods, codes, new_clues, memrefs)`` — method codes from
    `repro.fastpath.backend`, result codes into ``ctable.trie.pool``,
    the outgoing clue length per lane (−1 for no match), and the exact
    object-graph memory-reference count per lane.
    """
    if ctable.backend == "numpy" and not force_python:
        return _clue_lookup_numpy(get_numpy(), ctable, dsts, clue_lens)
    return fallback.clue_lookup_batch(ctable, dsts, clue_lens)
