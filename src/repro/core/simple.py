"""The Simple method (§3.1.1).

Upon receiving clue ``s`` the router resumes the search only if the vertex
``s`` has descendants in its own trie; otherwise the entry's FD — the best
matching prefix of ``s`` locally, precomputed — already decides the packet.
Simple needs no knowledge of the *sender's* table, which is why it can be
built from the receiver's trie alone and learned fully on the fly.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.addressing import Prefix
from repro.core.entry import ClueEntry
from repro.core.receiver import TECHNIQUES, ReceiverState
from repro.core.table import ClueTable
from repro.lookup.restricted import (
    Continuation,
    LengthContinuation,
    PatriciaContinuation,
    SetContinuation,
    TrieContinuation,
    locate_patricia_entry,
    subtree_candidates,
)


class SimpleMethod:
    """Builds Simple-method clue entries for one receiving router."""

    method_name = "simple"

    def __init__(
        self,
        receiver: ReceiverState,
        technique: str = "patricia",
        telemetry=None,
    ):
        if technique not in TECHNIQUES:
            raise ValueError(
                "unknown technique %r (expected one of %s)"
                % (technique, ", ".join(TECHNIQUES))
            )
        self.receiver = receiver
        self.technique = technique
        #: Optional per-router telemetry view
        #: (:class:`repro.telemetry.RouterInstruments`); record-building
        #: is off the fast path, so the hook costs nothing when unset.
        self.telemetry = telemetry

    def build_entry(self, clue: Prefix) -> ClueEntry:
        """Pre-compute the clue's FD and (possibly empty) Ptr."""
        fd_prefix, fd_next_hop = self.receiver.fd_for_clue(clue)
        continuation = self._continuation(clue)
        if self.telemetry is not None:
            # Simple cannot see the sender's trie, so "problematic" is
            # unknowable; only Advance charges problematic_clues_total.
            self.telemetry.record_entry_built(self.method_name, False)
        return ClueEntry(
            clue, fd_prefix, fd_next_hop, continuation, style=self.method_name
        )

    def build_table(self, clues: Iterable[Prefix]) -> ClueTable:
        """Pre-processing construction (§3.3.2) over a clue universe."""
        table = ClueTable()
        for clue in clues:
            table.insert(self.build_entry(clue))
        return table

    def _continuation(self, clue: Prefix) -> Optional[Continuation]:
        """The Ptr field: a resumed search below ``clue``, or empty.

        Simple leaves the pointer empty exactly when the clue vertex is
        absent from the receiver's trie or has no descendants (§3.1.1).
        """
        node = self.receiver.trie.find_node(clue)
        if node is None or not node.children:
            return None
        if self.technique == "regular":
            return TrieContinuation(node, self.receiver.width, stops=None)
        if self.technique == "patricia":
            located = locate_patricia_entry(self.receiver.patricia, clue)
            if located is None:
                return None
            entry, is_clue_vertex = located
            return PatriciaContinuation(
                entry, is_clue_vertex, clue, self.receiver.width, stops=None
            )
        if self.technique == "multibit":
            from repro.lookup.multibit import MultibitContinuation

            located = self.receiver.multibit.node_at(clue)
            if located is None:
                return None
            return MultibitContinuation(self.receiver.multibit, clue)
        candidates = subtree_candidates(self.receiver.trie, clue)
        if not candidates:
            return None
        if self.technique == "binary":
            return SetContinuation(candidates, self.receiver.width, branching=2)
        if self.technique == "6way":
            return SetContinuation(candidates, self.receiver.width, branching=6)
        return LengthContinuation(candidates, self.receiver.width)

    def __repr__(self) -> str:
        return "SimpleMethod(technique=%r)" % self.technique
