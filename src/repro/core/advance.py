"""The Advance method (§3.1.2).

Advance additionally inspects the *sender's* trie: Claim 1 proves that for
the vast majority of clues (95–99.5 % empirically) no longer match can
exist at the receiver, so the entry's Ptr is empty and the lookup costs
exactly the one clue-table reference.  Only clues violating Claim 1
("problematic" clues) carry a continuation — and even that continuation is
restricted to the potential set ``P(s, R1)`` of Condition C1 (or, for the
trie walks, pruned by per-vertex Claim 1 stop booleans).

Case analysis implemented here, mirroring §3.1.2:

* **Case 1** — the clue is not a vertex of the receiver's trie: FD = the
  least marked ancestor; Ptr empty.
* **Case 2** — Claim 1 holds: FD = the clue's BMP locally; Ptr empty.
* **Case 3** — Claim 1 violated: Ptr = a restricted continuation, FD kept
  as the fallback when the resumed search fails.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.addressing import Prefix
from repro.core.entry import ClueEntry
from repro.core.receiver import TECHNIQUES, ReceiverState
from repro.core.table import ClueTable
from repro.lookup.hotpath import cold_path
from repro.lookup.restricted import (
    Continuation,
    LengthContinuation,
    PatriciaContinuation,
    SetContinuation,
    TrieContinuation,
    locate_patricia_entry,
)
from repro.trie.binary_trie import BinaryTrie
from repro.trie.overlay import TrieOverlay


class AdvanceMethod:
    """Builds Advance-method clue entries for one (sender, receiver) pair."""

    method_name = "advance"

    # Construction inspects whole tries and allocates freely; a router
    # only reaches it on the amortized build-on-miss path.
    @cold_path
    def __init__(
        self,
        sender_trie: BinaryTrie,
        receiver: ReceiverState,
        technique: str = "patricia",
        overlay: Optional[TrieOverlay] = None,
        telemetry=None,
    ):
        if technique not in TECHNIQUES:
            raise ValueError(
                "unknown technique %r (expected one of %s)"
                % (technique, ", ".join(TECHNIQUES))
            )
        self.receiver = receiver
        self.technique = technique
        #: A caller may hand in a live (incrementally maintained) overlay;
        #: by default one is built from the current tries.
        self.overlay = (
            overlay
            if overlay is not None
            else TrieOverlay(sender_trie, receiver.trie)
        )
        #: Per-vertex Claim 1 Booleans for the trie/Patricia walks (§4);
        #: only materialised for the techniques that need them.
        self.stops: Optional[Dict[Prefix, bool]] = (
            self.overlay.stop_booleans()
            if technique in ("regular", "patricia")
            else None
        )
        #: Optional per-router telemetry view
        #: (:class:`repro.telemetry.RouterInstruments`).
        self.telemetry = telemetry

    @cold_path
    def build_entry(self, clue: Prefix) -> ClueEntry:
        """Pre-compute the clue's FD and (usually empty) Ptr.

        ``@cold_path``: built once per (sender, clue), cached in the
        clue table — a clue miss pays for it exactly once (§3.1.2's
        pre-processing, merely deferred to first use).
        """
        fd_prefix, fd_next_hop = self.receiver.fd_for_clue(clue)
        continuation = None
        problematic = self.overlay.is_problematic(clue)
        if problematic:
            continuation = self._continuation(clue)
        if self.telemetry is not None:
            self.telemetry.record_entry_built(self.method_name, problematic)
        return ClueEntry(
            clue,
            fd_prefix,
            fd_next_hop,
            continuation,
            style=self.method_name,
            sender_node=self.overlay.sender.find_node(clue),
        )

    def build_table(self, clues: Optional[Iterable[Prefix]] = None) -> ClueTable:
        """Pre-processing construction over a clue universe.

        ``clues`` defaults to every prefix of the sender's table — every
        clue the sender could possibly emit.
        """
        if clues is None:
            clues = self.overlay.sender.prefixes()
        table = ClueTable()
        for clue in clues:
            table.insert(self.build_entry(clue))
        return table

    def _continuation(self, clue: Prefix) -> Optional[Continuation]:
        """Case 3: a Claim 1-restricted resumed search below ``clue``."""
        if self.technique == "regular":
            node = self.receiver.trie.find_node(clue)
            if node is None:
                return None
            return TrieContinuation(node, self.receiver.width, self.stops)
        if self.technique == "patricia":
            located = locate_patricia_entry(self.receiver.patricia, clue)
            if located is None:
                return None
            entry, is_clue_vertex = located
            return PatriciaContinuation(
                entry, is_clue_vertex, clue, self.receiver.width, self.stops
            )
        if self.technique == "multibit":
            from repro.lookup.multibit import MultibitContinuation

            located = self.receiver.multibit.node_at(clue)
            if located is None:
                return None
            return MultibitContinuation(self.receiver.multibit, clue)
        candidates = self.potential_candidates(clue)
        if not candidates:
            return None
        if self.technique == "binary":
            return SetContinuation(candidates, self.receiver.width, branching=2)
        if self.technique == "6way":
            return SetContinuation(candidates, self.receiver.width, branching=6)
        return LengthContinuation(candidates, self.receiver.width)

    def potential_candidates(
        self, clue: Prefix
    ) -> List[Tuple[Prefix, object]]:
        """``P(clue, R1)`` paired with the receiver's next hops."""
        return [
            (prefix, self.receiver.trie.next_hop_of(prefix))
            for prefix in self.overlay.potential_set(clue)
        ]

    def problematic_fraction(self) -> float:
        """Fraction of the sender's clues that violate Claim 1."""
        total = len(self.overlay.sender)
        if not total:
            return 0.0
        return len(self.overlay.problematic_clues()) / total

    def __repr__(self) -> str:
        return "AdvanceMethod(technique=%r)" % self.technique
