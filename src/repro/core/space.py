"""Clue-table space accounting (§3.5).

The paper's pessimistic bound: as many entries as a large router's table
(~60 000), three 4-byte fields each (clue value, FD, Ptr) — about
500–600 KB, i.e. the clue table does not even double the fast-memory
footprint of a backbone router.  In the Advance method only the clues for
which Claim 1 fails (< 10 % empirically) need the Ptr field at all, which
this model captures via the measured pointer fraction.
"""

from __future__ import annotations

from typing import Dict

from repro.core.table import ClueTable

#: Field sizes, in bytes, of one clue record (§3.5).
CLUE_VALUE_BYTES = 4
FD_BYTES = 4
PTR_BYTES = 4

#: SDRAM cache-line size assumed by the paper; two records per line.
SDRAM_LINE_BYTES = 32
RECORDS_PER_LINE = 2


def entry_bytes(with_pointer: bool) -> int:
    """Bytes of one record; pointer-less records drop the Ptr field."""
    size = CLUE_VALUE_BYTES + FD_BYTES
    if with_pointer:
        size += PTR_BYTES
    return size


def table_bytes(entries: int, pointer_fraction: float) -> int:
    """Total bytes of a table with the given pointer fraction."""
    if entries < 0:
        raise ValueError("entry count cannot be negative")
    if not 0.0 <= pointer_fraction <= 1.0:
        raise ValueError("pointer fraction must be within [0, 1]")
    with_ptr = round(entries * pointer_fraction)
    without_ptr = entries - with_ptr
    return with_ptr * entry_bytes(True) + without_ptr * entry_bytes(False)


def measured_table_bytes(table: ClueTable) -> int:
    """Space of a concrete clue table, by its actual pointer count."""
    total = len(table)
    if not total:
        return 0
    return table_bytes(total, table.pointer_count() / total)


def sdram_lines(total_bytes: int) -> int:
    """Cache lines consumed, at two packed records per 32-byte line."""
    if total_bytes < 0:
        raise ValueError("byte count cannot be negative")
    return -(-total_bytes // SDRAM_LINE_BYTES)


def space_report(entries: int, pointer_fraction: float) -> Dict[str, float]:
    """The §3.5 accounting as a dict (bytes, kilobytes, lines)."""
    total = table_bytes(entries, pointer_fraction)
    return {
        "entries": entries,
        "pointer_fraction": pointer_fraction,
        "bytes": total,
        "kilobytes": total / 1024.0,
        "sdram_lines": sdram_lines(total),
        "average_entry_bytes": total / entries if entries else 0.0,
    }
