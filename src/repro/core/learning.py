"""On-the-fly construction of the clues table (§3.3.1).

The paper's preferred deployment story: routers start with an *empty*
clues table and learn records as clues arrive.  Two techniques:

* **Learning the hash table** — hash the 5-bit clue (plus destination
  prefix) into the table; a mismatching or missing record triggers a full
  lookup and the record is (re)built.  Uses only the 5 header bits.
* **Indexing technique** — the sender enumerates its clues and stamps a
  16-bit index on each packet; the receiver keeps a flat array and
  overwrites any slot whose stored clue disagrees.  No hash function at
  all, inherently robust, at the cost of 16 more header bits.

Both are *zero-coordination*: nothing is exchanged between the routers
beyond the packets themselves, and even the first packet of a flow is
routed correctly (it merely pays a full lookup once per new clue).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.addressing import Address, Prefix
from repro.core.advance import AdvanceMethod
from repro.core.simple import SimpleMethod
from repro.core.table import ClueTable, IndexedClueTable
from repro.lookup.base import LookupAlgorithm
from repro.lookup.hotpath import cold_path, hot_path
from repro.lookup.counters import (
    METHOD_CLUE_MISS,
    METHOD_FD_IMMEDIATE,
    METHOD_FULL,
    METHOD_RESUMED,
    LookupResult,
    MemoryCounter,
)

Builder = Union[SimpleMethod, AdvanceMethod]


class LearningClueLookup:
    """Hash-table variant: learn each new clue the first time it arrives."""

    __slots__ = ("base", "builder", "table", "hits", "misses", "_scratch")

    # Built once per upstream; the empty-table start is the whole point
    # of learning (§3.3.1) and never recurs per packet.
    @cold_path
    def __init__(self, base: LookupAlgorithm, builder: Builder):
        self.base = base
        self.builder = builder
        self.table = ClueTable()
        self.hits = 0
        self.misses = 0
        #: Reused result record for the clue-hit paths (see the twin in
        #: ClueAssistedLookup): valid until the next lookup on this
        #: instance, which is all the per-packet data path needs.
        self._scratch = LookupResult(None, None, 0)

    @hot_path
    def _fill(self, prefix, next_hop, accesses, method) -> LookupResult:
        scratch = self._scratch
        scratch.prefix = prefix
        scratch.next_hop = next_hop
        scratch.accesses = accesses
        scratch.method = method
        return scratch

    @hot_path
    def lookup(
        self,
        address: Address,
        clue: Optional[Prefix] = None,
        counter: Optional[MemoryCounter] = None,
    ) -> LookupResult:
        """Route one packet, learning the clue on a miss."""
        counter = counter if counter is not None else MemoryCounter()
        if clue is None:
            counter.method = METHOD_FULL
            result = self.base.lookup(address, counter)
            result.method = METHOD_FULL
            return result
        entry = self.table.probe(clue, counter)
        if entry is None:
            # Never saw this clue: route by a full lookup, then build the
            # record off the fast path ("Call procedure new-clue(c)").
            self.misses += 1
            counter.method = METHOD_CLUE_MISS
            result = self.base.lookup(address, counter)
            result.method = METHOD_CLUE_MISS
            self.table.insert(self.builder.build_entry(clue))
            return result
        self.hits += 1
        if entry.pointer_empty():
            counter.method = METHOD_FD_IMMEDIATE
            prefix, next_hop = entry.final_decision()
            return self._fill(
                prefix, next_hop, counter.accesses, METHOD_FD_IMMEDIATE
            )
        counter.method = METHOD_RESUMED
        match = entry.continuation.search(address, counter)
        if match is None:
            prefix, next_hop = entry.final_decision()
            return self._fill(
                prefix, next_hop, counter.accesses, METHOD_RESUMED
            )
        prefix, next_hop = match
        return self._fill(prefix, next_hop, counter.accesses, METHOD_RESUMED)

    def hit_rate(self) -> float:
        """Fraction of clue-carrying packets that hit a learned record."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SenderIndexAssigner:
    """The sender side of the indexing technique: clue → 16-bit index."""

    __slots__ = ("capacity", "_indices", "_next")

    def __init__(self, capacity: int = 1 << 16):
        self.capacity = capacity
        self._indices: Dict[Prefix, int] = {}
        self._next = 0

    def index_of(self, clue: Prefix) -> int:
        """Sequentially enumerate clues; recycle slots when full."""
        index = self._indices.get(clue)
        if index is None:
            index = self._next % self.capacity
            self._indices[clue] = index
            self._next += 1
        return index

    def assigned(self) -> int:
        """Number of clues enumerated so far."""
        return len(self._indices)


class IndexedClueLookup:
    """Array variant: the packet carries the sender-assigned 16-bit index."""

    __slots__ = ("base", "builder", "table", "hits", "misses")

    def __init__(
        self,
        base: LookupAlgorithm,
        builder: Builder,
        capacity: int = 1 << 16,
    ):
        self.base = base
        self.builder = builder
        self.table = IndexedClueTable(capacity)
        self.hits = 0
        self.misses = 0

    @hot_path
    def lookup(
        self,
        address: Address,
        clue: Optional[Prefix] = None,
        index: Optional[int] = None,
        counter: Optional[MemoryCounter] = None,
    ) -> LookupResult:
        """Route one packet; a disagreeing slot is overwritten in place."""
        counter = counter if counter is not None else MemoryCounter()
        if clue is None or index is None:
            counter.method = METHOD_FULL
            result = self.base.lookup(address, counter)
            result.method = METHOD_FULL
            return result
        entry = self.table.probe(index, clue, counter)
        if entry is None:
            self.misses += 1
            counter.method = METHOD_CLUE_MISS
            result = self.base.lookup(address, counter)
            result.method = METHOD_CLUE_MISS
            self.table.store(index, self.builder.build_entry(clue))
            return result
        self.hits += 1
        if entry.pointer_empty():
            counter.method = METHOD_FD_IMMEDIATE
            prefix, next_hop = entry.final_decision()
            return LookupResult(
                prefix, next_hop, counter.accesses, METHOD_FD_IMMEDIATE
            )
        counter.method = METHOD_RESUMED
        match = entry.continuation.search(address, counter)
        if match is None:
            prefix, next_hop = entry.final_decision()
            return LookupResult(
                prefix, next_hop, counter.accesses, METHOD_RESUMED
            )
        prefix, next_hop = match
        return LookupResult(prefix, next_hop, counter.accesses, METHOD_RESUMED)

    def hit_rate(self) -> float:
        """Fraction of indexed packets that hit an agreeing slot."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
