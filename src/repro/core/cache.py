"""Caching the clue table (§3.5).

"Parts of the clues hash table can be cached and placed into the cache
only if touched recently."  This module wraps any clue table behind an
LRU cache of bounded capacity: a cached probe costs the usual single
(fast) reference; a miss additionally pays the slow-memory fetch and
promotes the record.  Under realistic Zipf-skewed traffic a small cache
captures most probes, which is the paper's argument that the clue table
does not need to live entirely in fast memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.addressing import Prefix
from repro.core.entry import ClueEntry
from repro.core.table import ClueTable
from repro.lookup.counters import MemoryCounter


class CachedClueTable:
    """An LRU front for a backing clue table."""

    def __init__(
        self,
        backing: ClueTable,
        capacity: int,
        miss_penalty: int = 1,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if miss_penalty < 0:
            raise ValueError("the miss penalty cannot be negative")
        self.backing = backing
        self.capacity = capacity
        #: extra references a backing-store fetch costs (slow memory).
        self.miss_penalty = miss_penalty
        self._cache: "OrderedDict[Prefix, ClueEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def probe(
        self, clue: Prefix, counter: Optional[MemoryCounter] = None
    ) -> Optional[ClueEntry]:
        """One fast reference on a hit; the slow fetch on top on a miss."""
        if counter is not None:
            counter.touch()
        cached = self._cache.get(clue)
        if cached is not None and cached.active:
            self.hits += 1
            self._cache.move_to_end(clue)
            return cached
        self.misses += 1
        if counter is not None:
            counter.touch(self.miss_penalty)
        entry = self.backing.probe(clue)  # uncounted: the penalty covers it
        if entry is None:
            return None
        self._admit(entry)
        return entry

    def _admit(self, entry: ClueEntry) -> None:
        self._cache[entry.clue] = entry
        self._cache.move_to_end(entry.clue)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.evictions += 1

    def invalidate(self, clue: Prefix) -> None:
        """Drop a record from the cache (after a table update)."""
        self._cache.pop(clue, None)

    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def occupancy(self) -> int:
        """Records currently cached."""
        return len(self._cache)

    def __repr__(self) -> str:
        return "CachedClueTable(%d/%d cached, hit rate %.3f)" % (
            len(self._cache),
            self.capacity,
            self.hit_rate(),
        )
