"""The distributed IP-lookup data path (Figure 5 of the paper).

``ClueAssistedLookup`` glues together a base lookup algorithm (used for
clue-less packets and unknown clues) and a clue table built by either the
Simple or the Advance method.  The per-packet procedure is exactly the
paper's pseudo-code:

    probe the clue table (one reference);
    if the record matches the clue:
        if Ptr is empty: route by FD;
        else: resume the search below the clue; on failure route by FD;
    else (never saw this clue): full lookup, then learn the clue.

The lookup also reports the receiver's *own* BMP so the router can attach
a fresh clue to the outgoing packet — a clue is always what *this* router
learned, independent of the incoming clue.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.addressing import Address, Prefix
from repro.core.entry import ClueEntry
from repro.core.table import ClueTable
from repro.lookup.base import LookupAlgorithm
from repro.lookup.hotpath import hot_path
from repro.lookup.counters import (
    METHOD_CLUE_MISS,
    METHOD_FD_IMMEDIATE,
    METHOD_FULL,
    METHOD_RESUMED,
    LookupResult,
    MemoryCounter,
)


class ClueAssistedLookup:
    """Per-packet lookup combining a clue table with a base algorithm."""

    __slots__ = ("base", "table", "on_unknown_clue", "unknown_clues", "pointer_followed", "fd_used", "_scratch")

    def __init__(
        self,
        base: LookupAlgorithm,
        table: ClueTable,
        on_unknown_clue: Optional[Callable[[Prefix], None]] = None,
    ):
        self.base = base
        self.table = table
        #: Optional learning hook invoked when an unknown clue arrives
        #: (§3.3.1's "Call procedure new-clue(c)").
        self.on_unknown_clue = on_unknown_clue
        self.unknown_clues = 0
        self.pointer_followed = 0
        self.fd_used = 0
        #: Reused result record for the clue-hit paths: allocating one
        #: per packet measurably slows the hot path, and a result is
        #: only guaranteed valid until the next lookup on this instance.
        self._scratch = LookupResult(None, None, 0)

    @hot_path
    def lookup(
        self,
        address: Address,
        clue: Optional[Prefix] = None,
        counter: Optional[MemoryCounter] = None,
    ) -> LookupResult:
        """Route one packet; charges every memory reference to ``counter``."""
        counter = counter if counter is not None else MemoryCounter()
        if clue is not None and not clue.matches(address):
            # The 5-bit header encoding cannot express a non-prefix of the
            # destination; a disagreeing clue object can only come from a
            # buggy caller and is treated as no clue at all.
            clue = None
        if clue is None:
            counter.method = METHOD_FULL
            result = self.base.lookup(address, counter)
            result.method = METHOD_FULL
            return result
        entry = self.table.probe(clue, counter)
        if entry is None:
            self.unknown_clues += 1
            counter.method = METHOD_CLUE_MISS
            result = self.base.lookup(address, counter)
            result.method = METHOD_CLUE_MISS
            if self.on_unknown_clue is not None:
                self.on_unknown_clue(clue)
            return result
        return self._resolve(entry, address, counter)

    @hot_path
    def _fill(self, prefix, next_hop, accesses, method) -> LookupResult:
        scratch = self._scratch
        scratch.prefix = prefix
        scratch.next_hop = next_hop
        scratch.accesses = accesses
        scratch.method = method
        return scratch

    @hot_path
    def _resolve(
        self, entry: ClueEntry, address: Address, counter: MemoryCounter
    ) -> LookupResult:
        if entry.pointer_empty():
            self.fd_used += 1
            counter.method = METHOD_FD_IMMEDIATE
            prefix, next_hop = entry.final_decision()
            return self._fill(
                prefix, next_hop, counter.accesses, METHOD_FD_IMMEDIATE
            )
        self.pointer_followed += 1
        counter.method = METHOD_RESUMED
        match = entry.continuation.search(address, counter)
        if match is None:
            self.fd_used += 1
            prefix, next_hop = entry.final_decision()
            return self._fill(
                prefix, next_hop, counter.accesses, METHOD_RESUMED
            )
        prefix, next_hop = match
        return self._fill(prefix, next_hop, counter.accesses, METHOD_RESUMED)

    def __repr__(self) -> str:
        return "ClueAssistedLookup(base=%s, table=%r)" % (
            self.base.name,
            self.table,
        )
