"""Clue encoding: the 5-bit (IPv4) / 7-bit (IPv6) header field.

A clue is the best matching prefix the upstream router found for the
packet's destination.  Because it is by construction a *prefix of the
destination address*, it travels as a tiny pointer into the address: the
number of leading destination bits that form it (§3).  This module encodes
and decodes that field and models the optional 16-bit index of the
"indexing technique" (§3.3.1).
"""

from __future__ import annotations

from typing import Optional

from repro.addressing import Address, Prefix, clue_field_width

#: Width of the optional per-neighbour clue index field (§3.3.1 assumes at
#: most 64K distinct clues between a pair of routers).
INDEX_FIELD_BITS = 16
MAX_CLUE_INDEX = (1 << INDEX_FIELD_BITS) - 1


class ClueEncodingError(ValueError):
    """A clue field value is invalid for the address family."""


def encode_clue(bmp_length: int, width: int = 32) -> int:
    """Encode a BMP length as the header field value.

    The field is simply the length itself; the function validates that it
    fits the family's field width (5 bits cover 0..32, 7 bits 0..128).
    """
    if not 0 <= bmp_length <= width:
        raise ClueEncodingError(
            "clue length %d outside [0, %d]" % (bmp_length, width)
        )
    field_bits = clue_field_width(width)
    if bmp_length >= (1 << field_bits) and bmp_length != width:
        raise ClueEncodingError(
            "clue length %d does not fit %d bits" % (bmp_length, field_bits)
        )
    return bmp_length


def decode_clue(address: Address, field: int) -> Prefix:
    """Recover the clue prefix from the destination address and the field."""
    if not 0 <= field <= address.width:
        raise ClueEncodingError(
            "clue field %d outside [0, %d]" % (field, address.width)
        )
    return address.prefix(field)


class ClueHeader:
    """The clue-related packet-header state.

    ``length`` is the 5/7-bit clue field (None when the packet carries no
    clue, e.g. it was emitted by a legacy router).  ``index`` is the
    optional 16-bit sequential index of the indexing technique.
    """

    __slots__ = ("length", "index")

    def __init__(self, length: Optional[int] = None, index: Optional[int] = None):
        if index is not None and not 0 <= index <= MAX_CLUE_INDEX:
            raise ClueEncodingError("clue index %d does not fit 16 bits" % index)
        self.length = length
        self.index = index

    def carries_clue(self) -> bool:
        """True if a clue is present."""
        return self.length is not None

    def clue_prefix(self, address: Address) -> Optional[Prefix]:
        """The clue as a prefix of ``address`` (None if absent)."""
        if self.length is None:
            return None
        return decode_clue(address, self.length)

    def clear(self) -> None:
        """Drop the clue (legacy router on the path)."""
        self.length = None
        self.index = None

    def truncate(self, max_length: int) -> None:
        """Shorten the clue for privacy (§5.3); no-op if already shorter."""
        if self.length is not None and self.length > max_length:
            self.length = max_length
            self.index = None

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ClueHeader)
            and self.length == other.length
            and self.index == other.index
        )

    def __repr__(self) -> str:
        return "ClueHeader(length=%r, index=%r)" % (self.length, self.index)
