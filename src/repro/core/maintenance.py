"""Keeping clue tables correct under route changes (§3.4).

The paper suggests clue tables change rarely and recommends never
physically removing clues (mark them invalid so the hash stays stable).
This module supplies the other half of that story: when the sender's or
the receiver's forwarding table changes, which clue entries must be
recomputed, and how to do it without rebuilding the world.

The dependency structure is local: the entry of a clue ``s`` depends only
on receiver prefixes on the root→s path (the FD) and on both routers'
prefixes below ``s`` (Claim 1 / the continuation).  So a change at prefix
``p`` can only dirty the clues that are *comparable* with ``p`` — the
sender clues on p's root path plus those in p's subtree.  The overlay is
patched incrementally (see :meth:`TrieOverlay.set_receiver_mark`) and
exactly the dirty entries are rebuilt.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.addressing import Prefix
from repro.core.advance import AdvanceMethod
from repro.core.receiver import ReceiverState
from repro.core.table import ClueTable
from repro.trie.binary_trie import BinaryTrie
from repro.trie.overlay import TrieOverlay

Entry = Tuple[Prefix, object]


class MaintainedClueTable:
    """An Advance clue table that tracks route changes incrementally."""

    def __init__(
        self,
        sender_entries: Iterable[Entry],
        receiver_entries: Iterable[Entry],
        technique: str = "binary",
        width: int = 32,
    ):
        self.width = width
        self.sender_trie = BinaryTrie.from_prefixes(sender_entries, width)
        self.receiver = ReceiverState(receiver_entries, width)
        self.overlay = TrieOverlay(self.sender_trie, self.receiver.trie)
        self.method = AdvanceMethod(
            self.sender_trie, self.receiver, technique, overlay=self.overlay
        )
        self.table = self.method.build_table()
        self.rebuilt_entries = 0

    # ------------------------------------------------------------------
    def _dirty_clues(self, changed: Iterable[Prefix]) -> Set[Prefix]:
        """Sender clues whose entries a change at these prefixes can affect."""
        dirty: Set[Prefix] = set()
        for prefix in changed:
            # Clues on the root path of the change (their subtree holds p).
            node = self.sender_trie.root
            if node.marked:
                dirty.add(node.prefix)
            for index in range(prefix.length):
                node = node.children.get(prefix.bit(index))
                if node is None:
                    break
                if node.marked:
                    dirty.add(node.prefix)
            # Clues inside the change's subtree (p sits on their root path).
            for vertex in self.sender_trie.marked_in_subtree(prefix):
                dirty.add(vertex.prefix)
        return dirty

    def _refresh_stops(self, changed: Iterable[Prefix]) -> None:
        """Patch the per-vertex stop booleans along the changed paths."""
        if self.method.stops is None:
            return
        for prefix in changed:
            node = self.overlay.find(prefix)
            # The stop value can change at the vertex and its ancestors.
            lineage = [prefix] + list(prefix.ancestors())
            for ancestor in lineage:
                vertex = self.overlay.find(ancestor)
                if vertex is None:
                    continue
                self.method.stops[ancestor] = not any(
                    child.unclaimed for child in vertex.children.values()
                )
            if node is not None:
                for descendant in node.subtree():
                    self.method.stops[descendant.prefix] = not any(
                        child.unclaimed
                        for child in descendant.children.values()
                    )

    def _rebuild(self, dirty: Set[Prefix]) -> None:
        for clue in dirty:
            if self.sender_trie.contains(clue):
                self.table.insert(self.method.build_entry(clue))
                self.rebuilt_entries += 1
            else:
                # §3.4: keep the record, mark it invalid — a later probe
                # treats it as a miss and the packet takes a full lookup.
                record = self.table.probe(clue)
                if record is not None:
                    record.deactivate()

    # ------------------------------------------------------------------
    def apply_receiver_update(
        self,
        add: Iterable[Entry] = (),
        remove: Iterable[Prefix] = (),
    ) -> Set[Prefix]:
        """The receiver's own table changed; returns the rebuilt clues."""
        added = list(add)
        removed = list(remove)
        self.receiver.apply_update(added, removed)
        for prefix in removed:
            self.overlay.set_receiver_mark(prefix, False)
        for prefix, _hop in added:
            self.overlay.set_receiver_mark(prefix, True)
        changed = [prefix for prefix, _ in added] + list(removed)
        self._refresh_stops(changed)
        dirty = self._dirty_clues(changed)
        self._rebuild(dirty)
        return dirty

    def apply_sender_update(
        self,
        add: Iterable[Entry] = (),
        remove: Iterable[Prefix] = (),
    ) -> Set[Prefix]:
        """The sender's table changed (new/withdrawn clues)."""
        added = list(add)
        removed = list(remove)
        for prefix in removed:
            self.sender_trie.remove(prefix)
            self.overlay.set_sender_mark(prefix, False)
        for prefix, next_hop in added:
            self.sender_trie.insert(prefix, next_hop)
            self.overlay.set_sender_mark(prefix, True)
        changed = [prefix for prefix, _ in added] + list(removed)
        self._refresh_stops(changed)
        dirty = self._dirty_clues(changed)
        # Changed sender prefixes are themselves (new or dead) clues.
        dirty.update(changed)
        self._rebuild(dirty)
        return dirty

    # ------------------------------------------------------------------
    def reference_table(self) -> ClueTable:
        """A from-scratch rebuild (test oracle for the incremental path)."""
        method = AdvanceMethod(self.sender_trie, self.receiver, self.method.technique)
        return method.build_table()

    def __repr__(self) -> str:
        return "MaintainedClueTable(%d entries, %d rebuilt)" % (
            len(self.table),
            self.rebuilt_entries,
        )
