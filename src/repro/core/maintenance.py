"""Keeping clue tables correct under route changes (§3.4).

The paper suggests clue tables change rarely and recommends never
physically removing clues (mark them invalid so the hash stays stable).
This module supplies the other half of that story: when the sender's or
the receiver's forwarding table changes, which clue entries must be
recomputed, and how to do it without rebuilding the world.

The dependency structure is local: the entry of a clue ``s`` depends only
on receiver prefixes on the root→s path (the FD) and on both routers'
prefixes below ``s`` (Claim 1 / the continuation).  So a change at prefix
``p`` can only dirty the clues that are *comparable* with ``p`` — the
sender clues on p's root path plus those in p's subtree.  The overlay is
patched incrementally (see :meth:`TrieOverlay.set_receiver_mark`) and
exactly the dirty entries are rebuilt.

Two application modes serve the churn engine (``repro.churn``):

* **immediate** — mutate, compute the dirty set, rebuild it on the spot
  (the historical behaviour of :meth:`apply_receiver_update` /
  :meth:`apply_sender_update`);
* **deferred** — mutate and *deactivate* the dirty entries now (cheap:
  the routing update message itself carries enough information to mark
  them invalid), then rebuild lazily via :meth:`flush`, possibly under a
  per-epoch budget.  A deactivated record probes as a miss, so the data
  path degrades to a full lookup but can never forward wrongly — the
  §5.3 robustness semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.addressing import Prefix
from repro.core.advance import AdvanceMethod
from repro.core.receiver import ReceiverState
from repro.core.table import ClueTable
from repro.trie.binary_trie import BinaryTrie
from repro.trie.overlay import TrieOverlay

Entry = Tuple[Prefix, object]


class MaintenanceStats:
    """Dirty-set accounting across the lifetime of a maintained table."""

    __slots__ = (
        "updates_applied",
        "batches_applied",
        "dirty_total",
        "max_dirty",
        "entries_rebuilt",
        "entries_deactivated",
        "flushes",
    )

    def __init__(self) -> None:
        self.updates_applied = 0
        self.batches_applied = 0
        self.dirty_total = 0
        self.max_dirty = 0
        self.entries_rebuilt = 0
        self.entries_deactivated = 0
        self.flushes = 0

    def record_batch(self, updates: int, dirty: int) -> None:
        self.updates_applied += updates
        self.batches_applied += 1
        self.dirty_total += dirty
        if dirty > self.max_dirty:
            self.max_dirty = dirty

    def dirty_per_update(self) -> float:
        """Average dirty-set contribution of one route update."""
        if not self.updates_applied:
            return 0.0
        return self.dirty_total / self.updates_applied

    def as_dict(self) -> Dict[str, float]:
        return {
            "updates_applied": self.updates_applied,
            "batches_applied": self.batches_applied,
            "dirty_total": self.dirty_total,
            "max_dirty": self.max_dirty,
            "dirty_per_update": round(self.dirty_per_update(), 4),
            "entries_rebuilt": self.entries_rebuilt,
            "entries_deactivated": self.entries_deactivated,
            "flushes": self.flushes,
        }

    def __repr__(self) -> str:
        return "MaintenanceStats(%d updates, %d dirty, %d rebuilt)" % (
            self.updates_applied,
            self.dirty_total,
            self.entries_rebuilt,
        )


class MaintainedClueTable:
    """An Advance clue table that tracks route changes incrementally.

    ``receiver_entries`` may be a plain entry iterable (a private
    :class:`ReceiverState` is built) or an existing ``ReceiverState`` —
    the churn engine shares one receiver state between a router's data
    path and all the pairs it participates in as the receiving side, and
    then applies batches with ``update_receiver=False`` so the shared
    state is only mutated once.
    """

    def __init__(
        self,
        sender_entries: Iterable[Entry],
        receiver_entries,
        technique: str = "binary",
        width: int = 32,
    ):
        self.width = width
        self.sender_trie = BinaryTrie.from_prefixes(sender_entries, width)
        if isinstance(receiver_entries, ReceiverState):
            self.receiver = receiver_entries
        else:
            self.receiver = ReceiverState(receiver_entries, width)
        self.overlay = TrieOverlay(self.sender_trie, self.receiver.trie)
        self.method = AdvanceMethod(
            self.sender_trie, self.receiver, technique, overlay=self.overlay
        )
        self.table = self.method.build_table()
        self.rebuilt_entries = 0
        self.stats = MaintenanceStats()
        #: Dirty clues whose rebuild was deferred (``defer_rebuild=True``);
        #: their records are already deactivated, so until :meth:`flush`
        #: (or an on-demand relearn) they probe as misses.
        self.pending: Set[Prefix] = set()

    # ------------------------------------------------------------------
    def _dirty_clues(self, changed: Iterable[Prefix]) -> Set[Prefix]:
        """Sender clues whose entries a change at these prefixes can affect."""
        dirty: Set[Prefix] = set()
        for prefix in changed:
            # Clues on the root path of the change (their subtree holds p).
            node = self.sender_trie.root
            if node.marked:
                dirty.add(node.prefix)
            for index in range(prefix.length):
                node = node.children.get(prefix.bit(index))
                if node is None:
                    break
                if node.marked:
                    dirty.add(node.prefix)
            # Clues inside the change's subtree (p sits on their root path).
            for vertex in self.sender_trie.marked_in_subtree(prefix):
                dirty.add(vertex.prefix)
        return dirty

    def _refresh_stops(self, changed: Iterable[Prefix]) -> None:
        """Patch the per-vertex stop booleans along the changed paths."""
        if self.method.stops is None:
            return
        for prefix in changed:
            node = self.overlay.find(prefix)
            # The stop value can change at the vertex and its ancestors.
            lineage = [prefix] + list(prefix.ancestors())
            for ancestor in lineage:
                vertex = self.overlay.find(ancestor)
                if vertex is None:
                    continue
                self.method.stops[ancestor] = not any(
                    child.unclaimed for child in vertex.children.values()
                )
            if node is not None:
                for descendant in node.subtree():
                    self.method.stops[descendant.prefix] = not any(
                        child.unclaimed
                        for child in descendant.children.values()
                    )

    def _rebuild_one(self, clue: Prefix) -> bool:
        """Recompute one clue's record; True if a fresh entry was built."""
        if self.sender_trie.contains(clue):
            self.table.insert(self.method.build_entry(clue))
            self.rebuilt_entries += 1
            self.stats.entries_rebuilt += 1
            return True
        # §3.4: keep the record, mark it invalid — a later probe
        # treats it as a miss and the packet takes a full lookup.
        record = self.table.record(clue)
        if record is not None and record.active:
            record.deactivate()
            self.stats.entries_deactivated += 1
        return False

    def _rebuild(self, dirty: Set[Prefix]) -> None:
        for clue in sorted(dirty):
            self._rebuild_one(clue)

    def _deactivate(self, dirty: Set[Prefix]) -> int:
        """Mark every dirty record invalid (the cheap half of a change)."""
        deactivated = 0
        for clue in dirty:
            record = self.table.record(clue)
            if record is not None and record.active:
                record.deactivate()
                deactivated += 1
        self.stats.entries_deactivated += deactivated
        return deactivated

    # ------------------------------------------------------------------
    def apply_batch(
        self,
        sender_add: Iterable[Entry] = (),
        sender_remove: Iterable[Prefix] = (),
        receiver_add: Iterable[Entry] = (),
        receiver_remove: Iterable[Prefix] = (),
        defer_rebuild: bool = False,
        update_receiver: bool = True,
    ) -> Set[Prefix]:
        """Apply one burst touching either side; returns the dirty clues.

        The whole burst is folded into a *single* dirty-set computation
        and rebuild, so overlapping updates (churn clusters under hot
        subtrees) pay for each dirtied clue once — the amortisation §3.4
        appeals to.  With ``defer_rebuild`` the dirty records are only
        deactivated and queued on :attr:`pending` for a later
        :meth:`flush`.
        """
        s_added = list(sender_add)
        s_removed = list(sender_remove)
        r_added = list(receiver_add)
        r_removed = list(receiver_remove)

        if update_receiver and (r_added or r_removed):
            self.receiver.apply_update(r_added, r_removed)
        for prefix in r_removed:
            self.overlay.set_receiver_mark(prefix, False)
        for prefix, _hop in r_added:
            self.overlay.set_receiver_mark(prefix, True)
        for prefix in s_removed:
            self.sender_trie.remove(prefix)
            self.overlay.set_sender_mark(prefix, False)
        for prefix, next_hop in s_added:
            self.sender_trie.insert(prefix, next_hop)
            self.overlay.set_sender_mark(prefix, True)

        sender_changed = [prefix for prefix, _ in s_added] + list(s_removed)
        changed = (
            [prefix for prefix, _ in r_added] + list(r_removed) + sender_changed
        )
        self._refresh_stops(changed)
        dirty = self._dirty_clues(changed)
        # Changed sender prefixes are themselves (new or dead) clues.
        dirty.update(sender_changed)

        updates = len(s_added) + len(s_removed) + len(r_added) + len(r_removed)
        self.stats.record_batch(updates, len(dirty))
        if defer_rebuild:
            self._deactivate(dirty)
            self.pending.update(dirty)
        else:
            self._rebuild(dirty)
        return dirty

    def flush(self, limit: Optional[int] = None) -> int:
        """Rebuild (up to ``limit``) pending records; returns the count.

        Records that became active again since they were queued were
        already repaired on demand by the learning data path (a miss on a
        deactivated record triggers ``new-clue(c)``); they are dropped
        from the queue without charging the budget.
        """
        if not self.pending:
            return 0
        self.stats.flushes += 1
        rebuilt = 0
        for clue in sorted(self.pending):
            if limit is not None and rebuilt >= limit:
                break
            record = self.table.record(clue)
            if record is not None and record.active:
                # Relearned on demand since deactivation: already fresh.
                self.pending.discard(clue)
                continue
            if self._rebuild_one(clue):
                rebuilt += 1
            self.pending.discard(clue)
        return rebuilt

    def pending_count(self) -> int:
        """Deferred dirty records still awaiting a rebuild."""
        return len(self.pending)

    # ------------------------------------------------------------------
    def apply_receiver_update(
        self,
        add: Iterable[Entry] = (),
        remove: Iterable[Prefix] = (),
    ) -> Set[Prefix]:
        """The receiver's own table changed; returns the rebuilt clues."""
        return self.apply_batch(receiver_add=add, receiver_remove=remove)

    def apply_sender_update(
        self,
        add: Iterable[Entry] = (),
        remove: Iterable[Prefix] = (),
    ) -> Set[Prefix]:
        """The sender's table changed (new/withdrawn clues)."""
        return self.apply_batch(sender_add=add, sender_remove=remove)

    # ------------------------------------------------------------------
    def reference_table(self) -> ClueTable:
        """A from-scratch rebuild (test oracle for the incremental path)."""
        method = AdvanceMethod(self.sender_trie, self.receiver, self.method.technique)
        return method.build_table()

    def __repr__(self) -> str:
        return "MaintainedClueTable(%d entries, %d rebuilt, %d pending)" % (
            len(self.table),
            self.rebuilt_entries,
            len(self.pending),
        )
