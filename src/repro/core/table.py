"""Clue tables: the hashed variant and the 16-bit indexed variant (§3.3).

Both variants charge exactly one memory reference per probe — the minimum
any scheme (including MPLS/Tag switching) can achieve — and both verify
the stored clue against the arriving one, which is what makes the scheme
robust against un-coordinated neighbours: a mismatched record is simply
treated as a miss and the packet takes the ordinary full lookup.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.addressing import Prefix
from repro.core.entry import ClueEntry
from repro.lookup.counters import MemoryCounter
from repro.lookup.hotpath import hot_path


class ClueTable:
    """Hash-keyed clue table (the 5-bit-only variant of §3.3.1)."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[Prefix, ClueEntry] = {}

    def insert(self, entry: ClueEntry) -> None:
        """Add or replace the record for ``entry.clue``."""
        self._entries[entry.clue] = entry

    @hot_path
    def probe(
        self, clue: Prefix, counter: Optional[MemoryCounter] = None
    ) -> Optional[ClueEntry]:
        """One-reference hash probe; None on miss or inactive record."""
        if counter is not None:
            counter.touch()
        entry = self._entries.get(clue)
        if entry is None or not entry.active:
            return None
        return entry

    def remove(self, clue: Prefix) -> bool:
        """Physically drop a record (topology change).  True if present."""
        return self._entries.pop(clue, None) is not None

    def record(self, clue: Prefix) -> Optional[ClueEntry]:
        """Raw fetch for maintenance: returns inactive records too and
        charges no memory reference (it is not the data path)."""
        return self._entries.get(clue)

    def entries(self) -> Iterator[ClueEntry]:
        """All records, active and inactive."""
        return iter(self._entries.values())

    def pointer_count(self) -> int:
        """Records whose Ptr is non-empty (the "problematic" fraction)."""
        return sum(
            1 for entry in self._entries.values() if not entry.pointer_empty()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, clue: Prefix) -> bool:
        return clue in self._entries

    def __repr__(self) -> str:
        return "ClueTable(%d entries, %d with Ptr)" % (
            len(self._entries),
            self.pointer_count(),
        )


class IndexedClueTable:
    """Sequential clue table addressed by the 16-bit index field (§3.3.1).

    The sender enumerates its clues; the receiver keeps a flat array.  A
    probe reads slot ``index`` and compares the stored clue with the one on
    the packet — a one-instruction check.  On mismatch the caller overwrites
    the slot with a freshly built record, so the table is self-healing with
    no pre-synchronisation between the routers.
    """

    __slots__ = ("capacity", "_slots", "overwrites")

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slots: List[Optional[ClueEntry]] = [None] * capacity
        self.overwrites = 0

    @hot_path
    def probe(
        self,
        index: int,
        clue: Prefix,
        counter: Optional[MemoryCounter] = None,
    ) -> Optional[ClueEntry]:
        """One-reference array read; None when the slot disagrees."""
        if not 0 <= index < self.capacity:
            raise IndexError("clue index %d out of range" % index)
        if counter is not None:
            counter.touch()
        entry = self._slots[index]
        if entry is None or entry.clue != clue or not entry.active:
            return None
        return entry

    def store(self, index: int, entry: ClueEntry) -> None:
        """Write ``entry`` into slot ``index`` (overwriting is expected)."""
        if not 0 <= index < self.capacity:
            raise IndexError("clue index %d out of range" % index)
        if self._slots[index] is not None:
            self.overwrites += 1
        self._slots[index] = entry

    def occupied(self) -> int:
        """Number of populated slots."""
        return sum(1 for slot in self._slots if slot is not None)

    def __repr__(self) -> str:
        return "IndexedClueTable(%d/%d slots)" % (self.occupied(), self.capacity)
