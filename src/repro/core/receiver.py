"""Receiver-side state shared by the Simple and Advance builders.

A router that receives clues keeps its ordinary forwarding structures —
one binary trie and one Patricia trie over its own table — and the clue
builders derive entries against them.  Building both once and sharing them
across methods mirrors a real router, where the clue machinery sits next
to whatever lookup structure is already deployed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.addressing import Address, Prefix
from repro.trie.binary_trie import BinaryTrie
from repro.trie.patricia import PatriciaTrie

#: Continuation techniques a clue entry may be built for (§4).
TECHNIQUES = ("regular", "patricia", "binary", "6way", "logw", "multibit")


class ReceiverState:
    """A receiving router's own forwarding table and derived structures."""

    def __init__(
        self,
        entries: Iterable[Tuple[Prefix, object]],
        width: int = 32,
    ):
        self.width = width
        self.entries: List[Tuple[Prefix, object]] = sorted(
            entries, key=lambda item: (item[0].length, item[0].bits)
        )
        self.trie = BinaryTrie.from_prefixes(self.entries, width)
        self.patricia = PatriciaTrie.from_prefixes(self.entries, width)
        self._multibit = None

    @property
    def multibit(self):
        """The stride-k multibit trie, built lazily on first use."""
        if self._multibit is None:
            from repro.lookup.multibit import MultibitTrie

            trie = MultibitTrie(width=self.width)
            for prefix, next_hop in self.entries:
                trie.insert(prefix, next_hop)
            self._multibit = trie
        return self._multibit

    def best_match(
        self, address: Address
    ) -> Tuple[Optional[Prefix], Optional[object]]:
        """The receiver's true BMP for ``address`` (test oracle and FDs)."""
        node = self.trie.longest_match(address)
        if node is None:
            return None, None
        return node.prefix, node.next_hop

    def fd_for_clue(
        self, clue: Prefix
    ) -> Tuple[Optional[Prefix], Optional[object]]:
        """The FD field for ``clue``: its BMP in the receiver's trie.

        This is the paper's "least ancestor of s which is also a prefix";
        the walk works whether or not ``clue`` is a vertex of the trie
        (Advance method case 1 handles absent vertices the same way).
        """
        node = self.trie.least_marked_ancestor(clue)
        if node is None:
            return None, None
        return node.prefix, node.next_hop

    def apply_update(
        self,
        add: Iterable[Tuple[Prefix, object]] = (),
        remove: Iterable[Prefix] = (),
    ) -> None:
        """Apply a route change to every derived structure.

        The binary and Patricia tries update in place; the multibit trie
        (which has no cheap delete) is dropped and lazily rebuilt.
        """
        removed = list(remove)
        added = list(add)
        for prefix in removed:
            self.trie.remove(prefix)
            self.patricia.remove(prefix)
        for prefix, next_hop in added:
            self.trie.insert(prefix, next_hop)
            self.patricia.insert(prefix, next_hop)
        table = dict(self.entries)
        for prefix in removed:
            table.pop(prefix, None)
        for prefix, next_hop in added:
            table[prefix] = next_hop
        self.entries = sorted(
            table.items(), key=lambda item: (item[0].length, item[0].bits)
        )
        self._multibit = None

    def size(self) -> int:
        """Number of forwarding-table entries."""
        return len(self.entries)

    def __repr__(self) -> str:
        return "ReceiverState(%d prefixes, width=%d)" % (
            len(self.entries),
            self.width,
        )
