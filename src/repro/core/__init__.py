"""The paper's contribution: distributed IP lookup with clues."""

from repro.core.advance import AdvanceMethod
from repro.core.cache import CachedClueTable
from repro.core.clue import (
    INDEX_FIELD_BITS,
    MAX_CLUE_INDEX,
    ClueEncodingError,
    ClueHeader,
    decode_clue,
    encode_clue,
)
from repro.core.entry import ClueEntry
from repro.core.learning import (
    IndexedClueLookup,
    LearningClueLookup,
    SenderIndexAssigner,
)
from repro.core.lookup import ClueAssistedLookup
from repro.core.maintenance import MaintainedClueTable
from repro.core.multi_neighbor import (
    BitmapClueTable,
    SubTablesClueTable,
    UnionClueTable,
)
from repro.core.receiver import TECHNIQUES, ReceiverState
from repro.core.simple import SimpleMethod
from repro.core.space import (
    entry_bytes,
    measured_table_bytes,
    sdram_lines,
    space_report,
    table_bytes,
)
from repro.core.table import ClueTable, IndexedClueTable

__all__ = [
    "AdvanceMethod",
    "BitmapClueTable",
    "CachedClueTable",
    "ClueAssistedLookup",
    "ClueEncodingError",
    "ClueEntry",
    "ClueHeader",
    "ClueTable",
    "INDEX_FIELD_BITS",
    "IndexedClueLookup",
    "IndexedClueTable",
    "LearningClueLookup",
    "MAX_CLUE_INDEX",
    "MaintainedClueTable",
    "ReceiverState",
    "SenderIndexAssigner",
    "SimpleMethod",
    "SubTablesClueTable",
    "TECHNIQUES",
    "UnionClueTable",
    "decode_clue",
    "encode_clue",
    "entry_bytes",
    "measured_table_bytes",
    "sdram_lines",
    "space_report",
    "table_bytes",
]
