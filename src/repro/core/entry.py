"""Clue-table entries: the clue value, the FD field and the Ptr field.

Per §3.2 each entry stores the clue itself (so a probe can verify it hit
the right record), an *FD* ("final decision": the best matching prefix —
or directly the next hop — to use when no longer match exists locally) and
a *Ptr*: either "empty", meaning the FD is final, or a precomputed
continuation object from which the search for a longer match resumes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.addressing import Prefix
from repro.lookup.restricted import Continuation


class ClueEntry:
    """One record of a clues table."""

    __slots__ = (
        "clue",
        "fd_prefix",
        "fd_next_hop",
        "continuation",
        "active",
        "style",
        "sender_node",
    )

    def __init__(
        self,
        clue: Prefix,
        fd_prefix: Optional[Prefix],
        fd_next_hop: Optional[object],
        continuation: Optional[Continuation] = None,
        style: Optional[str] = None,
        sender_node: Optional[object] = None,
    ):
        self.clue = clue
        self.fd_prefix = fd_prefix
        self.fd_next_hop = fd_next_hop
        self.continuation = continuation
        #: §3.4 suggests never removing clues, only marking them invalid, to
        #: keep the hash function stable across topology changes.
        self.active = True
        #: Which method built the record ("simple" / "advance").  Simple
        #: records are oracle-correct for *any* clue that prefixes the
        #: destination; Advance records are only sound when the clue is the
        #: sender's true BMP — the guard (repro.faults.guard) uses this to
        #: decide how much verification a hit needs.
        self.style = style
        #: For Advance records, the sender-trie vertex of the clue (None when
        #: the clue is not in the sender's table); lets the guard verify
        #: "clue == sender BMP" with a short walk below the clue.
        self.sender_node = sender_node

    def pointer_empty(self) -> bool:
        """True when the Ptr field is "empty" (the FD is final)."""
        return self.continuation is None

    def final_decision(self) -> Tuple[Optional[Prefix], Optional[object]]:
        """The FD field as a ``(prefix, next_hop)`` pair."""
        return self.fd_prefix, self.fd_next_hop

    def deactivate(self) -> None:
        """Mark the clue invalid without removing it (§3.4)."""
        self.active = False

    def __repr__(self) -> str:
        ptr = "empty" if self.continuation is None else "set"
        return "ClueEntry(clue=%s, fd=%r, ptr=%s)" % (
            self.clue,
            self.fd_prefix,
            ptr,
        )
