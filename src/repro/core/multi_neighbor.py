"""Sharing one clues table among several neighbours (§3.4).

A router with several upstream neighbours can keep one clue table per port
(the trivial case), or share memory with one of three schemes the paper
proposes:

* **Union table** — one table over the union of all neighbours' clues; an
  entry's Ptr may be empty only when Claim 1 holds with respect to *every*
  neighbour that could send the clue, and its continuation covers the
  union of the per-neighbour potential sets.
* **Bit map** — one table, plus a d-bit map per entry (d = number of
  neighbours): bit j says whether the clue is final when arriving from
  neighbour j.  If the clue implies the BMP for several neighbours it
  implies the *same* BMP for all of them, so one FD field suffices.
* **Sub-tables** — a common table for clues that behave identically for
  all neighbours, plus a small specific table per neighbour; a probe may
  need to consult both (two references in the worst case).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.addressing import Address, Prefix
from repro.core.advance import AdvanceMethod
from repro.core.entry import ClueEntry
from repro.core.receiver import ReceiverState
from repro.core.table import ClueTable
from repro.lookup.counters import LookupResult, MemoryCounter
from repro.lookup.restricted import SetContinuation
from repro.trie.binary_trie import BinaryTrie


class UnionClueTable:
    """One shared table; Claim 1 must hold w.r.t. every relevant sender."""

    def __init__(
        self,
        senders: Dict[str, BinaryTrie],
        receiver: ReceiverState,
        branching: int = 2,
    ):
        if not senders:
            raise ValueError("at least one sender is required")
        self.receiver = receiver
        self.methods = {
            name: AdvanceMethod(trie, receiver, technique="binary")
            for name, trie in senders.items()
        }
        self.table = ClueTable()
        self.branching = branching
        self._build()

    def _clue_universe(self) -> Set[Prefix]:
        universe: Set[Prefix] = set()
        for method in self.methods.values():
            universe.update(method.overlay.sender.prefixes())
        return universe

    def _senders_of(self, clue: Prefix) -> List[AdvanceMethod]:
        """The senders that could emit this clue (it is in their table)."""
        return [
            method
            for method in self.methods.values()
            if method.overlay.sender.contains(clue)
        ]

    def _build(self) -> None:
        for clue in self._clue_universe():
            fd_prefix, fd_next_hop = self.receiver.fd_for_clue(clue)
            relevant = self._senders_of(clue)
            problematic = [
                method
                for method in relevant
                if method.overlay.is_problematic(clue)
            ]
            continuation = None
            if problematic:
                merged: Dict[Prefix, object] = {}
                for method in problematic:
                    for prefix, hop in method.potential_candidates(clue):
                        merged[prefix] = hop
                if merged:
                    continuation = SetContinuation(
                        list(merged.items()),
                        self.receiver.width,
                        branching=self.branching,
                    )
            self.table.insert(
                ClueEntry(clue, fd_prefix, fd_next_hop, continuation)
            )

    def lookup(
        self,
        address: Address,
        clue: Prefix,
        counter: Optional[MemoryCounter] = None,
    ) -> LookupResult:
        """Probe the shared table (one reference) and resolve."""
        counter = counter if counter is not None else MemoryCounter()
        entry = self.table.probe(clue, counter)
        if entry is None:
            prefix, next_hop = self.receiver.best_match(address)
            return LookupResult(prefix, next_hop, counter.accesses)
        if entry.continuation is not None:
            match = entry.continuation.search(address, counter)
            if match is not None:
                return LookupResult(match[0], match[1], counter.accesses)
        prefix, next_hop = entry.final_decision()
        return LookupResult(prefix, next_hop, counter.accesses)


class BitmapClueTable:
    """One shared table with a per-neighbour "FD is final" bit map."""

    def __init__(self, senders: Dict[str, BinaryTrie], receiver: ReceiverState):
        if not senders:
            raise ValueError("at least one sender is required")
        self.receiver = receiver
        self.sender_order = sorted(senders)
        self.methods = {
            name: AdvanceMethod(trie, receiver, technique="binary")
            for name, trie in senders.items()
        }
        #: clue -> (entry, bitmap, per-sender continuation map)
        self._records: Dict[Prefix, Tuple[ClueEntry, Dict[str, bool], Dict[str, object]]] = {}
        self._build()

    def _build(self) -> None:
        universe: Set[Prefix] = set()
        for method in self.methods.values():
            universe.update(method.overlay.sender.prefixes())
        for clue in universe:
            fd_prefix, fd_next_hop = self.receiver.fd_for_clue(clue)
            bitmap: Dict[str, bool] = {}
            continuations: Dict[str, object] = {}
            for name in self.sender_order:
                method = self.methods[name]
                if not method.overlay.sender.contains(clue):
                    continue
                final = not method.overlay.is_problematic(clue)
                bitmap[name] = final
                if not final:
                    candidates = method.potential_candidates(clue)
                    if candidates:
                        continuations[name] = SetContinuation(
                            candidates, self.receiver.width, branching=2
                        )
                    else:
                        bitmap[name] = True
            entry = ClueEntry(clue, fd_prefix, fd_next_hop, None)
            self._records[clue] = (entry, bitmap, continuations)

    def bitmap_of(self, clue: Prefix) -> Optional[Dict[str, bool]]:
        """The per-neighbour bit map stored with a clue (None on miss)."""
        record = self._records.get(clue)
        return record[1] if record else None

    def lookup(
        self,
        address: Address,
        clue: Prefix,
        sender: str,
        counter: Optional[MemoryCounter] = None,
    ) -> LookupResult:
        """Probe once, test the sender's bit, and resolve accordingly."""
        counter = counter if counter is not None else MemoryCounter()
        counter.touch()
        record = self._records.get(clue)
        if record is None:
            prefix, next_hop = self.receiver.best_match(address)
            return LookupResult(prefix, next_hop, counter.accesses)
        entry, bitmap, continuations = record
        if bitmap.get(sender, True):
            prefix, next_hop = entry.final_decision()
            return LookupResult(prefix, next_hop, counter.accesses)
        continuation = continuations.get(sender)
        if continuation is not None:
            match = continuation.search(address, counter)
            if match is not None:
                return LookupResult(match[0], match[1], counter.accesses)
        prefix, next_hop = entry.final_decision()
        return LookupResult(prefix, next_hop, counter.accesses)

    def size(self) -> int:
        """Number of shared records."""
        return len(self._records)


class SubTablesClueTable:
    """A common table plus per-neighbour specific tables.

    A clue lands in the common table when every neighbour that can send it
    agrees: Claim 1 holds for all of them (the FD is shared by
    construction).  Clues needing per-neighbour treatment live in that
    neighbour's specific table.  A lookup probes the common table first
    (one reference) and the specific table only on a miss (a second
    reference).
    """

    def __init__(self, senders: Dict[str, BinaryTrie], receiver: ReceiverState):
        if not senders:
            raise ValueError("at least one sender is required")
        self.receiver = receiver
        self.methods = {
            name: AdvanceMethod(trie, receiver, technique="binary")
            for name, trie in senders.items()
        }
        self.common = ClueTable()
        self.specific: Dict[str, ClueTable] = {
            name: ClueTable() for name in senders
        }
        self._build()

    def _build(self) -> None:
        universe: Set[Prefix] = set()
        for method in self.methods.values():
            universe.update(method.overlay.sender.prefixes())
        for clue in universe:
            relevant = {
                name: method
                for name, method in self.methods.items()
                if method.overlay.sender.contains(clue)
            }
            all_final = all(
                not method.overlay.is_problematic(clue)
                for method in relevant.values()
            )
            if all_final:
                fd_prefix, fd_next_hop = self.receiver.fd_for_clue(clue)
                self.common.insert(ClueEntry(clue, fd_prefix, fd_next_hop))
            else:
                for name, method in relevant.items():
                    self.specific[name].insert(method.build_entry(clue))

    def lookup(
        self,
        address: Address,
        clue: Prefix,
        sender: str,
        counter: Optional[MemoryCounter] = None,
    ) -> LookupResult:
        """Common table first; the sender's specific table on a miss."""
        counter = counter if counter is not None else MemoryCounter()
        entry = self.common.probe(clue, counter)
        if entry is None:
            entry = self.specific[sender].probe(clue, counter)
        if entry is None:
            prefix, next_hop = self.receiver.best_match(address)
            return LookupResult(prefix, next_hop, counter.accesses)
        if entry.continuation is not None:
            match = entry.continuation.search(address, counter)
            if match is not None:
                return LookupResult(match[0], match[1], counter.accesses)
        prefix, next_hop = entry.final_decision()
        return LookupResult(prefix, next_hop, counter.accesses)

    def sizes(self) -> Dict[str, int]:
        """Entry counts: the common table and each specific table."""
        sizes = {"common": len(self.common)}
        for name, table in self.specific.items():
            sizes[name] = len(table)
        return sizes
