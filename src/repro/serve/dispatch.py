"""Shard routing: which worker shard owns a destination?

Two partitioning modes, both deterministic and both vectorized:

``range`` — the address space is cut into contiguous bucket runs on an
aligned ``2**shard_bits`` grid; shard *s* owns buckets
``[ceil(s * B / N), ceil((s + 1) * B / N))`` with ``B = 2**shard_bits``.
The mapping ``bucket -> bucket * N >> shard_bits`` is monotone, so every
shard owns one contiguous destination range and a table prefix overlaps
a shard iff their address ranges intersect — the replication rule
:func:`prefix_shards` implements.  Locality-friendly: Zipf-hot prefixes
land whole on one shard.

``hash`` — a splitmix64-style integer mix of the destination picks the
shard.  No locality, but uniform load even when the popular prefixes
all sit in one corner of the address space; every shard then serves the
*full* table (``prefix_shards`` returns all of them).

The numpy kernel :func:`route_batch` routes a whole destination batch
with a handful of array ops; the pure-Python twin keeps numpy optional.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.addressing import Prefix
from repro.fastpath.backend import get_numpy, numpy_eligible
from repro.lookup.hotpath import cold_path, hot_path

PARTITION_MODES = ("range", "hash")

#: splitmix64 multipliers (Steele et al.); the mix is its own spec —
#: any fixed avalanche permutation of the destination works, it only
#: has to be deterministic and identical across backends.
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """The scalar splitmix64 finalizer (pure Python, 64-bit wrapping)."""
    value = (value + _GOLDEN) & _MASK64
    value = ((value ^ (value >> 30)) * _MIX_1) & _MASK64
    value = ((value ^ (value >> 27)) * _MIX_2) & _MASK64
    return value ^ (value >> 31)


class ShardPlan:
    """The partitioning contract: destination value -> shard id.

    ``shard_bits`` is the smallest *b* with ``2**b >= shards``; range
    mode reads the top *b* destination bits as a bucket and folds the
    ``2**b`` buckets onto ``shards`` contiguous runs, hash mode mixes
    the whole value and reduces modulo ``shards``.
    """

    __slots__ = ("shards", "mode", "width", "shard_bits", "shift", "_bounds")

    def __init__(self, shards: int, mode: str = "range", width: int = 32):
        if shards < 1:
            raise ValueError("need at least one shard, got %d" % shards)
        if mode not in PARTITION_MODES:
            raise ValueError(
                "unknown partition mode %r (choose from %s)"
                % (mode, "/".join(PARTITION_MODES))
            )
        self.shards = shards
        self.mode = mode
        self.width = width
        bits = 0
        while (1 << bits) < shards:
            bits += 1
        self.shard_bits = bits
        self.shift = width - bits
        buckets = 1 << bits
        # Bucket boundaries per shard: shard s owns [bounds[s], bounds[s+1]).
        self._bounds = [
            -(-s * buckets // shards) for s in range(shards + 1)
        ]
        self._bounds[-1] = buckets

    # -- scalar --------------------------------------------------------
    def shard_of(self, value: int) -> int:
        """The shard owning destination ``value`` (scalar reference path)."""
        if self.mode == "hash":
            return _mix64(value) % self.shards
        bucket = value >> self.shift
        return (bucket * self.shards) >> self.shard_bits

    # -- per-shard address ranges (range mode) -------------------------
    def shard_range(self, shard: int) -> Tuple[int, int]:
        """Inclusive-exclusive address range ``[lo, hi)`` of ``shard``.

        Only meaningful in range mode; hash mode owns the whole space.
        """
        if self.mode == "hash":
            return 0, 1 << self.width
        lo = self._bounds[shard] << self.shift
        hi = self._bounds[shard + 1] << self.shift
        return lo, hi

    def prefix_shards(self, prefix: Prefix) -> List[int]:
        """Every shard whose destination range ``prefix`` overlaps.

        This is the replication rule: a table prefix must live on every
        shard that can receive a destination it matches, so prefixes
        shorter than the shard grid (the default route above all) are
        replicated while /shard_bits-and-longer prefixes land on exactly
        one shard.  Hash mode replicates everything everywhere.
        """
        if self.mode == "hash":
            return list(range(self.shards))
        lo, hi = prefix.address_range()
        owners = []
        for shard in range(self.shards):
            shard_lo, shard_hi = self.shard_range(shard)
            if lo < shard_hi and hi >= shard_lo:
                owners.append(shard)
        return owners

    def __repr__(self) -> str:
        return "ShardPlan(shards=%d, mode=%r, width=%d)" % (
            self.shards,
            self.mode,
            self.width,
        )


@hot_path
def _route_numpy(np, plan, dsts):
    """Vectorized shard ids for a whole destination batch."""
    if plan.mode == "hash":
        h = (dsts.astype(np.uint64) + np.uint64(_GOLDEN)) & np.uint64(_MASK64)
        h = (h ^ (h >> np.uint64(30))) * np.uint64(_MIX_1)
        h = (h ^ (h >> np.uint64(27))) * np.uint64(_MIX_2)
        h = h ^ (h >> np.uint64(31))
        return (h % np.uint64(plan.shards)).astype(np.int64)
    buckets = dsts >> plan.shift
    return (buckets * plan.shards) >> plan.shard_bits


@cold_path
def _route_python(plan, dsts):
    """Per-element twin of :func:`_route_numpy` (numpy-free
    deployments) — per-batch result list amortized across lanes."""
    return [plan.shard_of(int(value)) for value in dsts]


@hot_path
def route_batch(plan: ShardPlan, dsts, force_python: bool = False):
    """Shard id per lane of ``dsts`` (from ``as_destination_array``)."""
    np = get_numpy()
    if np is not None and not force_python and numpy_eligible(plan.width):
        return _route_numpy(np, plan, dsts)
    return _route_python(plan, dsts)
