"""Worker shards: a compiled-and-certified slice of the lookup tables.

Each :class:`Shard` owns the receiver-table prefixes whose address
ranges overlap its destination range (see
:meth:`repro.serve.dispatch.ShardPlan.prefix_shards` — prefixes shorter
than the shard grid are replicated, everything else lands on exactly
one shard) and a clue table built over the sender prefixes overlapping
the same range.  Because every prefix that can match a destination owned
by the shard is present in the slice, the shard-local lookup returns the
same ``(prefix, next_hop)`` decision as the full-table scalar path — the
engine's differential audit re-verifies that end to end on live traffic.

Building reuses the existing machinery unchanged: the slice becomes a
``ReceiverState``, the Simple/Advance builders produce the clue table,
``repro.fastpath.compile`` freezes both into flat arrays, and — the
certification gate — ``certify_full``/``certify_clue`` must pass over a
deterministic sweep before the shard is allowed to serve a single
request.  An uncertified shard raises; the serving plane never starts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.core.simple import SimpleMethod
from repro.fastpath.certify import (
    certification_batch,
    certify_clue,
    certify_full,
)
from repro.fastpath.compile import compile_clue_table
from repro.fastpath.kernels import lookup_batch
from repro.fastpath.layouts import LAYOUTS, compile_layout
from repro.lookup.hotpath import hot_path
from repro.lookup.regular import RegularTrieLookup
from repro.serve.dispatch import ShardPlan

METHODS = ("simple", "advance")


class Shard:
    """One worker: a certified compiled table slice plus its counters."""

    __slots__ = (
        "shard_id",
        "width",
        "entries",
        "clue_universe",
        "state",
        "ctrie",
        "ctable",
        "scalar",
        "certified_lanes",
        "force_python",
        "layout",
        "requests",
        "batches",
        "metrics",
    )

    def __init__(
        self,
        shard_id: int,
        entries: List[Tuple[object, object]],
        clue_universe: List[object],
        sender_trie,
        method: str = "advance",
        width: int = 32,
        seed: int = 0,
        force_python: bool = False,
        metrics=None,
        layout: str = "dense",
    ):
        if method not in METHODS:
            raise ValueError("method must be one of %s" % (METHODS,))
        if layout not in LAYOUTS:
            raise ValueError(
                "layout must be one of %s, got %r" % (", ".join(LAYOUTS), layout)
            )
        self.shard_id = shard_id
        self.width = width
        self.entries = list(entries)
        self.clue_universe = list(clue_universe)
        self.force_python = force_python
        self.layout = layout
        self.requests = 0
        self.batches = 0
        #: Pre-bound per-shard instrument view (``ShardInstruments``);
        #: ``None`` keeps the shard usable without telemetry.
        self.metrics = metrics
        self.state = ReceiverState(self.entries, width)
        if method == "advance":
            builder = AdvanceMethod(sender_trie, self.state, "regular")
        else:
            builder = SimpleMethod(self.state, "regular")
        table = builder.build_table(self.clue_universe)
        #: The compiled full-lookup layout this shard serves through.
        self.ctrie = compile_layout(self.state.trie, layout)
        self.ctable = compile_clue_table(table, self.ctrie)
        #: The shard-local scalar twin — certification target and the
        #: per-request reference the engine's audit decodes against.
        self.scalar = ClueAssistedLookup(
            RegularTrieLookup(self.entries, width), table
        )
        self.certified_lanes = self._certify(sender_trie, seed)

    def _certify(self, sender_trie, seed: int) -> int:
        """The gate: kernels must agree with the scalar slice, exactly.

        Raises :class:`repro.fastpath.certify.CertificationError` on the
        first divergence; the engine refuses to build a serving plane
        around a shard that did not pass.
        """
        sweep = list(self.entries)
        sweep.extend((clue, None) for clue in self.clue_universe)
        if not sweep:
            return 0
        dsts, lens = certification_batch(
            sender_trie, sweep, width=self.width, seed=seed
        )
        base_lookup = RegularTrieLookup(self.entries, self.width)
        checked = certify_full(
            self.ctrie, base_lookup, dsts, force_python=self.force_python
        )
        if self.ctrie is not self.ctable.trie:
            # Serving a stride layout: the resume walks still descend the
            # dense base, so certify it (memrefs included) as well.
            checked += certify_full(
                self.ctable.trie,
                base_lookup,
                dsts,
                force_python=self.force_python,
            )
        checked += certify_clue(
            self.ctable, self.scalar, dsts, lens, force_python=self.force_python
        )
        return checked

    @hot_path
    def process(self, dsts, clue_lens):
        """Serve one coalesced batch: result codes + memref counts.

        ``dsts``/``clue_lens`` come packed from the batcher
        (``as_destination_array`` layout); the returned codes decode
        through ``self.ctable.trie.pool``.  One kernel invocation per
        batch — no per-request Python.
        """
        methods, codes, new_clues, memrefs = lookup_batch(
            self.ctable, dsts, clue_lens, force_python=self.force_python
        )
        lanes = len(dsts)
        self.requests += lanes
        self.batches += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.requests.inc(lanes)
            metrics.batches.inc()
            metrics.batch_size.observe(lanes)
        return codes, memrefs

    def decode(self, code: int) -> Tuple[Optional[object], Optional[object]]:
        """``(prefix, next_hop)`` for one result code (audit/report path)."""
        pool = self.ctable.trie.pool
        if code < 0:
            return None, None
        return pool.prefixes[code], pool.next_hops[code]

    def __repr__(self) -> str:
        return "Shard(id=%d, prefixes=%d, clues=%d)" % (
            self.shard_id,
            len(self.entries),
            len(self.clue_universe),
        )


def build_shards(
    plan: ShardPlan,
    receiver_entries,
    sender_trie,
    method: str = "advance",
    width: int = 32,
    seed: int = 0,
    force_python: bool = False,
    instruments=None,
    layout: str = "dense",
) -> List[Shard]:
    """Partition the tables along ``plan`` and build every shard.

    Each receiver entry and each sender prefix (the clue universe) is
    placed on every shard its address range overlaps; each shard then
    compiles and certifies independently.  Returns the shards in id
    order.
    """
    entry_slices: List[List[Tuple[object, object]]] = [
        [] for _ in range(plan.shards)
    ]
    for prefix, next_hop in receiver_entries:
        for shard in plan.prefix_shards(prefix):
            entry_slices[shard].append((prefix, next_hop))
    clue_slices: List[List[object]] = [[] for _ in range(plan.shards)]
    for clue in sender_trie.prefixes():
        for shard in plan.prefix_shards(clue):
            clue_slices[shard].append(clue)
    shards = []
    for shard_id in range(plan.shards):
        metrics = (
            instruments.bind_shard(str(shard_id))
            if instruments is not None
            else None
        )
        shards.append(
            Shard(
                shard_id,
                entry_slices[shard_id],
                clue_slices[shard_id],
                sender_trie,
                method=method,
                width=width,
                seed=seed,
                force_python=force_python,
                metrics=metrics,
                layout=layout,
            )
        )
    return shards
