"""Request coalescing: kernel-sized batches under a max-size/max-wait policy.

A :class:`RequestBatcher` fronts one shard.  Incoming lookups join a
bounded FIFO; a batch is released as soon as ``max_batch`` requests are
queued (an oversize burst releases several full batches in one tick),
and a partial batch is released once the *oldest* queued request has
waited ``max_wait`` ticks — the classic latency/throughput coalescing
trade-off, made explicit and testable.

Backpressure is a first-class outcome, not an exception: when the queue
is full, ``shed`` policy drops the overflow (counted per shard — the
report and the ``serve_shed_total`` series account every drop), while
``block`` policy refuses the overflow and the engine holds it upstream
in an ingress backlog, trading drops for latency.  :meth:`offer`
returns how many requests were accepted so the caller always knows
which tail was refused.

Time is a caller-supplied integer tick, never a wall clock (RC103):
the whole serving plane replays bit-identically from a seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lookup.hotpath import hot_path

#: Backpressure policies: drop the overflow vs. refuse it (hold upstream).
BACKPRESSURE_POLICIES = ("shed", "block")


class BatchPolicy:
    """The coalescing knobs shared by every shard's batcher."""

    __slots__ = ("max_batch", "max_wait", "capacity", "policy")

    def __init__(
        self,
        max_batch: int = 256,
        max_wait: int = 4,
        capacity: int = 4096,
        policy: str = "shed",
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1, got %d" % max_batch)
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0, got %d" % max_wait)
        if capacity < max_batch:
            raise ValueError(
                "capacity %d cannot be smaller than max_batch %d"
                % (capacity, max_batch)
            )
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                "unknown backpressure policy %r (choose from %s)"
                % (policy, "/".join(BACKPRESSURE_POLICIES))
            )
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.capacity = capacity
        self.policy = policy

    def __repr__(self) -> str:
        return "BatchPolicy(max_batch=%d, max_wait=%d, capacity=%d, %r)" % (
            self.max_batch,
            self.max_wait,
            self.capacity,
            self.policy,
        )


class RequestBatcher:
    """A bounded coalescing queue in front of one shard.

    The queue is three parallel Python lists (destination value, clue
    length, arrival tick); batches hand contiguous slices to the kernel
    packer, so the per-request bookkeeping cost is one append and one
    slice copy regardless of batch size.
    """

    __slots__ = (
        "policy",
        "shed",
        "accepted",
        "released",
        "_values",
        "_lens",
        "_ticks",
    )

    def __init__(self, policy: Optional[BatchPolicy] = None):
        self.policy = policy if policy is not None else BatchPolicy()
        #: Requests dropped by shed backpressure since construction.
        self.shed = 0
        #: Requests admitted to the queue since construction.
        self.accepted = 0
        #: Requests handed out in released batches since construction.
        #: Conservation holds at every instant:
        #: ``accepted = released + depth`` and every offered request is
        #: accepted, shed, or refused.
        self.released = 0
        self._values: List[int] = []
        self._lens: List[int] = []
        self._ticks: List[int] = []

    def __len__(self) -> int:
        return len(self._values)

    @property
    def depth(self) -> int:
        """Current queue depth (the ``serve_queue_depth`` gauge value)."""
        return len(self._values)

    def offer(self, values, lens, tick: int, arrivals=None) -> int:
        """Enqueue up to capacity; returns how many were accepted.

        ``tick`` stamps the arrival time of every request unless
        ``arrivals`` carries per-request ticks (blocked requests being
        retried keep their *original* arrival, so their latency includes
        the time they spent refused upstream).  Overflow handling is the
        policy's call: ``shed`` counts and drops the tail, ``block``
        just refuses it (the caller keeps it and retries next tick —
        upstream backpressure).
        """
        room = self.policy.capacity - len(self._values)
        count = len(values)
        take = count if count <= room else room
        if take:
            self._values.extend(values[:take])
            self._lens.extend(lens[:take])
            if arrivals is None:
                self._ticks.extend([tick] * take)
            else:
                self._ticks.extend(arrivals[:take])
            self.accepted += take
        overflow = count - take
        if overflow and self.policy.policy == "shed":
            self.shed += overflow
            return count  # consumed: the tail was dropped, not refused
        return take

    @hot_path
    def take_batch(self, tick: int):
        """Release one due batch, or ``None`` if nothing is due yet.

        Due means either a full ``max_batch`` is queued, or the oldest
        request has waited ``max_wait`` ticks.  Call repeatedly per tick
        until it returns ``None`` — an oversize burst releases several
        full batches back to back.  Returns ``(values, lens, ticks)``
        slices; an empty queue never yields an (empty) batch.
        """
        queued = len(self._values)
        if not queued:
            return None
        policy = self.policy
        size = policy.max_batch
        if queued < size:
            if tick - self._ticks[0] < policy.max_wait:
                return None
            size = queued
        batch = (self._values[:size], self._lens[:size], self._ticks[:size])
        del self._values[:size]
        del self._lens[:size]
        del self._ticks[:size]
        self.released += size
        return batch

    def drain_all(self, tick: int) -> List[Tuple[list, list, list]]:
        """Flush everything queued as maximal batches (end-of-run drain)."""
        batches = []
        while self._values:
            size = min(self.policy.max_batch, len(self._values))
            batches.append(
                (self._values[:size], self._lens[:size], self._ticks[:size])
            )
            del self._values[:size]
            del self._lens[:size]
            del self._ticks[:size]
            self.released += size
        return batches

    def __repr__(self) -> str:
        return "RequestBatcher(depth=%d, shed=%d, %r)" % (
            len(self._values),
            self.shed,
            self.policy,
        )
