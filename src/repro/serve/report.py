"""The ``BENCH_serve.json`` payload: exact percentiles, honest totals.

Latency is measured in integer ticks (completion tick minus arrival
tick) and tallied into an exact ``{latency: count}`` histogram while the
engine runs, so percentiles are computed by nearest-rank over the *full*
population — no reservoir sampling, no interpolation, and two runs with
the same seed produce byte-identical payloads.  Wall-clock throughput
(sustained packets/sec) appears only when the CLI injected a clock
(RC103); without one the deterministic columns still fill in, which is
what the seeded-determinism test compares.
"""

from __future__ import annotations

import json
from typing import Dict, Optional


def percentile_from_counts(
    counts: Dict[int, int], fraction: float
) -> Optional[int]:
    """Nearest-rank percentile over an exact integer histogram.

    ``fraction`` is in ``(0, 1]`` (0.5 = p50); returns ``None`` for an
    empty histogram.  Nearest-rank means the smallest latency value
    whose cumulative count reaches ``ceil(fraction * total)`` — an
    actual observed latency, never an interpolated one.
    """
    if not counts:
        return None
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1], got %g" % fraction)
    total = sum(counts.values())
    rank = -(-int(fraction * total * 1000000) // 1000000)  # ceil, float-safe
    if rank < 1:
        rank = 1
    running = 0
    for latency in sorted(counts):
        running += counts[latency]
        if running >= rank:
            return latency
    return max(counts)


def latency_summary(counts: Dict[int, int]) -> Dict[str, object]:
    """The latency block of the payload: count/mean/max and the p-trio."""
    total = sum(counts.values())
    if not total:
        return {
            "unit": "ticks",
            "count": 0,
            "mean": None,
            "max": None,
            "p50": None,
            "p99": None,
            "p999": None,
        }
    weighted = sum(latency * count for latency, count in counts.items())
    return {
        "unit": "ticks",
        "count": total,
        "mean": weighted / total,
        "max": max(counts),
        "p50": percentile_from_counts(counts, 0.50),
        "p99": percentile_from_counts(counts, 0.99),
        "p999": percentile_from_counts(counts, 0.999),
    }


class ServeReport:
    """The finished run: payload access plus the pass/fail verdict."""

    __slots__ = ("payload",)

    def __init__(self, payload: Dict[str, object]):
        self.payload = payload

    def as_dict(self) -> Dict[str, object]:
        return self.payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.payload, indent=indent, sort_keys=True)

    def passed(self) -> bool:
        """True iff the differential audit found zero disagreements."""
        audit = self.payload["audit"]
        return audit["disagreements"] == 0  # type: ignore[index]

    def summary(self) -> str:
        """A few human-oriented lines for the CLI footer."""
        totals = self.payload["totals"]
        latency = self.payload["latency"]
        audit = self.payload["audit"]
        cert = self.payload["certification"]
        pps = totals["sustained_pps"]  # type: ignore[index]
        lines = [
            "serve: %d shards (%s), %s backend"
            % (
                len(self.payload["shards"]),  # type: ignore[arg-type]
                self.payload["partition"],
                self.payload["backend"],
            ),
            "completed %d/%d requests in %d batches (%d shed)"
            % (
                totals["completed"],  # type: ignore[index]
                totals["offered"],  # type: ignore[index]
                totals["batches"],  # type: ignore[index]
                totals["shed"],  # type: ignore[index]
            ),
            "latency ticks p50=%s p99=%s p999=%s"
            % (latency["p50"], latency["p99"], latency["p999"]),  # type: ignore[index]
            "sustained %s pps"
            % ("%.0f" % pps if pps is not None else "n/a (no clock)"),
            "certified %d lanes; audit %d checked, %d disagreements"
            % (
                cert["lanes"],  # type: ignore[index]
                audit["checked"],  # type: ignore[index]
                audit["disagreements"],  # type: ignore[index]
            ),
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "ServeReport(passed=%r)" % self.passed()
