"""repro.serve — the sharded serving plane over the compiled fast path.

The subsystem answers the systems question the paper leaves open: what
does clue-assisted lookup buy when it is deployed as a *service* —
partitioned across worker shards, fed by bursty heavy-tail traffic,
with finite queues in front of every worker?  Six modules, one story:

* :mod:`repro.serve.dispatch` — destination → shard (range or hash).
* :mod:`repro.serve.shard` — a compiled-and-certified table slice.
* :mod:`repro.serve.batcher` — kernel-sized coalescing, bounded queues,
  explicit shed/block backpressure.
* :mod:`repro.serve.loadgen` — seeded Zipf + bursty arrivals.
* :mod:`repro.serve.engine` — the deterministic tick loop plus the
  never-wrong-forwarding differential audit.
* :mod:`repro.serve.report` — exact latency percentiles and the
  ``BENCH_serve.json`` payload.

Everything replays bit-identically from a seed; wall-clock throughput
exists only when the CLI injects a clock (RC103).
"""

from repro.serve.batcher import (
    BACKPRESSURE_POLICIES,
    BatchPolicy,
    RequestBatcher,
)
from repro.serve.dispatch import PARTITION_MODES, ShardPlan, route_batch
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.loadgen import LoadProfile, Workload, ZipfLoadGenerator
from repro.serve.report import (
    ServeReport,
    latency_summary,
    percentile_from_counts,
)
from repro.serve.shard import Shard, build_shards

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BatchPolicy",
    "LoadProfile",
    "PARTITION_MODES",
    "RequestBatcher",
    "ServeConfig",
    "ServeEngine",
    "ServeReport",
    "Shard",
    "ShardPlan",
    "Workload",
    "ZipfLoadGenerator",
    "build_shards",
    "latency_summary",
    "percentile_from_counts",
    "route_batch",
]
