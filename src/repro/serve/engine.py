"""The serving plane: shards + batchers + load generator, one tick loop.

:class:`ServeEngine` builds the §6 sender/receiver fixture at the
configured scale, partitions the receiver table and the clue universe
across N :class:`~repro.serve.shard.Shard` workers (each compiled and
certified before a single request is served), then replays a seeded
:class:`~repro.serve.loadgen.ZipfLoadGenerator` workload through the
dispatch → batch → kernel path:

    tick loop:
        re-offer blocked backlog (block policy keeps refused requests
            upstream with their original arrival tick);
        route this tick's arrivals to shards (vectorized) and offer
            them to the per-shard batchers (shed policy counts drops);
        release every due batch (full, or oldest-waited-max_wait) and
            serve it with one kernel call per batch;
        publish queue-depth gauges and shed counters.

Time is an integer tick throughout — the simulation never reads a wall
clock (RC103); ``run`` accepts an *injected* clock purely to convert
the completed-request total into a sustained packets/sec figure, so the
same seed and config always produce the same report counts.

After the drain, a differential audit replays a seeded sample of live
requests through the sharded path and insists the decoded
``(prefix, next_hop)`` equals both the full-table scalar clue lookup
and the receiver's own longest-prefix match — the paper's never-wrong
forwarding property, re-proved end to end on the serving plane.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.addressing import Address
from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.core.simple import SimpleMethod
from repro.fastpath.backend import get_numpy, numpy_eligible
from repro.fastpath.kernels import (
    as_destination_array,
    as_length_array,
    lookup_batch,
)
from repro.fastpath.layouts import LAYOUTS
from repro.lookup.regular import RegularTrieLookup
from repro.serve.batcher import BatchPolicy, RequestBatcher
from repro.serve.dispatch import ShardPlan, route_batch
from repro.serve.loadgen import LoadProfile, Workload, ZipfLoadGenerator
from repro.serve.report import ServeReport, latency_summary
from repro.serve.shard import Shard, build_shards
from repro.tablegen import NeighborProfile, derive_neighbor, generate_table
from repro.trie.binary_trie import BinaryTrie

Clock = Optional[Callable[[], float]]


class ServeConfig:
    """Everything a serving run depends on — echoed into the payload."""

    __slots__ = (
        "shards",
        "partition",
        "method",
        "policy",
        "table_size",
        "requests",
        "max_batch",
        "max_wait",
        "queue_capacity",
        "zipf_alpha",
        "universe",
        "rate",
        "audit_samples",
        "seed",
        "width",
        "force_python",
        "layout",
    )

    def __init__(
        self,
        shards: int = 4,
        partition: str = "range",
        method: str = "advance",
        policy: str = "shed",
        table_size: int = 20000,
        requests: int = 1000000,
        max_batch: int = 256,
        max_wait: int = 4,
        queue_capacity: int = 4096,
        zipf_alpha: float = 1.1,
        universe: int = 4096,
        rate: float = 512.0,
        audit_samples: int = 2000,
        seed: int = 42,
        width: int = 32,
        force_python: bool = False,
        layout: str = "dense",
    ):
        if shards < 1:
            raise ValueError("need at least one shard, got %d" % shards)
        if requests < 1:
            raise ValueError("requests must be >= 1, got %d" % requests)
        if table_size < 1:
            raise ValueError("table_size must be >= 1, got %d" % table_size)
        if audit_samples < 0:
            raise ValueError("audit_samples must be >= 0")
        if layout not in LAYOUTS:
            raise ValueError(
                "layout must be one of %s, got %r" % (", ".join(LAYOUTS), layout)
            )
        self.shards = shards
        self.partition = partition
        self.method = method
        self.policy = policy
        self.table_size = table_size
        self.requests = requests
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.queue_capacity = queue_capacity
        self.zipf_alpha = zipf_alpha
        self.universe = universe
        self.rate = rate
        self.audit_samples = audit_samples
        self.seed = seed
        self.width = width
        self.force_python = force_python
        self.layout = layout

    def batch_policy(self) -> BatchPolicy:
        return BatchPolicy(
            max_batch=self.max_batch,
            max_wait=self.max_wait,
            capacity=self.queue_capacity,
            policy=self.policy,
        )

    def load_profile(self) -> LoadProfile:
        return LoadProfile(
            zipf_alpha=self.zipf_alpha,
            universe=self.universe,
            rate=self.rate,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "shards": self.shards,
            "partition": self.partition,
            "method": self.method,
            "policy": self.policy,
            "table_size": self.table_size,
            "requests": self.requests,
            "max_batch": self.max_batch,
            "max_wait": self.max_wait,
            "queue_capacity": self.queue_capacity,
            "zipf_alpha": self.zipf_alpha,
            "universe": self.universe,
            "rate": self.rate,
            "audit_samples": self.audit_samples,
            "seed": self.seed,
            "width": self.width,
            "force_python": self.force_python,
            "layout": self.layout,
        }


class ServeEngine:
    """Builds the sharded plane once, then replays seeded workloads."""

    def __init__(self, config: Optional[ServeConfig] = None, instruments=None):
        self.config = config if config is not None else ServeConfig()
        cfg = self.config
        self.instruments = instruments
        self.sender_entries = generate_table(
            cfg.table_size, seed=cfg.seed, width=cfg.width
        )
        self.receiver_entries = derive_neighbor(
            self.sender_entries, NeighborProfile(), seed=cfg.seed + 1
        )
        self.sender_trie = BinaryTrie(cfg.width)
        for prefix, next_hop in self.sender_entries:
            self.sender_trie.insert(prefix, next_hop)
        self.plan = ShardPlan(cfg.shards, cfg.partition, cfg.width)
        # The certification gate lives inside each Shard constructor:
        # an uncertified slice raises CertificationError right here and
        # the engine never comes up.
        self.shards: List[Shard] = build_shards(
            self.plan,
            self.receiver_entries,
            self.sender_trie,
            method=cfg.method,
            width=cfg.width,
            seed=cfg.seed,
            force_python=cfg.force_python,
            instruments=instruments,
            layout=cfg.layout,
        )
        self.certified_lanes = sum(
            shard.certified_lanes for shard in self.shards
        )
        self.loadgen = ZipfLoadGenerator(
            self.sender_entries,
            self.sender_trie,
            cfg.load_profile(),
            seed=cfg.seed + 2,
            width=cfg.width,
        )
        self._use_numpy = (
            get_numpy() is not None
            and not cfg.force_python
            and numpy_eligible(cfg.width)
        )

    # ------------------------------------------------------------------
    def run(self, clock: Clock = None) -> ServeReport:
        """Replay one full workload; returns the ``BENCH_serve`` report."""
        cfg = self.config
        workload = self.loadgen.generate(cfg.requests)
        values, lens, offsets = workload.values, workload.clue_lens, workload.offsets
        if not self._use_numpy and not isinstance(values, list):
            values = values.tolist()
            lens = lens.tolist()
            offsets = offsets.tolist()
        start = clock() if clock is not None else None
        shard_ids = route_batch(
            self.plan, values, force_python=not self._use_numpy
        )
        nshards = self.plan.shards
        batchers = [
            RequestBatcher(cfg.batch_policy()) for _ in range(nshards)
        ]
        # Ingress backlog for block policy: refused requests wait here
        # (with their original arrival tick) until the queue has room.
        backlog_v: List[List[int]] = [[] for _ in range(nshards)]
        backlog_l: List[List[int]] = [[] for _ in range(nshards)]
        backlog_t: List[List[int]] = [[] for _ in range(nshards)]
        shed_seen = [0] * nshards
        latency: Dict[int, int] = {}
        completed = 0
        batches = 0
        offered = len(values)
        arrival_ticks = workload.ticks
        # Drain bound: once arrivals stop, a non-empty queue flushes a
        # batch within max_wait ticks and a full queue releases at least
        # one max_batch per tick, so the loop provably terminates well
        # inside this cap; overrunning it means a batching bug.
        cap = arrival_ticks + cfg.max_wait + offered // cfg.max_batch + 16
        ticks_run = 0
        for now in range(cap):
            arriving = now < arrival_ticks
            if not arriving and self._idle(batchers, backlog_v):
                break
            ticks_run = now + 1
            for s in range(nshards):
                pending = backlog_v[s]
                if pending:
                    taken = batchers[s].offer(
                        pending, backlog_l[s], now, arrivals=backlog_t[s]
                    )
                    if taken:
                        del pending[:taken]
                        del backlog_l[s][:taken]
                        del backlog_t[s][:taken]
            if arriving:
                lo = int(offsets[now])
                hi = int(offsets[now + 1])
                if hi > lo:
                    self._dispatch(
                        batchers,
                        backlog_v,
                        backlog_l,
                        backlog_t,
                        shard_ids,
                        values,
                        lens,
                        lo,
                        hi,
                        now,
                    )
            for s in range(nshards):
                batcher = batchers[s]
                shard = self.shards[s]
                batch = batcher.take_batch(now)
                while batch is not None:
                    completed += self._process(shard, batch, now, latency)
                    batches += 1
                    batch = batcher.take_batch(now)
                metrics = shard.metrics
                if metrics is not None:
                    metrics.queue_depth.set(batcher.depth)
                    delta = batcher.shed - shed_seen[s]
                    if delta:
                        metrics.shed.inc(delta)
                        shed_seen[s] = batcher.shed
        else:
            raise RuntimeError(
                "serving loop failed to drain within %d ticks" % cap
            )
        elapsed = clock() - start if clock is not None else None
        shed_total = sum(batcher.shed for batcher in batchers)
        audit = self._audit(workload)
        payload: Dict[str, object] = {
            "bench": "serve",
            "config": cfg.as_dict(),
            "partition": cfg.partition,
            "seed": cfg.seed,
            "width": cfg.width,
            "backend": "numpy" if self._use_numpy else "python",
            "workload": {
                "requests": offered,
                "arrival_ticks": arrival_ticks,
                "burst_ticks": workload.burst_ticks,
            },
            "shards": [
                {
                    "shard_id": shard.shard_id,
                    "prefixes": len(shard.entries),
                    "clues": len(shard.clue_universe),
                    "requests": shard.requests,
                    "batches": shard.batches,
                    "shed": batcher.shed,
                    "certified_lanes": shard.certified_lanes,
                }
                for shard, batcher in zip(self.shards, batchers)
            ],
            "totals": {
                "offered": offered,
                "completed": completed,
                "shed": shed_total,
                "batches": batches,
                "ticks": ticks_run,
                "elapsed_s": elapsed,
                "sustained_pps": (
                    completed / elapsed if elapsed else None
                ),
            },
            "latency": latency_summary(latency),
            "audit": audit,
            "certification": {
                "lanes": self.certified_lanes,
                "disagreements": 0,
            },
        }
        return ServeReport(payload)

    # ------------------------------------------------------------------
    @staticmethod
    def _idle(batchers: List[RequestBatcher], backlog_v: List[list]) -> bool:
        for batcher in batchers:
            if len(batcher):
                return False
        for pending in backlog_v:
            if pending:
                return False
        return True

    def _dispatch(
        self,
        batchers,
        backlog_v,
        backlog_l,
        backlog_t,
        shard_ids,
        values,
        lens,
        lo: int,
        hi: int,
        now: int,
    ) -> None:
        """Split one tick's arrival slice by owning shard and offer it."""
        nshards = self.plan.shards
        if self._use_numpy:
            seg_ids = shard_ids[lo:hi]
            seg_vals = values[lo:hi]
            seg_lens = lens[lo:hi]
            for s in range(nshards):
                mask = seg_ids == s
                if not mask.any():
                    continue
                self._admit(
                    batchers[s],
                    backlog_v[s],
                    backlog_l[s],
                    backlog_t[s],
                    seg_vals[mask].tolist(),
                    seg_lens[mask].tolist(),
                    now,
                )
            return
        per_vals: List[List[int]] = [[] for _ in range(nshards)]
        per_lens: List[List[int]] = [[] for _ in range(nshards)]
        for index in range(lo, hi):
            s = shard_ids[index]
            per_vals[s].append(values[index])
            per_lens[s].append(lens[index])
        for s in range(nshards):
            if per_vals[s]:
                self._admit(
                    batchers[s],
                    backlog_v[s],
                    backlog_l[s],
                    backlog_t[s],
                    per_vals[s],
                    per_lens[s],
                    now,
                )

    @staticmethod
    def _admit(batcher, backlog_v, backlog_l, backlog_t, vals, lens_, now):
        """Offer new arrivals; under block policy, hold the refused tail."""
        taken = batcher.offer(vals, lens_, now)
        refused = len(vals) - taken
        if refused > 0 and batcher.policy.policy == "block":
            backlog_v.extend(vals[taken:])
            backlog_l.extend(lens_[taken:])
            backlog_t.extend([now] * refused)

    def _process(
        self, shard: Shard, batch, now: int, latency: Dict[int, int]
    ) -> int:
        """One kernel call for one coalesced batch; tallies exact latency."""
        vals, lens_, ticks_ = batch
        dsts = as_destination_array(vals, self.config.width)
        clue_lens = as_length_array(lens_, self.config.width)
        shard.process(dsts, clue_lens)
        for arrived in ticks_:
            waited = now - arrived
            latency[waited] = latency.get(waited, 0) + 1
        return len(vals)

    # ------------------------------------------------------------------
    def _audit(self, workload: Workload) -> Dict[str, object]:
        """Differential audit: sharded path vs full-table scalar vs LPM.

        A seeded sample of the live workload is replayed through the
        *batched shard kernels* (grouped per shard, bypassing the
        telemetry counters so the audit does not inflate the serving
        numbers) and every decoded ``(prefix, next_hop)`` must equal
        both the full-table scalar clue lookup and the receiver's own
        longest-prefix match — never-wrong forwarding, end to end.
        """
        cfg = self.config
        total = len(workload)
        samples = min(cfg.audit_samples, total)
        if samples == 0:
            return {"checked": 0, "disagreements": 0, "details": []}
        rng = random.Random(cfg.seed + 3)
        state = ReceiverState(self.receiver_entries, cfg.width)
        if cfg.method == "advance":
            builder = AdvanceMethod(self.sender_trie, state, "regular")
        else:
            builder = SimpleMethod(state, "regular")
        table = builder.build_table(list(self.sender_trie.prefixes()))
        reference = ClueAssistedLookup(
            RegularTrieLookup(self.receiver_entries, cfg.width), table
        )
        oracle = RegularTrieLookup(self.receiver_entries, cfg.width)
        values, lens = workload.values, workload.clue_lens
        per_vals: List[List[int]] = [[] for _ in range(self.plan.shards)]
        per_lens: List[List[int]] = [[] for _ in range(self.plan.shards)]
        for _ in range(samples):
            index = rng.randrange(total)
            value = int(values[index])
            per_vals[self.plan.shard_of(value)].append(value)
            per_lens[self.plan.shard_of(value)].append(int(lens[index]))
        checked = 0
        disagreements = 0
        details: List[Dict[str, object]] = []
        for s, shard in enumerate(self.shards):
            if not per_vals[s]:
                continue
            dsts = as_destination_array(per_vals[s], cfg.width)
            clue_lens = as_length_array(per_lens[s], cfg.width)
            _methods, codes, _new, _refs = lookup_batch(
                shard.ctable, dsts, clue_lens, force_python=cfg.force_python
            )
            for lane in range(len(per_vals[s])):
                value = per_vals[s][lane]
                clen = per_lens[s][lane]
                address = Address(value, cfg.width)
                clue = address.prefix(clen) if clen >= 0 else None
                got = shard.decode(int(codes[lane]))
                ref = reference.lookup(address, clue)
                want = (ref.prefix, ref.next_hop)
                lpm = oracle.lookup(address)
                oracle_hop = lpm.next_hop
                checked += 1
                if got != want or got[1] != oracle_hop:
                    disagreements += 1
                    if len(details) < 5:
                        details.append(
                            {
                                "shard": s,
                                "destination": value,
                                "clue_len": clen,
                                "got": repr(got),
                                "scalar": repr(want),
                                "oracle_next_hop": repr(oracle_hop),
                            }
                        )
        return {
            "checked": checked,
            "disagreements": disagreements,
            "details": details,
        }
