"""Seeded, replayable traffic: Zipf destination popularity, bursty arrivals.

Production lookup traffic is nothing like the §6 uniform destination
sample: a few destinations dominate (heavy-tail popularity) and packets
arrive in bursts, not a smooth stream.  The generator models both with
two seeded knobs:

* **Popularity** — a universe of ``profile.universe`` concrete
  destination addresses is sampled under the sender's prefixes, then
  rank *r* receives weight ``(r + 1) ** -zipf_alpha``; draws invert the
  cumulative distribution, so ``zipf_alpha = 0`` degenerates to the
  paper's uniform sampling and ``~1.1`` gives classic Zipf skew.
* **Burstiness** — a two-state (calm/burst) arrival process: each tick
  draws a Poisson arrival count around ``rate`` (times ``burst_boost``
  while bursting); bursts start with probability ``burst_prob`` per calm
  tick and end with probability ``1 / burst_mean`` per burst tick.

Every request carries the clue a well-formed upstream would stamp: the
sender trie's BMP length for its destination, precomputed once per
universe entry and gathered per request.

The whole workload — destination values, clue lengths, per-tick arrival
offsets — is materialized up front as flat arrays (numpy when available,
lists otherwise), so generating millions of requests costs a handful of
vectorized draws, and two generators with the same seed and profile
produce bit-identical workloads.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List, Optional

from repro.addressing import Address
from repro.experiments.fastbench import sample_destination_values
from repro.fastpath.backend import get_numpy, numpy_eligible


class LoadProfile:
    """Traffic-shape knobs (all deterministic given the seed)."""

    __slots__ = (
        "zipf_alpha",
        "universe",
        "rate",
        "burst_prob",
        "burst_mean",
        "burst_boost",
    )

    def __init__(
        self,
        zipf_alpha: float = 1.1,
        universe: int = 4096,
        rate: float = 512.0,
        burst_prob: float = 0.05,
        burst_mean: float = 8.0,
        burst_boost: float = 4.0,
    ):
        if zipf_alpha < 0:
            raise ValueError("zipf_alpha must be >= 0")
        if universe < 1:
            raise ValueError("universe must be >= 1")
        if rate <= 0:
            raise ValueError("rate must be > 0 arrivals/tick")
        if not 0.0 <= burst_prob <= 1.0:
            raise ValueError("burst_prob must be within [0, 1]")
        if burst_mean < 1.0:
            raise ValueError("burst_mean must be >= 1 tick")
        if burst_boost < 1.0:
            raise ValueError("burst_boost must be >= 1")
        self.zipf_alpha = zipf_alpha
        self.universe = universe
        self.rate = rate
        self.burst_prob = burst_prob
        self.burst_mean = burst_mean
        self.burst_boost = burst_boost

    def __repr__(self) -> str:
        return (
            "LoadProfile(zipf_alpha=%g, universe=%d, rate=%g, "
            "burst_prob=%g, burst_mean=%g, burst_boost=%g)"
            % (
                self.zipf_alpha,
                self.universe,
                self.rate,
                self.burst_prob,
                self.burst_mean,
                self.burst_boost,
            )
        )


class Workload:
    """A materialized run: flat request arrays plus per-tick offsets.

    Requests ``offsets[t]:offsets[t + 1]`` arrive on tick ``t``; the
    arrays are numpy when the backend allows, plain lists otherwise
    (the kernels accept either — same contract as
    ``as_destination_array``).
    """

    __slots__ = ("values", "clue_lens", "offsets", "burst_ticks")

    def __init__(self, values, clue_lens, offsets, burst_ticks: int):
        self.values = values
        self.clue_lens = clue_lens
        self.offsets = offsets
        #: Ticks spent in the burst state (workload-shape diagnostics).
        self.burst_ticks = burst_ticks

    def __len__(self) -> int:
        return len(self.values)

    @property
    def ticks(self) -> int:
        """Number of arrival ticks in the run."""
        return len(self.offsets) - 1

    def __repr__(self) -> str:
        return "Workload(requests=%d, ticks=%d, burst_ticks=%d)" % (
            len(self.values),
            self.ticks,
            self.burst_ticks,
        )


class ZipfLoadGenerator:
    """Seeded heavy-tail request stream over a sender-derived universe."""

    def __init__(
        self,
        sender_entries,
        sender_trie,
        profile: Optional[LoadProfile] = None,
        seed: int = 0,
        width: int = 32,
    ):
        self.profile = profile if profile is not None else LoadProfile()
        self.seed = seed
        self.width = width
        self.universe_values = sample_destination_values(
            sender_entries, self.profile.universe, seed=seed, width=width
        )
        #: The clue a well-formed upstream stamps per universe entry:
        #: its sender-BMP length (−1 if the sender has no match).
        self.universe_lens: List[int] = []
        for value in self.universe_values:
            bmp = sender_trie.best_prefix(Address(value, width))
            self.universe_lens.append(bmp.length if bmp is not None else -1)
        # Zipf CDF over popularity ranks (rank = universe position; the
        # universe sample is already seed-shuffled across the space).
        alpha = self.profile.zipf_alpha
        weights = [
            (rank + 1) ** -alpha for rank in range(self.profile.universe)
        ]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight
            cumulative.append(running / total)
        cumulative[-1] = 1.0
        self._cdf = cumulative

    # ------------------------------------------------------------------
    def _arrival_counts(self, total: int, rng) -> "tuple[list, int]":
        """Per-tick arrival counts summing to exactly ``total``."""
        profile = self.profile
        counts: List[int] = []
        produced = 0
        bursting = False
        burst_ticks = 0
        end_prob = 1.0 / profile.burst_mean
        while produced < total:
            if bursting:
                burst_ticks += 1
                if rng.random() < end_prob:
                    bursting = False
            elif rng.random() < profile.burst_prob:
                bursting = True
            rate = profile.rate * (profile.burst_boost if bursting else 1.0)
            count = _poisson(rng, rate)
            if produced + count > total:
                count = total - produced
            produced += count
            counts.append(count)
        return counts, burst_ticks

    def generate(self, total: int) -> Workload:
        """Materialize ``total`` requests; same seed ⇒ identical workload."""
        if total < 1:
            raise ValueError("total must be >= 1, got %d" % total)
        np = get_numpy()
        if np is not None and numpy_eligible(self.width):
            rng = np.random.default_rng(self.seed + 1)
            counts, burst_ticks = self._arrival_counts(
                total, _NumpyUniform(rng)
            )
            draws = rng.random(total)
            cdf = np.asarray(self._cdf)
            picks = np.minimum(
                np.searchsorted(cdf, draws, side="right"), len(cdf) - 1
            )
            uni_values = np.asarray(self.universe_values, dtype=np.int64)
            uni_lens = np.asarray(self.universe_lens, dtype=np.int64)
            values = uni_values[picks]
            clue_lens = uni_lens[picks]
            offsets = np.zeros(len(counts) + 1, dtype=np.int64)
            np.cumsum(np.asarray(counts, dtype=np.int64), out=offsets[1:])
            return Workload(values, clue_lens, offsets, burst_ticks)
        rng = random.Random(self.seed + 1)
        counts, burst_ticks = self._arrival_counts(total, rng)
        cdf = self._cdf
        top = len(cdf) - 1
        values: List[int] = []
        clue_lens: List[int] = []
        for _ in range(total):
            pick = bisect_left(cdf, rng.random())
            if pick > top:
                pick = top
            values.append(self.universe_values[pick])
            clue_lens.append(self.universe_lens[pick])
        offsets = [0]
        for count in counts:
            offsets.append(offsets[-1] + count)
        return Workload(values, clue_lens, offsets, burst_ticks)


class _NumpyUniform:
    """Adapter giving ``numpy.random.Generator`` the ``random.Random``
    scalar surface the arrival loop uses (``random()`` and Poisson)."""

    __slots__ = ("_rng",)

    def __init__(self, rng):
        self._rng = rng

    def random(self) -> float:
        return float(self._rng.random())

    def poisson(self, rate: float) -> int:
        return int(self._rng.poisson(rate))


def _poisson(rng, rate: float) -> int:
    """A Poisson-ish arrival count from whichever RNG we were handed.

    numpy draws real Poisson counts; the stdlib fallback uses the
    integer part plus a Bernoulli fraction — deterministic, mean-exact,
    and close enough for a load model that only needs burst structure.
    """
    draw = getattr(rng, "poisson", None)
    if draw is not None:
        return int(draw(rate))
    base = int(rate)
    frac = rate - base
    if frac > 0.0 and rng.random() < frac:
        base += 1
    return base
