"""Make the package executable: ``python -m repro`` == ``repro-clue``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
