"""Routing with a Clue — a full reproduction of the SIGCOMM 1999 paper.

Distributed IP lookup: each router stamps a 5-bit *clue* (the length of
the best matching prefix it found) onto every packet; the next router
uses the clue to resolve the packet in about one memory reference instead
of repeating the longest-prefix match from scratch.

Public API tour:

>>> from repro import (
...     Prefix, Address,
...     ReceiverState, SimpleMethod, AdvanceMethod, ClueAssistedLookup,
... )
>>> table2 = [(Prefix.parse("10.0.0.0/8"), "a"),
...           (Prefix.parse("10.1.0.0/16"), "b")]
>>> table1 = [(Prefix.parse("10.0.0.0/8"), "x")]
>>> from repro.trie import BinaryTrie
>>> from repro.lookup import PatriciaLookup, MemoryCounter
>>> receiver = ReceiverState(table2)
>>> method = AdvanceMethod(BinaryTrie.from_prefixes(table1), receiver)
>>> lookup = ClueAssistedLookup(PatriciaLookup(table2), method.build_table())
>>> dest = Address.parse("10.1.2.3")
>>> result = lookup.lookup(dest, clue=dest.prefix(8))
>>> str(result.prefix)
'10.1.0.0/16'

Sub-packages: :mod:`repro.addressing` (prefixes), :mod:`repro.trie`
(binary/Patricia tries + Claim 1 overlays), :mod:`repro.lookup` (the five
LPM baselines), :mod:`repro.core` (the clue scheme itself),
:mod:`repro.tablegen` (synthetic neighbouring tables),
:mod:`repro.routing` (path-vector / link-state substrates),
:mod:`repro.netsim` (multi-hop simulation, MPLS, deployment studies),
:mod:`repro.experiments` (the paper's evaluation harness),
:mod:`repro.serve` (the sharded serving plane over the compiled
fast path), :mod:`repro.resilience` (fault-tolerant serving:
replicated certified slices, failover, deadlines/retries/hedging,
and the chaos benchmark) and :mod:`repro.control` (the link-state
IGP whose SPF routes feed the clue data path live).
"""

from repro.addressing import Address, Prefix
from repro.control import (
    ControlEngine,
    ControlPlane,
    ControlProcess,
    ControlReport,
    build_control_scenario,
)
from repro.core import (
    AdvanceMethod,
    ClueAssistedLookup,
    ClueEntry,
    ClueHeader,
    ClueTable,
    IndexedClueLookup,
    LearningClueLookup,
    ReceiverState,
    SimpleMethod,
)
from repro.lookup import (
    BASELINES,
    BinaryRangeLookup,
    LogWLookup,
    LookupResult,
    MemoryCounter,
    MultiwayRangeLookup,
    PatriciaLookup,
    RegularTrieLookup,
)
from repro.resilience import (
    ChaosEngine,
    ReplicaPlan,
    ResilienceConfig,
    ResilienceReport,
    ShardHealth,
    ShardHealthPolicy,
)
from repro.serve import (
    ServeConfig,
    ServeEngine,
    ServeReport,
    ShardPlan,
    ZipfLoadGenerator,
)
from repro.trie import BinaryTrie, PatriciaTrie, TrieOverlay

__version__ = "1.0.0"

__all__ = [
    "Address",
    "AdvanceMethod",
    "BASELINES",
    "BinaryRangeLookup",
    "BinaryTrie",
    "ChaosEngine",
    "ClueAssistedLookup",
    "ClueEntry",
    "ClueHeader",
    "ClueTable",
    "ControlEngine",
    "ControlPlane",
    "ControlProcess",
    "ControlReport",
    "IndexedClueLookup",
    "LearningClueLookup",
    "LogWLookup",
    "LookupResult",
    "MemoryCounter",
    "MultiwayRangeLookup",
    "PatriciaLookup",
    "PatriciaTrie",
    "Prefix",
    "ReceiverState",
    "RegularTrieLookup",
    "ReplicaPlan",
    "ResilienceConfig",
    "ResilienceReport",
    "ServeConfig",
    "ServeEngine",
    "ServeReport",
    "ShardHealth",
    "ShardHealthPolicy",
    "ShardPlan",
    "SimpleMethod",
    "TrieOverlay",
    "ZipfLoadGenerator",
    "__version__",
    "build_control_scenario",
]
