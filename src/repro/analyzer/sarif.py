"""SARIF 2.1.0 output for ``repro-clue lint --format sarif``.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning UIs ingest: one ``run`` with the tool's rule
catalogue in ``tool.driver.rules`` and one ``result`` per finding,
each carrying a ``physicalLocation`` and a stable
``partialFingerprints`` entry (the same line-independent fingerprint
the baseline uses, so a SARIF consumer's dedup matches ours).

Only *new* findings — those above the committed baseline — become
results, mirroring the text/json reporters: SARIF is the CI surface,
and CI gates on new findings.  Informational rules and unused
suppressions map to ``note`` level, gating rules to ``error``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analyzer.engine import AnalysisResult, Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: partialFingerprints key (versioned per SARIF convention).
FINGERPRINT_KEY = "reproFingerprint/v1"


def _rule_descriptor(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.name.replace("-", " ")},
        "fullDescription": {"text": rule.rationale or rule.name},
        "defaultConfiguration": {
            "level": "note" if rule.informational else "error"
        },
    }


def _result(
    finding: Finding, level: str, rule_index: Dict[str, int]
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "ruleId": finding.code,
        "level": level,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint()},
    }
    index = rule_index.get(finding.code)
    if index is not None:
        payload["ruleIndex"] = index
    return payload


def render_sarif(
    result: AnalysisResult,
    new_findings: Sequence[Finding],
    stale: Sequence[str],
    rules: Sequence[Rule],
) -> str:
    """One SARIF 2.1.0 log: same signature as the sibling reporters."""
    informational = {
        rule.code for rule in rules if rule.informational
    }
    descriptors: List[Dict[str, Any]] = [
        _rule_descriptor(rule)
        for rule in sorted(rules, key=lambda rule: rule.code)
    ]
    rule_index = {
        descriptor["id"]: position
        for position, descriptor in enumerate(descriptors)
    }
    results: List[Dict[str, Any]] = []
    for finding in new_findings:
        level = "note" if finding.code in informational else "error"
        results.append(_result(finding, level, rule_index))
    for finding in result.unused_suppressions:
        results.append(_result(finding, "note", rule_index))
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-clue-lint",
                        "version": "1.0.0",
                        "rules": descriptors,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "originalUriBaseIds": {
                    "%SRCROOT%": {"uri": "file:///"}
                },
                "properties": {
                    "files": result.files,
                    "baselined": len(result.findings)
                    - len(list(new_findings)),
                    "staleBaselineEntries": len(list(stale)),
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
