"""The AST-walking rule engine behind ``repro-clue lint``.

The repo's correctness story rests on hand-maintained invariants — the
one-memory-reference hot path, seeded-RNG discipline, the canonical
telemetry catalogue, the never-wrong-forwarding oracles.  This engine
makes them machine-checked: it parses every file once, hands the parse
to a registry of :class:`Rule` objects, and reconciles their findings
against per-line suppressions and a committed baseline so legacy debt
never blocks CI while *new* violations always do.

Vocabulary:

* :class:`SourceFile` — one parsed file: path, text, AST, and the
  ``# repro: noqa[RULE]`` suppressions found on its lines;
* :class:`Rule` — a check; per-file rules implement :meth:`Rule
  .check_file`, cross-file rules implement :meth:`Rule.finish` over the
  whole :class:`Project`;
* :class:`Finding` — one violation, addressable as ``path:line:col``;
* baseline — a JSON map of finding fingerprints to counts; only
  findings *above* the baseline fail the run (and stale baseline
  entries are reported so the file shrinks over time).

Suppression syntax (the reason clause is required — an unexplained
suppression is itself a finding)::

    while True:  # repro: noqa[RC106] -- descends a finite trie

Multiple codes: ``# repro: noqa[RC101,RC103] -- reason``.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

#: Engine-owned finding code for files the parser rejects.
PARSE_ERROR_CODE = "RC100"

#: The ``repro: noqa[CODES]`` comment, with an optional ``-- reason``
#: clause (see the module docstring for spelled-out examples).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[A-Z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


class Finding:
    """One rule violation at a source location."""

    __slots__ = ("code", "path", "line", "col", "message", "rule_name")

    def __init__(
        self,
        code: str,
        path: str,
        line: int,
        col: int,
        message: str,
        rule_name: str = "",
    ):
        self.code = code
        self.path = path
        self.line = line
        self.col = col
        self.message = message
        self.rule_name = rule_name

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline.

        Leaving the line out keeps baselines stable across unrelated
        edits above a legacy finding; duplicates are handled by count.
        """
        return "%s|%s|%s" % (self.code, self.path, self.message)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "rule": self.rule_name,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`as_dict` (used by the incremental store)."""
        return cls(
            str(payload["code"]),
            str(payload["path"]),
            int(payload["line"]),  # type: ignore[arg-type]
            int(payload["col"]),  # type: ignore[arg-type]
            str(payload["message"]),
            str(payload.get("rule", "")),
        )

    def __repr__(self) -> str:
        return "Finding(%s %s:%d:%d %s)" % (
            self.code, self.path, self.line, self.col, self.message,
        )


class Suppression:
    """One parsed ``# repro: noqa[...]`` comment.

    A trailing comment suppresses findings on its own line; a
    *standalone* comment line suppresses findings on the next line
    (room for a full reason without overlong lines).
    """

    __slots__ = ("line", "codes", "reason", "standalone", "used")

    def __init__(
        self,
        line: int,
        codes: Set[str],
        reason: Optional[str],
        standalone: bool = False,
    ):
        self.line = line
        self.codes = codes
        self.reason = reason
        self.standalone = standalone
        self.used = False

    def matches(self, finding: Finding) -> bool:
        if finding.code not in self.codes:
            return False
        if finding.line == self.line:
            return True
        return self.standalone and finding.line == self.line + 1


class SourceFile:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as error:
            self.parse_error = error
        self.suppressions = self._parse_suppressions()

    def _parse_suppressions(self) -> List[Suppression]:
        """Suppressions from real ``#`` comments only — tokenizing keeps
        doc examples mentioning the syntax from suppressing anything."""
        found: List[Suppression] = []
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.text).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return found
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            codes = {
                code.strip()
                for code in match.group("codes").split(",")
                if code.strip()
            }
            number = token.start[0]
            standalone = (
                number <= len(self.lines)
                and self.lines[number - 1].lstrip().startswith("#")
            )
            found.append(
                Suppression(
                    number, codes, match.group("reason"), standalone
                )
            )
        return found

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        """Convenience: a finding of ``rule`` anchored at ``node``."""
        return Finding(
            rule.code,
            self.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            message,
            rule.name,
        )

    def line_finding(self, rule: "Rule", line: int, message: str) -> Finding:
        return Finding(rule.code, self.path, line, 1, message, rule.name)

    def __repr__(self) -> str:
        return "SourceFile(%r, %d lines)" % (self.path, len(self.lines))


class Project:
    """Every file of one analysis run (the cross-file rules' view).

    Cross-file rules see two representations: the parsed
    :class:`SourceFile` objects, and — for the whole-program layer —
    per-file :class:`~repro.analyzer.graph.summary.ModuleSummary`
    digests plus the call graph resolved over them.  The incremental
    driver constructs a Project holding only the *re-parsed* files and
    attaches cached summaries for the rest, so summary-based rules run
    identically on cold and warm paths.
    """

    def __init__(
        self,
        files: Sequence[SourceFile],
        summaries: Optional[Dict[str, object]] = None,
    ):
        self.files = list(files)
        self._attached_summaries = dict(summaries) if summaries else {}
        self._summaries: Optional[Dict[str, object]] = None
        self._graph = None

    def summaries(self) -> Dict[str, object]:
        """``path → ModuleSummary`` over every file of the run."""
        if self._summaries is None:
            from repro.analyzer.graph.summary import summarize_source

            merged = dict(self._attached_summaries)
            for source in self.files:
                if source.path not in merged and source.tree is not None:
                    merged[source.path] = summarize_source(source)
            self._summaries = merged
        return self._summaries

    def graph(self):
        """The whole-program call graph (built once per run)."""
        if self._graph is None:
            from repro.analyzer.graph.callgraph import build_call_graph

            self._graph = build_call_graph(self.summaries())
        return self._graph

    def find(self, suffix: str) -> Optional[SourceFile]:
        """The file whose (posix) path ends with ``suffix``, if any."""
        normalized = suffix.replace(os.sep, "/")
        for source in self.files:
            if source.path.replace(os.sep, "/").endswith(normalized):
                return source
        return None

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)

    def __len__(self) -> int:
        return len(self.files)


class Rule:
    """Base class for analyzer rules.

    Subclasses set ``code`` (``RCnnn``), ``name`` (kebab-case slug),
    ``rationale`` (which invariant / past regression motivates it), and
    override :meth:`check_file` and/or :meth:`finish`.  Rules marked
    ``informational`` report but never fail the run.
    """

    code: str = "RC000"
    name: str = "abstract"
    rationale: str = ""
    informational: bool = False
    #: True for rules whose findings derive from the call graph
    #: (RC113–RC116): their per-file findings are cached by the
    #: incremental store under a *neighborhood* signature, and their
    #: ``finish`` pass is skipped entirely on fully-warm runs.
    graph_scoped: bool = False

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        """Per-file findings; ``source.tree`` is never None here."""
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        """Cross-file findings, after every file was parsed."""
        return ()

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.code)


#: The global rule registry, populated by the ``@register`` decorator
#: at :mod:`repro.analyzer.rules` import time.
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default set (unique codes)."""
    existing = _REGISTRY.get(rule_class.code)
    if existing is not None and existing is not rule_class:
        raise ValueError(
            "rule code %s already registered by %s"
            % (rule_class.code, existing.__name__)
        )
    _REGISTRY[rule_class.code] = rule_class
    return rule_class


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by code."""
    # Importing the rules package populates the registry on first use.
    from repro.analyzer import rules as _rules  # noqa: F401

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


class AnalysisResult:
    """Everything one run produced, pre-baseline."""

    def __init__(
        self,
        findings: List[Finding],
        files: int,
        unused_suppressions: List[Finding],
    ):
        #: Every surviving (non-suppressed) finding, sorted by location.
        self.findings = findings
        self.files = files
        #: Suppressions that matched nothing (dead noqa comments) —
        #: reported so stale suppressions get cleaned up.
        self.unused_suppressions = unused_suppressions

    def by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def __repr__(self) -> str:
        return "AnalysisResult(%d findings over %d files)" % (
            len(self.findings), self.files,
        )


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError("no such file or directory: %s" % path)
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                name for name in dirs
                if name not in ("__pycache__", ".git")
            )
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(root, name)
                if full not in seen:
                    seen.add(full)
                    yield full


def load_files(paths: Sequence[str]) -> List[SourceFile]:
    """Read and parse every python file under ``paths``."""
    files: List[SourceFile] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            text = handle.read()
        files.append(SourceFile(_normalize(filename), text))
    return files


def _normalize(path: str) -> str:
    return os.path.relpath(path).replace(os.sep, "/")


def analyze(
    files: Sequence[SourceFile],
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisResult:
    """Run ``rules`` (default: all registered) over parsed ``files``."""
    active = list(rules) if rules is not None else default_rules()
    raw: List[Finding] = []
    parsed: List[SourceFile] = []
    for source in files:
        if source.parse_error is not None:
            error = source.parse_error
            raw.append(
                Finding(
                    PARSE_ERROR_CODE,
                    source.path,
                    error.lineno or 1,
                    (error.offset or 0) + 1,
                    "syntax error: %s" % error.msg,
                    "parse-error",
                )
            )
            continue
        parsed.append(source)
        for rule in active:
            raw.extend(rule.check_file(source))
    project = Project(parsed)
    for rule in active:
        raw.extend(rule.finish(project))

    suppressions_by_path = {
        source.path: source.suppressions for source in files
    }
    return reconcile(raw, suppressions_by_path, len(files))


def reconcile(
    raw: Sequence[Finding],
    suppressions_by_path: Dict[str, List[Suppression]],
    file_count: int,
) -> AnalysisResult:
    """Match findings against suppressions and report the leftovers.

    Shared by :func:`analyze` (fresh suppression tables) and the
    incremental driver (suppression tables rebuilt from the cache).
    """
    for suppressions in suppressions_by_path.values():
        for suppression in suppressions:
            suppression.used = False
    surviving: List[Finding] = []
    for finding in raw:
        suppressed = False
        for suppression in suppressions_by_path.get(finding.path, ()):
            if suppression.matches(finding):
                suppression.used = True
                suppressed = True
        if not suppressed:
            surviving.append(finding)

    unused: List[Finding] = []
    for path in suppressions_by_path:
        for suppression in suppressions_by_path[path]:
            if not suppression.used:
                unused.append(
                    Finding(
                        "RC199",
                        path,
                        suppression.line,
                        1,
                        "unused suppression for %s"
                        % ",".join(sorted(suppression.codes)),
                        "unused-noqa",
                    )
                )
            elif suppression.reason is None:
                surviving.append(
                    Finding(
                        "RC198",
                        path,
                        suppression.line,
                        1,
                        "suppression of %s gives no reason "
                        "(append ' -- why it is safe')"
                        % ",".join(sorted(suppression.codes)),
                        "unexplained-noqa",
                    )
                )
    surviving.sort(key=Finding.sort_key)
    unused.sort(key=Finding.sort_key)
    return AnalysisResult(surviving, file_count, unused)


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisResult:
    """Load, parse, and analyze every python file under ``paths``."""
    return analyze(load_files(paths), rules)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
BASELINE_VERSION = 1


def load_baseline(path: str) -> Dict[str, int]:
    """The committed fingerprint→count map; {} when the file is absent."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError("malformed baseline file: %s" % path)
    findings = payload["findings"]
    if not isinstance(findings, dict):
        raise ValueError("malformed baseline 'findings' in %s" % path)
    return {str(key): int(value) for key, value in findings.items()}


def write_baseline(findings: Sequence[Finding], path: str) -> Dict[str, int]:
    """Persist the fingerprints of ``findings`` as the new baseline."""
    counts: Dict[str, int] = {}
    for finding in findings:
        key = finding.fingerprint()
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Known legacy findings tolerated by repro-clue lint; "
            "regenerate with 'repro-clue lint --write-baseline'."
        ),
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return counts


def diff_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[str]]:
    """``(new, stale)``: findings above the baseline, and baseline
    fingerprints the tree no longer produces (candidates for removal)."""
    remaining = dict(baseline)
    new: List[Finding] = []
    for finding in findings:
        key = finding.fingerprint()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return new, stale


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
def render_text(
    result: AnalysisResult,
    new_findings: Sequence[Finding],
    stale: Sequence[str],
    rules: Sequence[Rule],
) -> str:
    """The human reporter: one line per finding plus a summary."""
    gating = [f for f in new_findings if not _is_informational(f, rules)]
    info = [f for f in new_findings if _is_informational(f, rules)]
    lines: List[str] = []
    for finding in new_findings:
        tag = " (informational)" if _is_informational(finding, rules) else ""
        lines.append(
            "%s:%d:%d: %s %s [%s]%s"
            % (
                finding.path,
                finding.line,
                finding.col,
                finding.code,
                finding.message,
                finding.rule_name,
                tag,
            )
        )
    for finding in result.unused_suppressions:
        lines.append(
            "%s:%d:%d: %s %s [%s] (informational)"
            % (
                finding.path,
                finding.line,
                finding.col,
                finding.code,
                finding.message,
                finding.rule_name,
            )
        )
    for key in stale:
        lines.append("stale baseline entry: %s" % key)
    baselined = len(result.findings) - len(new_findings)
    lines.append(
        "%d files, %d findings (%d gating, %d informational, "
        "%d baselined, %d stale baseline entries)"
        % (
            result.files,
            len(result.findings),
            len(gating),
            len(info),
            baselined,
            len(stale),
        )
    )
    return "\n".join(lines)


def render_json_report(
    result: AnalysisResult,
    new_findings: Sequence[Finding],
    stale: Sequence[str],
    rules: Sequence[Rule],
) -> str:
    """The machine reporter (consumed by CI annotations/tooling)."""
    gating = [f for f in new_findings if not _is_informational(f, rules)]
    payload = {
        "files": result.files,
        "findings": [finding.as_dict() for finding in new_findings],
        "unused_suppressions": [
            finding.as_dict() for finding in result.unused_suppressions
        ],
        "stale_baseline": list(stale),
        "summary": {
            "total": len(result.findings),
            "gating": len(gating),
            "informational": len(new_findings) - len(gating),
            "baselined": len(result.findings) - len(new_findings),
            "by_code": result.by_code(),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _is_informational(finding: Finding, rules: Sequence[Rule]) -> bool:
    for rule in rules:
        if rule.code == finding.code:
            return rule.informational
    return finding.code == "RC199"


def gating_findings(
    new_findings: Sequence[Finding], rules: Sequence[Rule]
) -> List[Finding]:
    """The subset of ``new_findings`` that should fail the run."""
    return [f for f in new_findings if not _is_informational(f, rules)]
