"""repro.analyzer — AST static analysis enforcing the repo's invariants.

``repro-clue lint`` runs this engine over ``src/repro``.  The rules
(codes ``RC101``–``RC110``, engine codes ``RC100``/``RC198``/``RC199``)
encode the invariants PRs 1–3 maintained by hand: hot-path purity for
the one-memory-reference claim, seeded-RNG discipline, wall-clock-free
engines, the canonical telemetry catalogue, package ``__all__``
consistency, bounded loops, and library hygiene (no bare except, no
mutable defaults, no asserts, no stray TO-DO markers).

Typical use::

    from repro.analyzer import analyze_paths, default_rules
    result = analyze_paths(["src/repro"])
    for finding in result.findings:
        print(finding)

See :mod:`repro.analyzer.engine` for suppressions and the baseline
workflow, and DESIGN.md "Static analysis" for rule rationales.
"""

from repro.analyzer.engine import (
    PARSE_ERROR_CODE,
    AnalysisResult,
    Finding,
    Project,
    Rule,
    SourceFile,
    Suppression,
    analyze,
    analyze_paths,
    default_rules,
    diff_baseline,
    gating_findings,
    iter_python_files,
    load_baseline,
    load_files,
    register,
    render_json_report,
    render_text,
    write_baseline,
)

__all__ = [
    "AnalysisResult",
    "Finding",
    "PARSE_ERROR_CODE",
    "Project",
    "Rule",
    "SourceFile",
    "Suppression",
    "analyze",
    "analyze_paths",
    "default_rules",
    "diff_baseline",
    "gating_findings",
    "iter_python_files",
    "load_baseline",
    "load_files",
    "register",
    "render_json_report",
    "render_text",
    "write_baseline",
]
