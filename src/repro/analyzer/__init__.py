"""repro.analyzer — AST static analysis enforcing the repo's invariants.

``repro-clue lint`` runs this engine over ``src/repro``.  The per-file
rules (codes ``RC101``–``RC112``, engine codes ``RC100``/``RC198``/
``RC199``) encode the invariants PRs 1–3 maintained by hand: hot-path
purity for the one-memory-reference claim, seeded-RNG discipline,
wall-clock-free engines, the canonical telemetry catalogue, package
``__all__`` consistency, bounded loops and retries, and library
hygiene (no bare except, no mutable defaults, no asserts, no stray
TO-DO markers).  The interprocedural rules (``RC113``–``RC116``) lift
the hot-path, RNG, frozen-array, and bounded-loop contracts to the
whole-program call graph (:mod:`repro.analyzer.graph`): violations are
flagged wherever a privileged entry point can *reach* them, with the
concrete entry→sink witness path in the message.

``analyze_paths_incremental`` is the warm-cache driver behind
``repro-clue lint --incremental``; ``render_sarif`` the SARIF 2.1.0
reporter behind ``--format sarif``.

Typical use::

    from repro.analyzer import analyze_paths, default_rules
    result = analyze_paths(["src/repro"])
    for finding in result.findings:
        print(finding)

See :mod:`repro.analyzer.engine` for suppressions and the baseline
workflow, and DESIGN.md "Static analysis" for rule rationales.
"""

from repro.analyzer.engine import (
    PARSE_ERROR_CODE,
    AnalysisResult,
    Finding,
    Project,
    Rule,
    SourceFile,
    Suppression,
    analyze,
    analyze_paths,
    default_rules,
    diff_baseline,
    gating_findings,
    iter_python_files,
    load_baseline,
    load_files,
    register,
    render_json_report,
    render_text,
    write_baseline,
)
from repro.analyzer.incremental import (
    IncrementalResult,
    analyze_paths_incremental,
)
from repro.analyzer.sarif import render_sarif

__all__ = [
    "IncrementalResult",
    "AnalysisResult",
    "Finding",
    "PARSE_ERROR_CODE",
    "Project",
    "Rule",
    "SourceFile",
    "Suppression",
    "analyze",
    "analyze_paths",
    "analyze_paths_incremental",
    "default_rules",
    "diff_baseline",
    "gating_findings",
    "iter_python_files",
    "load_baseline",
    "load_files",
    "register",
    "render_json_report",
    "render_sarif",
    "render_text",
    "write_baseline",
]
