"""The hot-path purity walker shared by RC101 and RC113.

One function body, one verdict: which statements allocate, format, or
bind telemetry per packet?  RC101 applies the walker to functions the
author *declared* hot (``@hot_path``); RC113 applies it to every
function the call graph proves is *transitively reachable* from one.
Both rules must agree on what "impure" means or the closure rule would
re-litigate the per-file rule, so the definition lives here once.

The contract (see :mod:`repro.lookup.hotpath` for the rationale):

* no container literals or comprehensions, and no calls to the
  allocating builtins in :data:`FORBIDDEN_BUILTINS` — including the
  lazy ones (``map``/``filter``/``reversed``) whose iterator object is
  itself a per-packet allocation, and ``str()``/``bytes()``/
  ``bytearray()`` conversions;
* no string formatting (f-strings, ``literal % args``,
  ``str.format``) outside ``raise`` statements;
* no per-packet ``.labels(...)`` binding, and no tracer ``.record``
  outside an ``if ... .active`` sampling guard;
* no ``print`` and no nested ``def`` (built once per outer call).

Violations are yielded as ``(node, description)`` pairs; callers
prepend their own context ("hot path %r ..." for RC101, the offending
call path for RC113).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

#: Builtin calls forbidden on the hot path: each allocates a fresh
#: object per invocation.  ``str`` is the subtle one — ``str(x)`` on a
#: non-str builds a new string (and usually calls ``__str__``, which
#: formats); the PR 9 audit found it hiding in helpers that RC101's
#: per-file view could not see.
FORBIDDEN_BUILTINS = (
    "list",
    "dict",
    "set",
    "tuple",
    "sorted",
    "frozenset",
    "bytearray",
    "bytes",
    "map",
    "filter",
    "reversed",
    "str",
)

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

Violation = Tuple[ast.AST, str]


def _has_marker_decorator(node: ast.AST, marker: str) -> bool:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for dec in node.decorator_list:
        if isinstance(dec, ast.Name) and dec.id == marker:
            return True
        if isinstance(dec, ast.Attribute) and dec.attr == marker:
            return True
    return False


def is_hot_path_function(node: ast.AST) -> bool:
    """True for a ``def`` carrying the ``@hot_path`` marker."""
    return _has_marker_decorator(node, "hot_path")


def is_cold_path_function(node: ast.AST) -> bool:
    """True for a ``def`` carrying the ``@cold_path`` barrier marker."""
    return _has_marker_decorator(node, "cold_path")


def _is_str_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _mentions_active(node: ast.expr) -> bool:
    return any(
        isinstance(child, ast.Attribute) and child.attr == "active"
        for child in ast.walk(node)
    )


def _call_root_name(node: ast.expr) -> str:
    """The leftmost name of an attribute chain (``a.b.c`` → ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def function_violations(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Iterator[Violation]:
    """Every purity violation in ``func``'s body (decorators excluded)."""
    for statement in func.body:
        yield from _check_stmt(statement, guarded=False)


def _check_stmt(node: ast.AST, guarded: bool) -> Iterator[Violation]:
    """Walk one statement, tracking ``raise`` and sampling guards."""
    if isinstance(node, ast.Raise):
        # Error construction is off the happy path by definition.
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # A nested def is built once per outer call — that is already
        # a hot-path allocation; flag the def itself.
        yield node, "defines nested function %r per call" % node.name
        return
    if isinstance(node, ast.If):
        branch_guarded = guarded or _mentions_active(node.test)
        for child in node.body:
            yield from _check_stmt(child, branch_guarded)
        for child in node.orelse:
            yield from _check_stmt(child, guarded)
        yield from _check_expr(node.test, guarded)
        return
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            yield from _check_expr(child, guarded)
        else:
            yield from _check_stmt(child, guarded)


def _check_expr(node: ast.expr, guarded: bool) -> Iterator[Violation]:
    if isinstance(node, _COMPREHENSIONS):
        yield node, "allocates a comprehension"
    elif isinstance(node, (ast.List, ast.Set, ast.Dict)):
        yield node, "allocates a %s literal" % type(node).__name__.lower()
    elif isinstance(node, ast.JoinedStr):
        yield node, "formats an f-string"
    elif (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Mod)
        and _is_str_constant(node.left)
    ):
        yield node, "%-formats a string"
    elif isinstance(node, ast.Call):
        yield from _check_call(node, guarded)
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            yield from _check_expr(child, guarded)


def _check_call(node: ast.Call, guarded: bool) -> Iterator[Violation]:
    callee = node.func
    if isinstance(callee, ast.Name):
        if callee.id in FORBIDDEN_BUILTINS:
            yield node, (
                "calls %s() (per-packet allocation)" % callee.id
            )
        elif callee.id == "print":
            yield node, "calls print()"
    elif isinstance(callee, ast.Attribute):
        if callee.attr == "labels":
            yield node, (
                "binds metric labels per packet — pre-bind at setup "
                "(RouterInstruments)"
            )
        elif callee.attr == "format" and _is_str_constant(callee.value):
            yield node, "calls str.format()"
        elif (
            callee.attr == "record"
            and "tracer" in _call_root_name(callee).lower()
            and not guarded
        ):
            yield node, (
                "records a trace span without a tracer.active "
                "sampling guard"
            )
