"""The incremental analysis driver: warm lint runs re-analyze only
what a change can actually affect.

The cache (``lint-cache.json``, alongside ``lint-baseline.json`` but
*not* committed) stores, per file:

* the content digest (sha256) and the JSON module summary — a warm run
  reuses both for unchanged files and never re-parses them;
* the per-file findings from the ``check_file`` rules, valid as long
  as the digest matches (those rules see one file at a time);
* the findings of the ``graph_scoped`` rules (RC113–RC116) under a
  *neighborhood signature*: the digests of the file's caller-closure —
  itself plus every file that can transitively call into it.  Those
  are exactly the files whose edits can change which entries reach
  this file's functions (and through which witness paths), so the
  signature over-approximates nothing and misses nothing the graph
  can see.

Invalidation therefore has the shape the cache test asserts: touching
file ``T`` changes the neighborhood signature of ``T`` and of every
file in ``T``'s *forward* closure (files ``T`` calls into — their
caller-closures contain ``T``), and of nothing else.  When no
signature changed, the graph rules are skipped outright; when some
did, they re-run as a pure graph computation over cached summaries —
still with zero re-parsing.

Whole-project ``finish`` rules that are not graph-scoped (RC104)
re-run every time, also from summaries alone; their cost is a few
dictionary reconciliations.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.analyzer.engine import (
    PARSE_ERROR_CODE,
    AnalysisResult,
    Finding,
    Rule,
    SourceFile,
    Suppression,
    default_rules,
    iter_python_files,
    reconcile,
)
from repro.analyzer.graph.summary import (
    SUMMARY_VERSION,
    ModuleSummary,
    summarize_source,
)

#: Bump when the cache layout (not the summary shape) changes.
CACHE_VERSION = 1

#: Default cache filename (repo root, next to lint-baseline.json).
DEFAULT_CACHE_PATH = "lint-cache.json"


class IncrementalResult:
    """An :class:`AnalysisResult` plus what the warm path actually did."""

    def __init__(
        self,
        result: AnalysisResult,
        reparsed: List[str],
        graph_dirty: List[str],
        removed: List[str],
        cold: bool,
    ):
        self.result = result
        #: Files whose content changed (or were new) — re-parsed.
        self.reparsed = reparsed
        #: Files whose call-graph neighborhood signature changed —
        #: their graph-rule findings were recomputed, not reused.
        self.graph_dirty = graph_dirty
        #: Cache entries dropped because the file no longer exists.
        self.removed = removed
        #: True when no usable cache existed (version/ruleset mismatch).
        self.cold = cold

    def __repr__(self) -> str:
        return (
            "IncrementalResult(%d findings, %d reparsed, %d graph-dirty)"
            % (
                len(self.result.findings),
                len(self.reparsed),
                len(self.graph_dirty),
            )
        )


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _suppressions_to_json(
    suppressions: Sequence[Suppression],
) -> List[List[Any]]:
    return [
        [s.line, sorted(s.codes), s.reason, s.standalone]
        for s in suppressions
    ]


def _suppressions_from_json(rows: Sequence[Sequence[Any]]) -> List[Suppression]:
    return [
        Suppression(int(line), set(codes), reason, bool(standalone))
        for line, codes, reason, standalone in rows
    ]


def _load_cache(
    path: str, rule_codes: List[str]
) -> Optional[Dict[str, Any]]:
    """The cached file table, or None when the cache is unusable."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("cache_version") != CACHE_VERSION:
        return None
    if payload.get("summary_version") != SUMMARY_VERSION:
        return None
    if payload.get("rules") != rule_codes:
        # A --select run must not poison (or trust) a full run's cache.
        return None
    files = payload.get("files")
    return files if isinstance(files, dict) else None


def _write_cache(
    path: str, rule_codes: List[str], files: Dict[str, Any]
) -> None:
    payload = {
        "cache_version": CACHE_VERSION,
        "summary_version": SUMMARY_VERSION,
        "comment": (
            "repro-clue lint incremental cache — machine-generated, "
            "do not commit; delete freely to force a cold run."
        ),
        "rules": rule_codes,
        "files": files,
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def analyze_paths_incremental(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    cache_path: str = DEFAULT_CACHE_PATH,
) -> IncrementalResult:
    """Analyze ``paths`` reusing (and refreshing) ``cache_path``."""
    from repro.analyzer.engine import Project, _normalize
    from repro.analyzer.graph.callgraph import build_call_graph

    active = list(rules) if rules is not None else default_rules()
    rule_codes = sorted(rule.code for rule in active)
    graph_rules = [rule for rule in active if rule.graph_scoped]
    finish_rules = [
        rule
        for rule in active
        if not rule.graph_scoped
        and type(rule).finish is not Rule.finish
    ]
    cached = _load_cache(cache_path, rule_codes)
    cold = cached is None
    old_files: Dict[str, Any] = cached if cached is not None else {}

    new_files: Dict[str, Any] = {}
    summaries: Dict[str, ModuleSummary] = {}
    suppressions_by_path: Dict[str, List[Suppression]] = {}
    local_findings: List[Finding] = []
    parsed_sources: List[SourceFile] = []
    reparsed: List[str] = []

    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            text = handle.read()
        path = _normalize(filename)
        digest = _digest(text)
        entry = old_files.get(path)
        if entry is not None and entry.get("digest") == digest:
            # Warm: summary, suppressions, and per-file findings are
            # all content-keyed — no parse needed.
            if entry.get("summary") is not None:
                summaries[path] = ModuleSummary.from_dict(entry["summary"])
            suppressions_by_path[path] = _suppressions_from_json(
                entry.get("suppressions", [])
            )
            local_findings.extend(
                Finding.from_dict(f) for f in entry.get("local", [])
            )
            new_files[path] = dict(entry)
            continue
        reparsed.append(path)
        source = SourceFile(path, text)
        suppressions_by_path[path] = source.suppressions
        entry = {"digest": digest, "summary": None, "local": []}
        if source.parse_error is not None:
            error = source.parse_error
            finding = Finding(
                PARSE_ERROR_CODE,
                path,
                error.lineno or 1,
                (error.offset or 0) + 1,
                "syntax error: %s" % error.msg,
                "parse-error",
            )
            local_findings.append(finding)
            entry["local"] = [finding.as_dict()]
        else:
            parsed_sources.append(source)
            file_findings: List[Finding] = []
            for rule in active:
                file_findings.extend(rule.check_file(source))
            local_findings.extend(file_findings)
            summary = summarize_source(source)
            summaries[path] = summary
            entry["summary"] = summary.to_dict()
            entry["local"] = [f.as_dict() for f in file_findings]
        entry["suppressions"] = _suppressions_to_json(
            suppressions_by_path[path]
        )
        new_files[path] = entry

    removed = sorted(set(old_files) - set(new_files))

    # ------------------------------------------------------------------
    # graph-scoped rules under neighborhood signatures
    # ------------------------------------------------------------------
    graph = build_call_graph(summaries)
    signatures: Dict[str, str] = {}
    for path in new_files:
        closure = (
            graph.caller_closure_files(path)
            if path in summaries
            else {path}
        )
        hasher = hashlib.sha256()
        for member in sorted(closure):
            member_entry = new_files.get(member)
            member_digest = (
                member_entry["digest"] if member_entry else "missing"
            )
            hasher.update(
                ("%s=%s\n" % (member, member_digest)).encode("utf-8")
            )
        signatures[path] = hasher.hexdigest()

    graph_dirty = sorted(
        path
        for path in new_files
        if old_files.get(path, {}).get("graph_sig") != signatures[path]
    )
    graph_findings: List[Finding] = []
    if graph_rules and graph_dirty:
        project = Project(parsed_sources, summaries=summaries)
        fresh: List[Finding] = []
        for rule in graph_rules:
            fresh.extend(rule.finish(project))
        by_path: Dict[str, List[Finding]] = {}
        for finding in fresh:
            by_path.setdefault(finding.path, []).append(finding)
        for path, entry in new_files.items():
            entry["graph_sig"] = signatures[path]
            entry["graph"] = [
                f.as_dict() for f in by_path.get(path, [])
            ]
        graph_findings = fresh
    else:
        for path, entry in new_files.items():
            entry["graph_sig"] = signatures[path]
            entry.setdefault("graph", [])
            graph_findings.extend(
                Finding.from_dict(f) for f in entry["graph"]
            )

    # ------------------------------------------------------------------
    # whole-project (non-graph) finish rules: always run, from summaries
    # ------------------------------------------------------------------
    finish_findings: List[Finding] = []
    if finish_rules:
        project = Project(parsed_sources, summaries=summaries)
        for rule in finish_rules:
            finish_findings.extend(rule.finish(project))

    raw = local_findings + graph_findings + finish_findings
    result = reconcile(raw, suppressions_by_path, len(new_files))
    _write_cache(cache_path, rule_codes, new_files)
    return IncrementalResult(
        result, reparsed, graph_dirty, removed, cold
    )
