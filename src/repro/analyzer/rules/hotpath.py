"""RC101 — hot-path purity.

Protects the paper's headline claim: a clue hit resolves a packet in
*one* memory reference, so the per-packet functions marked with
:func:`repro.lookup.hotpath.hot_path` must stay allocation- and
formatting-free.  The concrete regression class: ``Router.process``
once allocated a fresh ``MemoryCounter`` per packet (~2.4× slower than
reuse, see ``benchmarks/test_bench_telemetry.py``), and lazily binding
metric labels per packet is the same bug wearing telemetry clothes —
``RouterInstruments`` exists precisely to pre-bind them.

The actual purity definition — forbidden allocations (container
literals, comprehensions, and the allocating builtins up to and
including ``str()``/``bytes()``/``map()``), string formatting outside
``raise``, unsampled telemetry, ``print``, nested ``def`` — lives in
:mod:`repro.analyzer.purity`, shared with RC113 (the interprocedural
closure rule): this rule checks the functions *declared* hot, RC113
checks everything the call graph proves they reach.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analyzer.engine import Finding, Rule, SourceFile, register
from repro.analyzer.purity import function_violations, is_hot_path_function


@register
class HotPathPurityRule(Rule):
    code = "RC101"
    name = "hot-path-purity"
    rationale = (
        "a clue hit must cost one memory reference; allocation, "
        "formatting, or label binding per packet dilutes the claim"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None:  # engine reports parse errors itself
            return findings
        for node in ast.walk(source.tree):
            if not is_hot_path_function(node):
                continue
            for site, description in function_violations(node):
                findings.append(
                    source.finding(
                        self,
                        site,
                        "hot path %r %s" % (node.name, description),
                    )
                )
        return findings
