"""RC101 — hot-path purity.

Protects the paper's headline claim: a clue hit resolves a packet in
*one* memory reference, so the per-packet functions marked with
:func:`repro.lookup.hotpath.hot_path` must stay allocation- and
formatting-free.  The concrete regression class: ``Router.process``
once allocated a fresh ``MemoryCounter`` per packet (~2.4× slower than
reuse, see ``benchmarks/test_bench_telemetry.py``), and lazily binding
metric labels per packet is the same bug wearing telemetry clothes —
``RouterInstruments`` exists precisely to pre-bind them.

Inside a ``@hot_path`` function the rule forbids:

* container literals and comprehensions, and calls to ``list`` /
  ``dict`` / ``set`` / ``tuple`` / ``sorted`` / ``frozenset``;
* string formatting — f-strings, ``literal % args``, ``str.format`` —
  except inside ``raise`` statements (error paths may format);
* per-packet telemetry setup — any ``.labels(...)`` call — and tracer
  recording (``....record(...)`` on a tracer) outside an ``if`` guard
  that consults the sampler's ``.active`` flag;
* ``print`` calls.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from repro.analyzer.engine import Finding, Rule, SourceFile, register

_CONTAINER_BUILTINS = ("list", "dict", "set", "tuple", "sorted", "frozenset")

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _is_hot_path_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "hot_path"
    if isinstance(node, ast.Attribute):
        return node.attr == "hot_path"
    return False


def _is_str_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _mentions_active(node: ast.expr) -> bool:
    return any(
        isinstance(child, ast.Attribute) and child.attr == "active"
        for child in ast.walk(node)
    )


def _call_root_name(node: ast.expr) -> str:
    """The leftmost name of an attribute chain (``a.b.c`` → ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


@register
class HotPathPurityRule(Rule):
    code = "RC101"
    name = "hot-path-purity"
    rationale = (
        "a clue hit must cost one memory reference; allocation, "
        "formatting, or label binding per packet dilutes the claim"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None:  # engine reports parse errors itself
            return findings
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not any(
                _is_hot_path_decorator(dec) for dec in node.decorator_list
            ):
                continue
            for statement in node.body:
                findings.extend(
                    self._check(source, node.name, statement, guarded=False)
                )
        return findings

    def _check(
        self,
        source: SourceFile,
        func: str,
        node: ast.AST,
        guarded: bool,
    ) -> Iterator[Finding]:
        """Walk one statement, tracking ``raise`` and sampling guards."""
        if isinstance(node, ast.Raise):
            # Error construction is off the happy path by definition.
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def is built once per outer call — that is
            # already a hot-path allocation; flag the def itself.
            yield source.finding(
                self,
                node,
                "hot path %r defines nested function %r per call"
                % (func, node.name),
            )
            return
        if isinstance(node, ast.If):
            branch_guarded = guarded or _mentions_active(node.test)
            for child in node.body:
                yield from self._check(source, func, child, branch_guarded)
            for child in node.orelse:
                yield from self._check(source, func, child, guarded)
            yield from self._check_expr(source, func, node.test, guarded)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                yield from self._check_expr(source, func, child, guarded)
            else:
                yield from self._check(source, func, child, guarded)

    def _check_expr(
        self,
        source: SourceFile,
        func: str,
        node: ast.expr,
        guarded: bool,
    ) -> Iterator[Finding]:
        if isinstance(node, _COMPREHENSIONS):
            yield source.finding(
                self,
                node,
                "hot path %r allocates a comprehension" % func,
            )
        elif isinstance(node, (ast.List, ast.Set, ast.Dict)):
            yield source.finding(
                self,
                node,
                "hot path %r allocates a %s literal"
                % (func, type(node).__name__.lower()),
            )
        elif isinstance(node, ast.JoinedStr):
            yield source.finding(
                self,
                node,
                "hot path %r formats an f-string" % func,
            )
        elif (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Mod)
            and _is_str_constant(node.left)
        ):
            yield source.finding(
                self,
                node,
                "hot path %r %%-formats a string" % func,
            )
        elif isinstance(node, ast.Call):
            yield from self._check_call(source, func, node, guarded)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                yield from self._check_expr(source, func, child, guarded)

    def _check_call(
        self,
        source: SourceFile,
        func: str,
        node: ast.Call,
        guarded: bool,
    ) -> Iterator[Finding]:
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id in _CONTAINER_BUILTINS:
                yield source.finding(
                    self,
                    node,
                    "hot path %r calls %s() (container allocation)"
                    % (func, callee.id),
                )
            elif callee.id == "print":
                yield source.finding(
                    self,
                    node,
                    "hot path %r calls print()" % func,
                )
        elif isinstance(callee, ast.Attribute):
            if callee.attr == "labels":
                yield source.finding(
                    self,
                    node,
                    "hot path %r binds metric labels per packet — "
                    "pre-bind at setup (RouterInstruments)" % func,
                )
            elif callee.attr == "format" and _is_str_constant(callee.value):
                yield source.finding(
                    self,
                    node,
                    "hot path %r calls str.format()" % func,
                )
            elif (
                callee.attr == "record"
                and "tracer" in _call_root_name(callee).lower()
                and not guarded
            ):
                yield source.finding(
                    self,
                    node,
                    "hot path %r records a trace span without a "
                    "tracer.active sampling guard" % func,
                )
