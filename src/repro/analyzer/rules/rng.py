"""RC102 — seeded-RNG discipline.

Every experiment in this repo promises bit-identical reruns from a
``--seed``; the CI churn smoke literally diffs two seeded runs.  Three
ways that promise has broken (or nearly broken) before:

* calling the *module-level* ``random.random()`` / ``choice()`` /
  ``shuffle()`` — global state shared across subsystems, perturbed by
  anything else that imports ``random``;
* ``random.Random()`` with no seed argument — seeded from the OS;
* re-seeding inside a loop with ``seed + k`` arithmetic — the PR 2
  robustness-experiment bug, where every sweep fraction re-derived
  ``Random(seed + 1)`` and silently correlated its draws (fixed by
  threading one RNG through the loop).

The rule flags all three.  Deriving a child RNG from ``seed`` *outside*
a loop (scenario builders, CLI glue) is legitimate and stays legal.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analyzer.engine import Finding, Rule, SourceFile, register

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _is_random_module_call(node: ast.Call) -> bool:
    """``random.<fn>(...)`` for any fn except the ``Random`` class."""
    callee = node.func
    return (
        isinstance(callee, ast.Attribute)
        and isinstance(callee.value, ast.Name)
        and callee.value.id == "random"
        and callee.attr not in ("Random", "SystemRandom")
    )


def _is_rng_constructor(node: ast.Call) -> bool:
    """``Random(...)`` / ``random.Random(...)`` / ``SystemRandom(...)``."""
    callee = node.func
    if isinstance(callee, ast.Name):
        return callee.id in ("Random", "SystemRandom")
    if isinstance(callee, ast.Attribute):
        return callee.attr in ("Random", "SystemRandom")
    return False


def _mentions_seed_arithmetic(node: ast.expr) -> bool:
    """An expression deriving a new value from a name containing 'seed'."""
    for child in ast.walk(node):
        if isinstance(child, ast.BinOp):
            for leaf in ast.walk(child):
                if isinstance(leaf, ast.Name) and "seed" in leaf.id.lower():
                    return True
                if (
                    isinstance(leaf, ast.Attribute)
                    and "seed" in leaf.attr.lower()
                ):
                    return True
    return False


@register
class SeededRngRule(Rule):
    code = "RC102"
    name = "seeded-rng"
    rationale = (
        "seeded determinism is a tested contract; global RNG state, "
        "unseeded Random(), and per-iteration seed arithmetic all "
        "broke or nearly broke it (the PR 2 'seed + 1' regression)"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None:
            return findings
        self._walk(source, source.tree, loop_depth=0, findings=findings)
        return findings

    def _walk(
        self,
        source: SourceFile,
        node: ast.AST,
        loop_depth: int,
        findings: List[Finding],
    ) -> None:
        if isinstance(node, ast.Call):
            self._check_call(source, node, loop_depth, findings)
        depth = loop_depth + (1 if isinstance(node, _LOOPS) else 0)
        for child in ast.iter_child_nodes(node):
            self._walk(source, child, depth, findings)

    def _check_call(
        self,
        source: SourceFile,
        node: ast.Call,
        loop_depth: int,
        findings: List[Finding],
    ) -> None:
        if _is_random_module_call(node):
            callee = node.func
            attr = callee.attr if isinstance(callee, ast.Attribute) else "?"
            findings.append(
                source.finding(
                    self,
                    node,
                    "module-level random.%s() uses shared global RNG "
                    "state — thread a seeded random.Random through" % attr,
                )
            )
            return
        if not _is_rng_constructor(node):
            return
        callee = node.func
        ctor = (
            callee.attr
            if isinstance(callee, ast.Attribute)
            else callee.id if isinstance(callee, ast.Name) else "Random"
        )
        if ctor == "SystemRandom":
            findings.append(
                source.finding(
                    self,
                    node,
                    "SystemRandom() is OS-entropy seeded and can never "
                    "reproduce a run",
                )
            )
            return
        if not node.args and not node.keywords:
            findings.append(
                source.finding(
                    self,
                    node,
                    "Random() without an explicit seed argument is "
                    "seeded from the OS — pass the experiment seed",
                )
            )
            return
        if loop_depth > 0 and any(
            _mentions_seed_arithmetic(arg) for arg in node.args
        ):
            findings.append(
                source.finding(
                    self,
                    node,
                    "re-seeding with seed arithmetic inside a loop "
                    "correlates draws across iterations (the PR 2 "
                    "'seed + 1' bug) — create the RNG once outside "
                    "the loop and thread it through",
                )
            )
