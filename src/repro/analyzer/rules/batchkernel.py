"""RC111 — batch kernels must not loop over their batch in Python.

The fastpath subsystem's whole point is that a *batch* of packets costs
one kernel invocation, not one Python iteration per packet
(``DESIGN.md`` "fastpath": the numpy kernels replace the per-packet
interpreter loop with a handful of array operations).  A ``for`` loop —
or a comprehension, or ``enumerate``/``zip``/``iter`` — over a batch
parameter inside a ``@hot_path`` batch kernel silently re-introduces
the per-element interpreter cost the subsystem exists to remove, while
still *looking* vectorized from the call site.

Inside a ``@hot_path`` function the rule flags iteration whose iterable
is a bare function parameter (or a trivial wrapper around one):

* ``for x in param:`` and comprehensions ``... for x in param``;
* ``enumerate(param)`` / ``zip(param, ...)`` / ``reversed(param)`` /
  ``iter(param)`` / ``sorted(param)`` as the loop iterable;
* ``range(len(param))`` — the classic index-loop disguise.

Iterating anything else — ``range(width)``, attribute chains such as
``ctable.levels`` (compile-time structure, bounded by the table, not by
the batch), or locals derived inside the function — is fine; the rule
deliberately stays narrow so the pure-Python *fallback* kernels, which
are per-element by design, simply stay undecorated.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set

from repro.analyzer.engine import Finding, Rule, SourceFile, register

#: Builtins that return an iterator over their first argument unchanged
#: (element-wise): looping over ``enumerate(param)`` is looping over
#: ``param``.
_ITER_WRAPPERS = ("enumerate", "zip", "reversed", "iter", "sorted")

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _is_hot_path_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "hot_path"
    if isinstance(node, ast.Attribute):
        return node.attr == "hot_path"
    return False


def _parameter_names(node: ast.FunctionDef) -> Set[str]:
    arguments = node.args
    names = {arg.arg for arg in arguments.args}
    names.update(arg.arg for arg in arguments.posonlyargs)
    names.update(arg.arg for arg in arguments.kwonlyargs)
    if arguments.vararg is not None:
        names.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.add(arguments.kwarg.arg)
    # ``self``/``cls`` are receivers, not batches.
    names.discard("self")
    names.discard("cls")
    return names


def _param_iterated(node: ast.expr, params: Set[str]) -> str:
    """The parameter name the iterable walks element-wise, or ``""``."""
    if isinstance(node, ast.Name) and node.id in params:
        return node.id
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        callee = node.func.id
        if callee in _ITER_WRAPPERS:
            for argument in node.args:
                name = _param_iterated(argument, params)
                if name:
                    return name
        elif callee == "range" and len(node.args) == 1:
            # range(len(param)) — the index loop in a funny hat.
            inner = node.args[0]
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id == "len"
                and len(inner.args) == 1
            ):
                return _param_iterated(inner.args[0], params)
    return ""


@register
class BatchKernelLoopRule(Rule):
    code = "RC111"
    name = "batch-kernel-loop"
    rationale = (
        "a batch kernel that loops over its batch in Python pays the "
        "per-packet interpreter cost the fastpath exists to remove"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None:  # engine reports parse errors itself
            return findings
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not any(
                _is_hot_path_decorator(dec) for dec in node.decorator_list
            ):
                continue
            params = _parameter_names(node)
            if not params:
                continue
            findings.extend(self._check_function(source, node, params))
        return findings

    def _check_function(
        self,
        source: SourceFile,
        func: ast.AST,
        params: Set[str],
    ) -> Iterator[Finding]:
        name = func.name  # type: ignore[attr-defined]
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                parameter = _param_iterated(node.iter, params)
                if parameter:
                    yield source.finding(
                        self,
                        node,
                        "batch kernel %r loops over batch parameter %r "
                        "element-by-element in Python" % (name, parameter),
                    )
            elif isinstance(node, _COMPREHENSIONS):
                for generator in node.generators:
                    parameter = _param_iterated(generator.iter, params)
                    if parameter:
                        yield source.finding(
                            self,
                            node,
                            "batch kernel %r iterates batch parameter %r "
                            "in a comprehension" % (name, parameter),
                        )
