"""RC114 — RNG taint reachable from engine entry points.

Every engine in this repo (``ServeEngine``, ``ChurnEngine``,
``FaultEngine``, ``ControlEngine``, ``ChaosEngine``) promises
bit-identical reruns from a ``--seed``: one ``random.Random(seed)`` is
built at construction and *threaded* through everything the run
touches.  RC102 polices the obvious per-file violations; what it
cannot see is a helper that an engine calls — possibly three frames
down — touching module-level ``random.*`` state, re-seeding, or
re-deriving ``Random(seed + k)`` inside a loop the helper itself does
not contain (the PR 2 ``seed + 1`` regression, which only correlated
draws because the *call site* sat in the sweep loop).

This rule lifts the check to the call-graph closure of the engine
entry points — every method of a ``*Engine`` class plus module-level
``run_*`` drivers:

* module-level ``random.*`` calls, ``.seed(...)`` re-seeding,
  unseeded ``Random()``, and ``SystemRandom()`` reached from an entry
  are findings outright;
* ``Random(<seed arithmetic>)`` is a finding when the construction
  sits in a loop *or* the witness path reaches it through a looping
  call site — the cross-function form of the PR 2 bug.

Events whose line already carries an RC102/RC114 suppression stating
why the draw is safe are not re-flagged.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analyzer.engine import Finding, Project, Rule, register

#: RNG event kinds that are findings wherever an entry reaches them.
_ALWAYS_TAINTED = {
    "module_random": (
        "calls module-level %s — shared global RNG state breaks "
        "seeded reruns"
    ),
    "reseed": (
        "re-seeds %s — resets the seeded stream mid-run"
    ),
    "unseeded": (
        "constructs %s without a seed — OS-seeded, never reproducible"
    ),
    "system_random": (
        "constructs %s — OS-entropy seeded, never reproducible"
    ),
}


def _is_entry(node) -> bool:
    if node.cls is not None and node.cls.endswith("Engine"):
        return True
    return node.cls is None and node.name.startswith("run_")


@register
class RngTaintRule(Rule):
    code = "RC114"
    name = "rng-taint"
    graph_scoped = True
    rationale = (
        "seeded determinism must hold over the whole dynamic extent "
        "of an engine run; the PR 2 'seed + 1' bug crossed a function "
        "boundary and per-file analysis missed it"
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        entries = sorted(
            qname
            for qname, node in graph.functions.items()
            if _is_entry(node)
        )
        parents = graph.reachable_from(entries)
        findings: List[Finding] = []
        for qname in sorted(parents):
            node = graph.functions[qname]
            for event in node.facts("rng"):
                if event.get("documented"):
                    continue
                kind = event["kind"]
                if kind in _ALWAYS_TAINTED:
                    detail = _ALWAYS_TAINTED[kind] % event["detail"]
                elif kind == "seed_arith" and (
                    event["in_loop"]
                    or graph.path_in_loop(parents, qname)
                ):
                    detail = (
                        "re-derives Random(<seed arithmetic>) under a "
                        "loop — correlates draws across iterations "
                        "(the PR 2 'seed + 1' class)"
                    )
                else:
                    continue
                findings.append(
                    Finding(
                        self.code,
                        node.path,
                        event["line"],
                        event["col"],
                        "%r is reachable from an engine entry point "
                        "and %s; path: %s — thread the engine's seeded "
                        "Random through instead"
                        % (
                            qname,
                            detail,
                            graph.format_path(parents, qname),
                        ),
                        self.name,
                    )
                )
        return findings
