"""RC106 — bounded loops.

The fault-injection PR fixed ``_sample_destinations`` spinning forever
when every candidate destination was filtered out: a ``while True:``
whose exit condition could starve.  Python cannot prove termination
statically, so the rule takes the reviewable stance: every
``while True:`` in ``src/repro`` must either be rewritten with an
explicit iteration cap or carry a suppression *stating its bound*, e.g.::

    while True:  # repro: noqa[RC106] -- descends a finite trie

The suppression reason is mandatory (engine rule RC198), so the bound
is documented exactly where the loop lives.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analyzer.engine import Finding, Rule, SourceFile, register


def _is_constant_true(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value) is True


@register
class UnboundedLoopRule(Rule):
    code = "RC106"
    name = "bounded-loop"
    rationale = (
        "the _sample_destinations spin: a while True whose exit "
        "condition can starve hangs a seeded 10k-packet repro"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None:
            return findings
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.While):
                continue
            if not _is_constant_true(node.test):
                continue
            has_exit = any(
                isinstance(child, (ast.Break, ast.Return, ast.Raise))
                for child in ast.walk(node)
            )
            if not has_exit:
                findings.append(
                    source.finding(
                        self,
                        node,
                        "while True: with no break/return/raise can "
                        "never terminate",
                    )
                )
            else:
                findings.append(
                    source.finding(
                        self,
                        node,
                        "while True: has no statically visible "
                        "iteration cap — add one, or suppress with "
                        "the bound as the reason",
                    )
                )
        return findings
