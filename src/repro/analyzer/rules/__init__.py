"""The domain rules enforced by ``repro-clue lint``.

Importing this package registers every rule with the engine registry
(:func:`repro.analyzer.engine.register`); ``default_rules()`` then
instantiates them in code order.  Each module documents the invariant
its rule protects and the paper claim or past regression motivating it
(see also DESIGN.md "Static analysis").
"""

from repro.analyzer.rules.api import PublicApiRule
from repro.analyzer.rules.batchkernel import BatchKernelLoopRule
from repro.analyzer.rules.determinism import WallClockRule
from repro.analyzer.rules.frozenarray import FrozenArrayRule
from repro.analyzer.rules.hotclosure import HotPathClosureRule
from repro.analyzer.rules.hotpath import HotPathPurityRule
from repro.analyzer.rules.hygiene import (
    AssertInLibraryRule,
    BareExceptRule,
    MutableDefaultRule,
)
from repro.analyzer.rules.loops import UnboundedLoopRule
from repro.analyzer.rules.reachloop import ReachableLoopRule
from repro.analyzer.rules.retry import BoundedRetryRule
from repro.analyzer.rules.rng import SeededRngRule
from repro.analyzer.rules.rngtaint import RngTaintRule
from repro.analyzer.rules.telemetry_catalogue import TelemetryCatalogueRule
from repro.analyzer.rules.todo import StrayTodoRule

__all__ = [
    "AssertInLibraryRule",
    "BareExceptRule",
    "BatchKernelLoopRule",
    "BoundedRetryRule",
    "FrozenArrayRule",
    "HotPathClosureRule",
    "HotPathPurityRule",
    "MutableDefaultRule",
    "PublicApiRule",
    "ReachableLoopRule",
    "RngTaintRule",
    "SeededRngRule",
    "StrayTodoRule",
    "TelemetryCatalogueRule",
    "UnboundedLoopRule",
    "WallClockRule",
]
