"""RC105 — public-API consistency of package ``__init__`` modules.

``tests/test_api_surface.py`` iterates every sub-package's ``__all__``
and asserts each name resolves; this rule runs the same contract (and
its converse) statically, at lint time instead of test time:

* every name listed in ``__all__`` must be bound at module level
  (import, assignment, def, or class) — a phantom export breaks
  ``from repro.x import *`` and the surface test;
* every public module-level binding (no leading underscore) must be
  listed in ``__all__`` — an unexported name is API by accident,
  reachable but undocumented;
* a package ``__init__`` that re-exports anything must declare
  ``__all__`` at all.

Dunder assignments (``__version__``) may appear in ``__all__`` but are
not required to.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analyzer.engine import Finding, Rule, SourceFile, register


def _module_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module level (imports, assigns, defs, classes)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        bound.add(leaf.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            bound.add(node.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks and import fallbacks still bind.
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        bound.add(
                            alias.asname or alias.name.split(".")[0]
                        )
    return bound


def _find_all(
    tree: ast.Module,
) -> Tuple[Optional[List[str]], Optional[ast.AST]]:
    """The ``__all__`` literal and its node, if statically readable."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            names: List[str] = []
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.append(element.value)
                else:
                    return None, node  # dynamic entry — unreadable
            return names, node
        return None, node
    return None, None


@register
class PublicApiRule(Rule):
    code = "RC105"
    name = "public-api"
    rationale = (
        "tests/test_api_surface.py asserts every __all__ name "
        "resolves; this runs that contract (and its converse) at "
        "lint time"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None or not source.path.endswith("__init__.py"):
            return findings
        tree = source.tree
        if not isinstance(tree, ast.Module):
            return findings
        bound = _module_bindings(tree)
        exported, node = _find_all(tree)
        has_reexports = any(
            isinstance(child, (ast.Import, ast.ImportFrom))
            and getattr(child, "module", "") != "__future__"
            for child in tree.body
        )
        if node is None:
            if has_reexports:
                findings.append(
                    source.line_finding(
                        self,
                        1,
                        "package __init__ re-exports names but declares "
                        "no __all__",
                    )
                )
            return findings
        if exported is None:
            findings.append(
                source.finding(
                    self,
                    node,
                    "__all__ is not a static list/tuple of string "
                    "literals — the analyzer (and many tools) cannot "
                    "read it",
                )
            )
            return findings
        seen: Set[str] = set()
        for name in exported:
            if name in seen:
                findings.append(
                    source.finding(
                        self, node, "duplicate __all__ entry %r" % name
                    )
                )
            seen.add(name)
            if name.startswith("__") and name.endswith("__"):
                if name not in bound:
                    findings.append(
                        source.finding(
                            self,
                            node,
                            "phantom export %r: listed in __all__ but "
                            "never bound" % name,
                        )
                    )
                continue
            if name not in bound:
                findings.append(
                    source.finding(
                        self,
                        node,
                        "phantom export %r: listed in __all__ but not "
                        "bound at module level" % name,
                    )
                )
        for name in sorted(bound):
            if name.startswith("_"):
                continue
            if name not in seen:
                findings.append(
                    source.finding(
                        self,
                        node,
                        "public name %r is bound in the package "
                        "__init__ but missing from __all__" % name,
                    )
                )
        return findings
