"""RC113 — hot-path-closure purity.

RC101 checks the functions the author *declared* hot; this rule checks
the functions the call graph *proves* hot: everything transitively
reachable from a ``@hot_path`` entry.  The PR 9 audit motivating it
found per-packet allocations RC101 could never see — an undecorated
helper three calls below ``ClueRouter.process`` allocating a list per
lookup — because per-file analysis stops at the function boundary.

Every reachable, undecorated function must satisfy the same purity
contract (:mod:`repro.analyzer.purity`), or carry one of the two
explicit escapes:

* ``@hot_path`` — the author promotes it into RC101's jurisdiction
  (and the closure rule steps aside to avoid double-flagging);
* ``@cold_path`` — the author declares a sanctioned hot→cold boundary
  (build-on-miss construction, per-batch buffers); the BFS records the
  boundary but never descends past it, so the slow-path subtree below
  stays out of the closure;
* a ``# repro: noqa[RC113] -- reason`` at the sink, for the rare site
  that is neither.

Findings report the concrete witness *path* — ``entry -> mid
[file:line] -> sink [file:line]`` — because "this helper is hot" is
only actionable when you can see which entry makes it so.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analyzer.engine import Finding, Project, Rule, register


@register
class HotPathClosureRule(Rule):
    code = "RC113"
    name = "hot-path-closure"
    graph_scoped = True
    rationale = (
        "the one-memory-reference claim covers the whole dynamic "
        "extent of a lookup, not just the decorated entry — impure "
        "helpers reachable from @hot_path dilute the measurement "
        "exactly like impure entries do"
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        entries = sorted(
            qname
            for qname, node in graph.functions.items()
            if node.is_hot_path
        )
        parents = graph.reachable_from(
            entries, barrier=lambda node: node.is_cold_path
        )
        findings: List[Finding] = []
        for qname in sorted(parents):
            node = graph.functions[qname]
            if node.is_hot_path or node.is_cold_path:
                continue  # RC101's jurisdiction / sanctioned boundary
            for line, col, description in node.facts("purity"):
                findings.append(
                    Finding(
                        self.code,
                        node.path,
                        line,
                        col,
                        "%r is reachable from the hot path and %s; "
                        "path: %s — decorate @hot_path, mark the "
                        "boundary @cold_path, or make it pure"
                        % (
                            qname,
                            description,
                            graph.format_path(parents, qname),
                        ),
                        self.name,
                    )
                )
        return findings
