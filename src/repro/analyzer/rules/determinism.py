"""RC103 — no wall clocks or ambient entropy inside engines.

The churn, fault, and experiment engines promise that two runs with the
same seed produce the same report — a promise the CI smoke jobs and the
consistency auditor rely on.  Reading a wall clock (``time.time()``,
``datetime.now()``) or ambient entropy (``os.urandom``, ``uuid.uuid4``,
``secrets``) inside ``src/repro`` silently breaks that: results become
functions of *when* they ran.  Timing belongs in ``benchmarks/`` (which
this rule does not scan) or behind an injected clock.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analyzer.engine import Finding, Rule, SourceFile, register

#: ``module attr`` pairs whose call reads a clock or entropy source.
_FORBIDDEN_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("secrets", "token_bytes"),
    ("secrets", "token_hex"),
    ("secrets", "randbelow"),
    ("secrets", "choice"),
}


def _call_target(node: ast.Call) -> "tuple[str, str]":
    """``('module-ish', 'attr')`` for an attribute call, else ('','')."""
    callee = node.func
    if not isinstance(callee, ast.Attribute):
        return "", ""
    value = callee.value
    if isinstance(value, ast.Name):
        return value.id, callee.attr
    if isinstance(value, ast.Attribute):
        # ``datetime.datetime.now()`` — use the innermost module name.
        return value.attr, callee.attr
    return "", ""


@register
class WallClockRule(Rule):
    code = "RC103"
    name = "no-wall-clock"
    rationale = (
        "seeded runs must be time-invariant; clocks and ambient "
        "entropy make reports a function of when they ran"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None:
            return findings
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            module, attr = _call_target(node)
            if (module, attr) in _FORBIDDEN_CALLS:
                findings.append(
                    source.finding(
                        self,
                        node,
                        "%s.%s() reads a wall clock / entropy source — "
                        "inject it or move the timing to benchmarks/"
                        % (module, attr),
                    )
                )
        return findings
