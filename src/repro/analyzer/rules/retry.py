"""RC112 — bounded retry budgets.

The resilience layer re-dispatches failed requests, and a retry loop
whose budget lives only in prose is one refactor away from a hot spin:
a crashed replica that never comes back turns "retry until it works"
into "retry forever".  The engine's own machinery threads an explicit
``max_retries`` budget through every re-dispatch; this rule holds the
whole tree to that standard.

A ``while`` loop is *retry-flavored* when an identifier mentioning
``retry`` or ``attempt`` appears in its test or body.  Such a loop must
carry a statically visible bound:

* ``while True:`` retry loops are always flagged — the budget, if any,
  hides in a ``break`` the reader has to hunt for;
* otherwise the loop test must either compare against something
  (``while attempts < budget:``) or name a counter the body visibly
  decrements (``while budget: ... budget -= 1`` — the countdown
  idiom).

Loops that retry via recursion, scheduling queues, or ``for`` loops
over ``range(budget)`` are inherently bounded and out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analyzer.engine import Finding, Rule, SourceFile, register

#: Substrings marking an identifier as retry bookkeeping.
_RETRY_MARKERS = ("retry", "retries", "attempt")


def _is_constant_true(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value) is True


def _retry_names(nodes: Iterable[ast.AST]) -> Set[str]:
    """Identifiers mentioning retry/attempt anywhere in ``nodes``."""
    names: Set[str] = set()
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Name):
                candidate = node.id
            elif isinstance(node, ast.Attribute):
                candidate = node.attr
            else:
                continue
            lowered = candidate.lower()
            if any(marker in lowered for marker in _RETRY_MARKERS):
                names.add(candidate)
    return names


def _test_names(test: ast.expr) -> Set[str]:
    """Plain variable names the loop condition reads."""
    return {
        node.id for node in ast.walk(test) if isinstance(node, ast.Name)
    }


def _decremented_names(body: Iterable[ast.stmt]) -> Set[str]:
    """Names the body counts down: ``x -= k`` or ``x = x - k``."""
    names: Set[str] = set()
    for statement in body:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Sub)
                and isinstance(node.target, ast.Name)
            ):
                names.add(node.target.id)
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, ast.Sub)
                and isinstance(node.value.left, ast.Name)
                and node.value.left.id == node.targets[0].id
            ):
                names.add(node.targets[0].id)
    return names


@register
class BoundedRetryRule(Rule):
    code = "RC112"
    name = "bounded-retry"
    rationale = (
        "a retry loop without an explicit budget spins forever once "
        "the retried operation stops ever succeeding — the resilience "
        "engine's max_retries discipline, enforced tree-wide"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None:
            return findings
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.While):
                continue
            involved = _retry_names([node.test])
            involved.update(_retry_names(node.body))
            if not involved:
                continue
            label = ", ".join(repr(name) for name in sorted(involved))
            if _is_constant_true(node.test):
                findings.append(
                    source.finding(
                        self,
                        node,
                        "retry loop (%s) runs as while True: — carry "
                        "the budget in the loop condition, e.g. "
                        "while attempts < max_retries:" % label,
                    )
                )
                continue
            has_compare = any(
                isinstance(child, ast.Compare)
                for child in ast.walk(node.test)
            )
            if has_compare:
                continue
            if _test_names(node.test) & _decremented_names(node.body):
                # Truthiness countdown: while budget: ... budget -= 1.
                continue
            findings.append(
                source.finding(
                    self,
                    node,
                    "retry loop (%s) has no statically visible budget "
                    "— compare against a bound or count one down in "
                    "the loop body" % label,
                )
            )
        return findings
