"""RC116 — unbudgeted loops reachable from serving tick paths.

RC106 (bounded loops) and RC112 (budgeted retries) are per-file rules:
they flag the ``while True:`` or the budget-less retry where it is
written.  But the liveness property they protect — a serve/chaos tick
returns in bounded time — is a property of the *closure* of the tick,
and the failure mode that motivated this rule sat three calls away: a
tick path calling a helper calling a drain loop nobody ever bounded.

This rule lifts both checks to the call graph.  Entry points are the
serving-plane heartbeat functions — ``tick`` / ``run`` /
``run_round`` in ``repro.serve.*`` and ``repro.resilience.*`` — and
every unbounded ``while True:`` or budget-less retry loop reachable
from one is a finding, reported with the entry→loop witness path.

A loop whose bound is already documented by an RC106/RC112
suppression (``# repro: noqa[RC106] -- drains a bounded queue``) is
*not* re-flagged: the per-file rule owns that conversation, and the
stated reason covers the reachability question too.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analyzer.engine import Finding, Project, Rule, register

#: Heartbeat entry names on the serving/chaos planes.
_ENTRY_NAMES = ("tick", "run", "run_round")

#: Module prefixes whose heartbeat functions are entry points.
_ENTRY_MODULES = ("repro.serve.", "repro.resilience.")


def _is_entry(node) -> bool:
    if node.name not in _ENTRY_NAMES:
        return False
    return any(
        node.module.startswith(prefix) or node.module == prefix[:-1]
        for prefix in _ENTRY_MODULES
    )


@register
class ReachableLoopRule(Rule):
    code = "RC116"
    name = "unbudgeted-reachable-loop"
    graph_scoped = True
    rationale = (
        "a tick's bounded-time promise covers everything it calls; "
        "an unbounded drain loop three frames below tick() stalls the "
        "shard exactly like one written inline would"
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        entries = sorted(
            qname
            for qname, node in graph.functions.items()
            if _is_entry(node)
        )
        parents = graph.reachable_from(entries)
        findings: List[Finding] = []
        for qname in sorted(parents):
            node = graph.functions[qname]
            for event in node.facts("loops"):
                if event["documented"]:
                    continue
                if event["kind"] == "while_true":
                    detail = (
                        "spins an unbounded 'while True:' with no "
                        "documented bound"
                    )
                else:
                    detail = (
                        "runs a %s with no budget that provably "
                        "decreases" % event["label"]
                    )
                findings.append(
                    Finding(
                        self.code,
                        node.path,
                        event["line"],
                        event["col"],
                        "%r is reachable from a serving tick path and "
                        "%s; path: %s — bound the loop or document the "
                        "bound where it is written"
                        % (
                            qname,
                            detail,
                            graph.format_path(parents, qname),
                        ),
                        self.name,
                    )
                )
        return findings
