"""RC107 / RC108 / RC109 — library-code hygiene.

Three classics, each with a concrete failure mode in this codebase:

* **RC107 no-bare-except** — a bare ``except:`` swallows
  ``KeyboardInterrupt`` and ``SystemExit``; in the churn/fault engines
  it would also swallow the very invariant errors
  (``ChurnAuditError``, ``FaultInvariantError``) whose escape is the
  whole point.
* **RC108 no-mutable-default-arg** — a ``def f(x=[])`` default is
  shared across calls; in long-lived router/engine objects that turns
  per-call state into hidden global state.
* **RC109 no-assert-in-library** — ``assert`` vanishes under
  ``python -O``.  Validation in ``src/repro`` must raise explicit
  exceptions (``ValueError``, ``ChurnAuditError``, ...) so the
  never-wrong-forwarding checks cannot be optimised away.  Tests keep
  using ``assert`` freely — this rule only runs over ``src/repro``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analyzer.engine import Finding, Rule, SourceFile, register

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
_MUTABLE_CALLS = ("list", "dict", "set", "bytearray", "deque", "defaultdict")


@register
class BareExceptRule(Rule):
    code = "RC107"
    name = "no-bare-except"
    rationale = (
        "bare except swallows KeyboardInterrupt/SystemExit and the "
        "engines' own invariant errors"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None:
            return findings
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                findings.append(
                    source.finding(
                        self,
                        node,
                        "bare except: catches everything including "
                        "KeyboardInterrupt — name the exceptions",
                    )
                )
        return findings


@register
class MutableDefaultRule(Rule):
    code = "RC108"
    name = "no-mutable-default-arg"
    rationale = "a mutable default is shared across calls — hidden state"

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None:
            return findings
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if isinstance(default, _MUTABLE_LITERALS):
                    label = type(default).__name__.lower()
                elif (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                ):
                    label = "%s()" % default.func.id
                else:
                    continue
                name = getattr(node, "name", "<lambda>")
                findings.append(
                    source.finding(
                        self,
                        default,
                        "%r uses mutable default %s — default to None "
                        "and allocate inside" % (name, label),
                    )
                )
        return findings


@register
class AssertInLibraryRule(Rule):
    code = "RC109"
    name = "no-assert-in-library"
    rationale = (
        "assert disappears under python -O; runtime validation must "
        "raise explicit exceptions"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        if source.tree is None:
            return findings
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assert):
                findings.append(
                    source.finding(
                        self,
                        node,
                        "assert vanishes under python -O — raise an "
                        "explicit exception instead",
                    )
                )
        return findings
