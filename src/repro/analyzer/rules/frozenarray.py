"""RC115 — frozen compiled-array immutability.

``CompiledTrie``, ``CompiledClueTable`` and ``CompiledMultibitTrie``
are the regular technique's frozen artifacts: ``fastpath/compile.py``
and ``fastpath/layouts.py`` lay their arrays out once, and every batch
kernel then reads them lock-free and bounds-check-min.
A store into one of those arrays after compilation is never a local
bug — aliased ndarray views mean a single ``table.rec_fd[i] = x``
silently corrupts every router sharing the pool, and nothing crashes
until a lookup returns a wrong next hop (the class of failure the
never-wrong-forwarding oracles exist to catch).

The rule resolves every subscript / in-place store's base object
through the call graph's type tables and flags stores into the frozen
array fields anywhere outside the compiler itself.  Rebinding a whole
field (``self.child = np.asarray(...)``) stays legal — that is how
compile-time construction and sanctioned rebuilds (recompilation on
churn) work; it is *element* mutation of a published array that can
never be right outside :data:`SANCTIONED_SUFFIXES`.

Because the flagged function is usually a helper, the finding names
the call-graph roots that can reach it — the blast radius a reviewer
actually cares about.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List

from repro.analyzer.engine import Finding, Project, Rule, register

#: Files allowed to write compiled array elements: the compilers.
SANCTIONED_SUFFIXES = ("fastpath/compile.py", "fastpath/layouts.py")

#: Frozen array fields per compiled class (qname → fields).
FROZEN_FIELDS: Dict[str, FrozenSet[str]] = {
    "repro.fastpath.compile.CompiledTrie": frozenset(
        {"child", "node_result", "node_index"}
    ),
    "repro.fastpath.compile.CompiledClueTable": frozenset(
        {
            "levels",
            "probe_index",
            "rec_fd",
            "rec_cont_node",
            "rec_cont_depth",
            "rec_stop_row",
            "stop_masks",
        }
    ),
    "repro.fastpath.layouts.CompiledMultibitTrie": frozenset(
        {"slots", "leaf_codes", "level_shifts"}
    ),
}


def _sanctioned(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(s) for s in SANCTIONED_SUFFIXES)


@register
class FrozenArrayRule(Rule):
    code = "RC115"
    name = "frozen-array-mutation"
    graph_scoped = True
    rationale = (
        "compiled tries and clue tables are shared, aliased, and read "
        "lock-free by every batch kernel; element stores outside the "
        "compiler corrupt routers that never touched the writer"
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        findings: List[Finding] = []
        for qname in sorted(graph.functions):
            node = graph.functions[qname]
            if _sanctioned(node.path):
                continue
            for event in node.facts("stores"):
                if "store" not in event["kind"]:
                    continue  # plain rebind: legal rebuild idiom
                klass = graph.resolve_base_type(node, event["base"])
                if klass is None:
                    continue
                frozen = FROZEN_FIELDS.get(klass)
                if frozen is None or event["field"] not in frozen:
                    continue
                roots = [
                    root for root in graph.roots_of(qname) if root != qname
                ]
                reach = (
                    "; reachable from %s" % ", ".join(roots[:3])
                    if roots
                    else ""
                )
                findings.append(
                    Finding(
                        self.code,
                        node.path,
                        event["line"],
                        event["col"],
                        "%r performs a %s into frozen %s.%s outside "
                        "fastpath/compile.py%s — compiled arrays are "
                        "immutable once published; rebuild via "
                        "compile_trie/compile_clue_table instead"
                        % (
                            qname,
                            event["kind"],
                            klass.rpartition(".")[2],
                            event["field"],
                            reach,
                        ),
                        self.name,
                    )
                )
        return findings
