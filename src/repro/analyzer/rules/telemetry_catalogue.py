"""RC104 — telemetry-catalogue consistency.

``repro.telemetry.instruments`` is the *canonical* instrument
catalogue: its module docstring tables every series, and its
``LookupInstruments`` registers each one exactly once.  Experiments,
dashboards, and the reconciliation tests all navigate by those names,
so drift is costly in both directions:

* a **phantom** instrument — registered (or used elsewhere) under a
  name the catalogue table never declared — is invisible to readers of
  the catalogue;
* an **orphan** instrument — declared in the catalogue table but never
  registered — documents a series no exporter will ever emit.

The rule cross-references three sources over the whole project: the
docstring table rows (`` ``name``  kind ``), the ``reg.counter(...)`` /
``histogram(...)`` / ``gauge(...)`` registrations inside the catalogue
module, and every string-literal metric registration anywhere else in
``src/repro``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analyzer.engine import (
    Finding,
    Project,
    Rule,
    SourceFile,
    register,
)

#: The file that *is* the catalogue (matched by path suffix).
CATALOGUE_SUFFIX = "telemetry/instruments.py"

#: Files whose counter()/gauge()/histogram() mentions are definitions,
#: not catalogue uses: the registry primitives themselves.
EXEMPT_SUFFIXES = ("telemetry/registry.py",)

_KINDS = ("counter", "gauge", "histogram")

#: One docstring table row: ``clue_hits_total``  counter  router
_TABLE_ROW = re.compile(
    r"^``(?P<name>[a-z_][a-z0-9_]*)``\s+(?P<kind>counter|gauge|histogram)\b"
)


def _registrations(
    source: SourceFile,
) -> List[Tuple[str, str, ast.Call]]:
    """Every ``<recv>.counter("name", ...)``-style call with a literal name."""
    calls: List[Tuple[str, str, ast.Call]] = []
    if source.tree is None:
        return calls
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if not isinstance(callee, ast.Attribute) or callee.attr not in _KINDS:
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            calls.append((first.value, callee.attr, node))
    return calls


def _docstring_table(
    source: SourceFile,
) -> Dict[str, Tuple[str, int]]:
    """``name -> (kind, line)`` rows of the catalogue docstring table."""
    rows: Dict[str, Tuple[str, int]] = {}
    for number, line in enumerate(source.lines, start=1):
        match = _TABLE_ROW.match(line.strip())
        if match is not None:
            rows[match.group("name")] = (match.group("kind"), number)
    return rows


def _suffix_match(path: str, suffix: str) -> bool:
    return path.replace("\\", "/").endswith(suffix)


@register
class TelemetryCatalogueRule(Rule):
    code = "RC104"
    name = "telemetry-catalogue"
    rationale = (
        "every exported series must be declared in the canonical "
        "catalogue and vice versa — reconciliation tests and "
        "dashboards navigate by these names"
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        catalogue: Optional[SourceFile] = project.find(CATALOGUE_SUFFIX)
        if catalogue is None:
            # Nothing to reconcile against (e.g. linting a subtree).
            return findings
        declared = _docstring_table(catalogue)
        registered: Dict[str, Tuple[str, ast.Call]] = {}
        for name, kind, node in _registrations(catalogue):
            registered[name] = (kind, node)
            row = declared.get(name)
            if row is None:
                findings.append(
                    catalogue.finding(
                        self,
                        node,
                        "phantom instrument %r: registered but missing "
                        "from the catalogue docstring table" % name,
                    )
                )
            elif row[0] != kind:
                findings.append(
                    catalogue.finding(
                        self,
                        node,
                        "instrument %r registered as %s but catalogued "
                        "as %s" % (name, kind, row[0]),
                    )
                )
        for name, (kind, line) in sorted(declared.items()):
            if name not in registered:
                findings.append(
                    catalogue.line_finding(
                        self,
                        line,
                        "orphan instrument %r: catalogued as %s but "
                        "never registered" % (name, kind),
                    )
                )
        for source in project:
            if source is catalogue:
                continue
            if any(
                _suffix_match(source.path, suffix)
                for suffix in EXEMPT_SUFFIXES
            ):
                continue
            for name, kind, node in _registrations(source):
                if name not in registered:
                    findings.append(
                        source.finding(
                            self,
                            node,
                            "metric %r (%s) is not in the canonical "
                            "catalogue (telemetry/instruments.py) — "
                            "declare it there" % (name, kind),
                        )
                    )
        return findings
