"""RC104 — telemetry-catalogue consistency.

``repro.telemetry.instruments`` is the *canonical* instrument
catalogue: its module docstring tables every series, and its
``LookupInstruments`` registers each one exactly once.  Experiments,
dashboards, and the reconciliation tests all navigate by those names,
so drift is costly in both directions:

* a **phantom** instrument — registered (or used elsewhere) under a
  name the catalogue table never declared — is invisible to readers of
  the catalogue;
* an **orphan** instrument — declared in the catalogue table but never
  registered — documents a series no exporter will ever emit.

The rule cross-references three sources over the whole project: the
docstring table rows (`` ``name``  kind ``), the ``reg.counter(...)`` /
``histogram(...)`` / ``gauge(...)`` registrations inside the catalogue
module, and every string-literal metric registration anywhere else in
``src/repro``.  All three are read from the per-file
:class:`~repro.analyzer.graph.summary.ModuleSummary` digests
(``metric_calls`` / ``metric_table``), not from ASTs — on a warm
incremental run the rule reconciles entirely from cached summaries
without re-parsing a single unchanged file.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.analyzer.engine import Finding, Project, Rule, register

#: The file that *is* the catalogue (matched by path suffix).
CATALOGUE_SUFFIX = "telemetry/instruments.py"

#: Files whose counter()/gauge()/histogram() mentions are definitions,
#: not catalogue uses: the registry primitives themselves.
EXEMPT_SUFFIXES = ("telemetry/registry.py",)


def _suffix_match(path: str, suffix: str) -> bool:
    return path.replace("\\", "/").endswith(suffix)


@register
class TelemetryCatalogueRule(Rule):
    code = "RC104"
    name = "telemetry-catalogue"
    rationale = (
        "every exported series must be declared in the canonical "
        "catalogue and vice versa — reconciliation tests and "
        "dashboards navigate by these names"
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        summaries = project.summaries()
        catalogue = None
        for path in sorted(summaries):
            if _suffix_match(path, CATALOGUE_SUFFIX):
                catalogue = summaries[path]
                break
        if catalogue is None:
            # Nothing to reconcile against (e.g. linting a subtree).
            return findings
        declared: Dict[str, Tuple[str, int]] = {
            name: (kind, line)
            for name, kind, line in catalogue.metric_table
        }
        registered: Dict[str, str] = {}
        for name, kind, line, col in catalogue.metric_calls:
            registered[name] = kind
            row = declared.get(name)
            if row is None:
                findings.append(
                    self._finding(
                        catalogue.path,
                        line,
                        col,
                        "phantom instrument %r: registered but missing "
                        "from the catalogue docstring table" % name,
                    )
                )
            elif row[0] != kind:
                findings.append(
                    self._finding(
                        catalogue.path,
                        line,
                        col,
                        "instrument %r registered as %s but catalogued "
                        "as %s" % (name, kind, row[0]),
                    )
                )
        for name, (kind, line) in sorted(declared.items()):
            if name not in registered:
                findings.append(
                    self._finding(
                        catalogue.path,
                        line,
                        1,
                        "orphan instrument %r: catalogued as %s but "
                        "never registered" % (name, kind),
                    )
                )
        for path in sorted(summaries):
            summary = summaries[path]
            if summary is catalogue:
                continue
            if any(
                _suffix_match(path, suffix) for suffix in EXEMPT_SUFFIXES
            ):
                continue
            for name, kind, line, col in summary.metric_calls:
                if name not in registered:
                    findings.append(
                        self._finding(
                            path,
                            line,
                            col,
                            "metric %r (%s) is not in the canonical "
                            "catalogue (telemetry/instruments.py) — "
                            "declare it there" % (name, kind),
                        )
                    )
        return findings

    def _finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(self.code, path, line, col, message, self.name)
