"""RC110 — no stray to-do markers (informational).

A to-do marker in ``src/repro`` is work the tree silently owes; this repo
tracks such debt in ISSUE/ROADMAP entries or the lint baseline instead,
so the source stays assertion-of-record.  The rule is *informational*:
it reports but never fails the run — converting a marker into a
baseline entry (or a roadmap item) is always acceptable.
"""

from __future__ import annotations

import re
from typing import Iterable, List

from repro.analyzer.engine import Finding, Rule, SourceFile, register

# Built by concatenation so this file does not flag itself.
_MARKERS = ("TO" + "DO", "FIX" + "ME", "X" + "XX")
_PATTERN = re.compile(r"\b(%s)\b" % "|".join(_MARKERS))


@register
class StrayTodoRule(Rule):
    code = "RC110"
    name = "no-stray-todo"
    informational = True
    rationale = (
        "deferred work belongs in ISSUE/ROADMAP or the lint baseline, "
        "not in source markers nothing tracks"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for number, line in enumerate(source.lines, start=1):
            match = _PATTERN.search(line)
            if match is not None:
                findings.append(
                    source.line_finding(
                        self,
                        number,
                        "stray %s marker — track it in ROADMAP.md or "
                        "the lint baseline" % match.group(1),
                    )
                )
        return findings
