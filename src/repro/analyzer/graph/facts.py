"""Rule-local facts embedded into function summaries at parse time.

The interprocedural rules (RC113–RC116) are pure graph computations:
"is a *local* violation reachable from a privileged entry point?".
The local half of each question — does this function allocate, touch
global RNG state, store into a frozen array field, spin an unbudgeted
loop — only needs the function's own AST, so it is extracted once
while the file is being summarized and stored as plain-JSON ``facts``
on the :class:`~repro.analyzer.graph.summary.FunctionSummary`.  Warm
incremental runs then answer the interprocedural questions from cached
summaries without re-parsing a single unchanged file.

Fact families (one key per consuming rule):

* ``purity``  → ``[[line, col, description], ...]`` — RC113, from the
  shared RC101 walker in :mod:`repro.analyzer.purity`;
* ``rng``     → RNG events (module-level ``random.*``, unseeded or
  re-seeded ``Random``, seed arithmetic) with an ``in_loop`` bit — RC114;
* ``stores``  → attribute/subscript stores ``base.field[...] = ...``
  with the raw base chain for later type resolution — RC115;
* ``loops``   → unbounded ``while True:`` and budget-less retry loops,
  with a ``documented`` bit when an RC106/RC112 suppression already
  states the bound — RC116.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Tuple

from repro.analyzer.purity import function_violations

#: Loop statements for the ``in_loop`` bit on calls and RNG events.
LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)

FunctionDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def attribute_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` → ``("a", "b", "c")``; None when the root is not a
    plain name (calls, subscripts, literals)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


# ----------------------------------------------------------------------
# purity (RC113)
# ----------------------------------------------------------------------
def purity_facts(func: ast.AST) -> List[List[Any]]:
    events: List[List[Any]] = []
    for node, description in function_violations(func):  # type: ignore[arg-type]
        events.append(
            [
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                description,
            ]
        )
    return events


# ----------------------------------------------------------------------
# rng (RC114)
# ----------------------------------------------------------------------
def _mentions_seed_name(node: ast.expr) -> bool:
    for leaf in ast.walk(node):
        if isinstance(leaf, ast.Name) and "seed" in leaf.id.lower():
            return True
        if isinstance(leaf, ast.Attribute) and "seed" in leaf.attr.lower():
            return True
    return False


def _seed_arithmetic(node: ast.expr) -> bool:
    return any(
        isinstance(child, ast.BinOp) and _mentions_seed_name(child)
        for child in ast.walk(node)
    )


def rng_facts(func: ast.AST, documented_lines) -> List[Dict[str, Any]]:
    """RNG events in ``func`` (nested defs fold into their parent —
    graph nodes exist only for module-level functions and methods).
    Events on a line whose existing RC102/RC114 suppression already
    states why the draw is safe carry ``documented: True`` so the
    closure rule does not re-flag a justified per-file decision."""
    events: List[Dict[str, Any]] = []
    _walk_rng(func, 0, events)
    for event in events:
        covered = documented_lines.get(event["line"], set())
        event["documented"] = bool({"RC102", "RC114"} & covered)
    return events


def _walk_rng(
    node: ast.AST, loop_depth: int, events: List[Dict[str, Any]]
) -> None:
    if isinstance(node, ast.Call):
        event = _classify_rng_call(node, loop_depth)
        if event is not None:
            events.append(event)
    depth = loop_depth + (1 if isinstance(node, LOOP_NODES) else 0)
    for child in ast.iter_child_nodes(node):
        _walk_rng(child, depth, events)


def _classify_rng_call(
    node: ast.Call, loop_depth: int
) -> Optional[Dict[str, Any]]:
    callee = node.func
    line = node.lineno
    col = node.col_offset + 1
    in_loop = loop_depth > 0
    if (
        isinstance(callee, ast.Attribute)
        and isinstance(callee.value, ast.Name)
        and callee.value.id == "random"
        and callee.attr not in ("Random", "SystemRandom")
    ):
        return {
            "kind": "module_random",
            "detail": "random.%s" % callee.attr,
            "line": line,
            "col": col,
            "in_loop": in_loop,
        }
    if isinstance(callee, ast.Attribute) and callee.attr == "seed":
        chain = attribute_chain(callee)
        return {
            "kind": "reseed",
            "detail": ".".join(chain) if chain else "<rng>.seed",
            "line": line,
            "col": col,
            "in_loop": in_loop,
        }
    ctor = None
    if isinstance(callee, ast.Name) and callee.id in ("Random", "SystemRandom"):
        ctor = callee.id
    elif isinstance(callee, ast.Attribute) and callee.attr in (
        "Random",
        "SystemRandom",
    ):
        ctor = callee.attr
    if ctor == "SystemRandom":
        return {
            "kind": "system_random",
            "detail": "SystemRandom()",
            "line": line,
            "col": col,
            "in_loop": in_loop,
        }
    if ctor == "Random":
        if not node.args and not node.keywords:
            return {
                "kind": "unseeded",
                "detail": "Random()",
                "line": line,
                "col": col,
                "in_loop": in_loop,
            }
        if any(_seed_arithmetic(arg) for arg in node.args):
            return {
                "kind": "seed_arith",
                "detail": "Random(<seed arithmetic>)",
                "line": line,
                "col": col,
                "in_loop": in_loop,
            }
    return None


# ----------------------------------------------------------------------
# stores (RC115)
# ----------------------------------------------------------------------
def store_facts(func: ast.AST) -> List[Dict[str, Any]]:
    """Attribute and subscript stores with a resolvable base chain.

    ``trie.child[i] = x`` → base ``("trie",)``, field ``"child"``; the
    RC115 rule resolves the base chain to a class via the summary's
    type tables and only keeps frozen-class fields.
    """
    events: List[Dict[str, Any]] = []
    for node in ast.walk(func):
        targets: List[Tuple[ast.expr, str]] = []
        if isinstance(node, ast.Assign):
            targets = [(t, "store") for t in node.targets]
        elif isinstance(node, ast.AugAssign):
            targets = [(node.target, "in-place store")]
        for target, kind in targets:
            event = _classify_store(target, kind)
            if event is not None:
                events.append(event)
    return events


def _classify_store(target: ast.expr, kind: str) -> Optional[Dict[str, Any]]:
    if isinstance(target, ast.Subscript):
        inner = target.value
        if isinstance(inner, ast.Attribute):
            base = attribute_chain(inner.value)
            if base is not None:
                return {
                    "base": list(base),
                    "field": inner.attr,
                    "kind": "subscript " + kind,
                    "line": target.lineno,
                    "col": target.col_offset + 1,
                }
        return None
    if isinstance(target, ast.Attribute):
        base = attribute_chain(target.value)
        if base is not None:
            return {
                "base": list(base),
                "field": target.attr,
                "kind": "rebind" if kind == "store" else kind,
                "line": target.lineno,
                "col": target.col_offset + 1,
            }
    return None


# ----------------------------------------------------------------------
# loops (RC116)
# ----------------------------------------------------------------------
_RETRY_MARKERS = ("retry", "retries", "attempt")


def _is_constant_true(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value) is True


def _retry_involved(node: ast.While) -> List[str]:
    names = set()
    for root in [node.test] + list(node.body):
        for child in ast.walk(root):
            if isinstance(child, ast.Name):
                candidate = child.id
            elif isinstance(child, ast.Attribute):
                candidate = child.attr
            else:
                continue
            lowered = candidate.lower()
            if any(marker in lowered for marker in _RETRY_MARKERS):
                names.add(candidate)
    return sorted(names)


def _retry_budgeted(node: ast.While) -> bool:
    if any(isinstance(child, ast.Compare) for child in ast.walk(node.test)):
        return True
    tested = {
        leaf.id for leaf in ast.walk(node.test) if isinstance(leaf, ast.Name)
    }
    decremented = set()
    for statement in node.body:
        for child in ast.walk(statement):
            if (
                isinstance(child, ast.AugAssign)
                and isinstance(child.op, ast.Sub)
                and isinstance(child.target, ast.Name)
            ):
                decremented.add(child.target.id)
            elif (
                isinstance(child, ast.Assign)
                and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Name)
                and isinstance(child.value, ast.BinOp)
                and isinstance(child.value.op, ast.Sub)
                and isinstance(child.value.left, ast.Name)
                and child.value.left.id == child.targets[0].id
            ):
                decremented.add(child.targets[0].id)
    return bool(tested & decremented)


def loop_facts(func: ast.AST, documented_lines) -> List[Dict[str, Any]]:
    """Unbounded loops; ``documented_lines`` maps a line to the set of
    rule codes an existing suppression on that line already covers."""
    events: List[Dict[str, Any]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.While):
            continue
        line = node.lineno
        col = node.col_offset + 1
        if _is_constant_true(node.test):
            covered = documented_lines.get(line, set())
            events.append(
                {
                    "kind": "while_true",
                    "label": "while True:",
                    "line": line,
                    "col": col,
                    "documented": bool({"RC106", "RC116"} & covered),
                }
            )
            continue
        involved = _retry_involved(node)
        if involved and not _retry_budgeted(node):
            covered = documented_lines.get(line, set())
            events.append(
                {
                    "kind": "retry",
                    "label": "retry loop (%s)" % ", ".join(involved),
                    "line": line,
                    "col": col,
                    "documented": bool({"RC112", "RC116"} & covered),
                }
            )
    return events
