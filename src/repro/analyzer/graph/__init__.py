"""repro.analyzer.graph — whole-program call-graph construction.

The per-file rules (RC101–RC112) see one AST at a time; the invariants
they protect — hot-path purity, seeded-RNG discipline, frozen compiled
arrays, bounded loops — are *whole-program* properties.  This
subpackage supplies the missing layer:

* :mod:`summary` — a JSON-serializable per-file digest (functions,
  classes, imports, call sites, rule-local facts) built from one AST
  walk; the incremental cache persists these so warm runs never
  re-parse unchanged files;
* :mod:`facts` — the rule-local fact extractors (purity violations,
  RNG events, frozen-array stores, unbudgeted loops) embedded into
  summaries at parse time;
* :mod:`callgraph` — name resolution over a set of summaries into a
  module-qualified call graph with reachability, call-path
  reconstruction, and file-level dependency neighborhoods.

See DESIGN.md §9 for the resolution rules and known imprecisions.
"""

from repro.analyzer.graph.callgraph import (
    CallEdge,
    CallGraph,
    FunctionNode,
    build_call_graph,
)
from repro.analyzer.graph.summary import (
    CallRef,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
    SUMMARY_VERSION,
    module_name_for_path,
    summarize_source,
)

__all__ = [
    "CallEdge",
    "CallGraph",
    "CallRef",
    "ClassSummary",
    "FunctionNode",
    "FunctionSummary",
    "ModuleSummary",
    "SUMMARY_VERSION",
    "build_call_graph",
    "module_name_for_path",
    "summarize_source",
]
