"""Per-file structural summaries: the call graph's unit of caching.

A :class:`ModuleSummary` is everything the whole-program layer needs
to know about one file, extracted in a single AST walk and fully
JSON-round-trippable: the module's dotted name, its import table, its
functions and classes with raw call-site references, lightweight type
hints (``x = CompiledTrie(...)``, ``self.trie = trie`` where ``trie``
is an annotated parameter), rule-local facts (:mod:`facts`), and the
telemetry registrations RC104 reconciles.

Because a summary never holds an AST node, the incremental cache can
persist it next to the file's content hash: a warm lint run loads
summaries for unchanged files and only re-parses the files whose bytes
actually changed, then rebuilds the (cheap) call graph from summaries
alone.  That is the property the analyzer bench measures.

Name references are stored *raw* as attribute chains (``("self",
"_probe")``, ``("random", "random")``) — resolution to qualified names
happens later in :mod:`callgraph`, where the full project is visible.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analyzer.graph import facts as _facts
from repro.analyzer.purity import is_cold_path_function, is_hot_path_function

#: Bump when the summary shape or any fact extractor changes — the
#: incremental store discards entries written by another version.
SUMMARY_VERSION = 1

#: Metric-registration method names RC104 reconciles.
_METRIC_KINDS = ("counter", "gauge", "histogram")

#: One docstring table row: ``clue_hits_total``  counter  router
_TABLE_ROW = re.compile(
    r"^``(?P<name>[a-z_][a-z0-9_]*)``\s+(?P<kind>counter|gauge|histogram)\b"
)

FunctionDefs = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/serve/engine.py`` → ``repro.serve.engine`` (the ``src``
    layout prefix is dropped so absolute imports resolve);
    ``pkg/__init__.py`` → ``pkg``.
    """
    name = path.replace("\\", "/")
    if name.endswith(".py"):
        name = name[: -len(".py")]
    parts = [part for part in name.split("/") if part not in ("", ".")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class CallRef:
    """One raw call site: the callee's attribute chain plus context."""

    __slots__ = ("chain", "line", "col", "in_loop")

    def __init__(
        self, chain: Tuple[str, ...], line: int, col: int, in_loop: bool
    ):
        self.chain = chain
        self.line = line
        self.col = col
        self.in_loop = in_loop

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chain": list(self.chain),
            "line": self.line,
            "col": self.col,
            "in_loop": self.in_loop,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CallRef":
        return cls(
            tuple(payload["chain"]),
            int(payload["line"]),
            int(payload["col"]),
            bool(payload["in_loop"]),
        )

    def __repr__(self) -> str:
        return "CallRef(%s:%d)" % (".".join(self.chain), self.line)


class FunctionSummary:
    """One function or method: identity, call sites, types, facts."""

    __slots__ = (
        "name",
        "cls",
        "line",
        "col",
        "is_hot_path",
        "is_cold_path",
        "calls",
        "local_types",
        "facts",
    )

    def __init__(
        self,
        name: str,
        cls: Optional[str],
        line: int,
        col: int,
        is_hot_path: bool,
        is_cold_path: bool,
        calls: List[CallRef],
        local_types: Dict[str, Tuple[str, ...]],
        facts: Dict[str, Any],
    ):
        self.name = name
        self.cls = cls
        self.line = line
        self.col = col
        self.is_hot_path = is_hot_path
        self.is_cold_path = is_cold_path
        self.calls = calls
        self.local_types = local_types
        self.facts = facts

    def qname(self, module: str) -> str:
        if self.cls:
            return "%s.%s.%s" % (module, self.cls, self.name)
        return "%s.%s" % (module, self.name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "col": self.col,
            "is_hot_path": self.is_hot_path,
            "is_cold_path": self.is_cold_path,
            "calls": [ref.to_dict() for ref in self.calls],
            "local_types": {
                key: list(value) for key, value in self.local_types.items()
            },
            "facts": self.facts,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            payload["name"],
            payload.get("cls"),
            int(payload["line"]),
            int(payload["col"]),
            bool(payload["is_hot_path"]),
            bool(payload.get("is_cold_path", False)),
            [CallRef.from_dict(ref) for ref in payload["calls"]],
            {
                key: tuple(value)
                for key, value in payload["local_types"].items()
            },
            payload["facts"],
        )

    def __repr__(self) -> str:
        return "FunctionSummary(%s)" % (
            "%s.%s" % (self.cls, self.name) if self.cls else self.name
        )


class ClassSummary:
    """One class: bases (raw chains), methods, attribute type hints."""

    __slots__ = ("name", "line", "bases", "methods", "attr_types")

    def __init__(
        self,
        name: str,
        line: int,
        bases: List[Tuple[str, ...]],
        methods: List[str],
        attr_types: Dict[str, Tuple[str, ...]],
    ):
        self.name = name
        self.line = line
        self.bases = bases
        self.methods = methods
        self.attr_types = attr_types

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": [list(base) for base in self.bases],
            "methods": self.methods,
            "attr_types": {
                key: list(value) for key, value in self.attr_types.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClassSummary":
        return cls(
            payload["name"],
            int(payload["line"]),
            [tuple(base) for base in payload["bases"]],
            list(payload["methods"]),
            {
                key: tuple(value)
                for key, value in payload["attr_types"].items()
            },
        )

    def __repr__(self) -> str:
        return "ClassSummary(%s)" % self.name


class ModuleSummary:
    """Everything the graph layer knows about one file."""

    __slots__ = (
        "path",
        "module",
        "package",
        "imports",
        "functions",
        "classes",
        "metric_calls",
        "metric_table",
    )

    def __init__(
        self,
        path: str,
        module: str,
        package: str,
        imports: Dict[str, str],
        functions: List[FunctionSummary],
        classes: List[ClassSummary],
        metric_calls: List[List[Any]],
        metric_table: List[List[Any]],
    ):
        self.path = path
        self.module = module
        self.package = package
        self.imports = imports
        self.functions = functions
        self.classes = classes
        #: ``[name, kind, line, col]`` of every literal metric
        #: registration (``reg.counter("x", ...)``) in the file.
        self.metric_calls = metric_calls
        #: ``[name, kind, line]`` docstring-table rows (catalogue only).
        self.metric_table = metric_table

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "path": self.path,
            "module": self.module,
            "package": self.package,
            "imports": self.imports,
            "functions": [func.to_dict() for func in self.functions],
            "classes": [klass.to_dict() for klass in self.classes],
            "metric_calls": self.metric_calls,
            "metric_table": self.metric_table,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            payload["path"],
            payload["module"],
            payload["package"],
            dict(payload["imports"]),
            [FunctionSummary.from_dict(f) for f in payload["functions"]],
            [ClassSummary.from_dict(c) for c in payload["classes"]],
            [list(row) for row in payload["metric_calls"]],
            [list(row) for row in payload["metric_table"]],
        )

    def __repr__(self) -> str:
        return "ModuleSummary(%s, %d functions)" % (
            self.module, len(self.functions),
        )


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
def summarize_source(source) -> ModuleSummary:
    """Summarize one parsed :class:`~repro.analyzer.engine.SourceFile`."""
    module = module_name_for_path(source.path)
    is_package = source.path.replace("\\", "/").endswith("__init__.py")
    package = module if is_package else module.rpartition(".")[0]
    tree = source.tree
    imports: Dict[str, str] = {}
    functions: List[FunctionSummary] = []
    classes: List[ClassSummary] = []
    documented = _suppression_lines(source)
    if tree is not None:
        _collect_imports(tree, package, imports)
        for node in tree.body:
            if isinstance(node, FunctionDefs):
                functions.append(_summarize_function(node, None, documented))
            elif isinstance(node, ast.ClassDef):
                klass, methods = _summarize_class(node, documented)
                classes.append(klass)
                functions.extend(methods)
    metric_calls = _metric_calls(tree) if tree is not None else []
    metric_table = _metric_table(source)
    return ModuleSummary(
        source.path,
        module,
        package,
        imports,
        functions,
        classes,
        metric_calls,
        metric_table,
    )


def _suppression_lines(source) -> Dict[int, Set[str]]:
    """Line → codes an existing suppression covers (RC116's
    ``documented`` bit: a loop whose RC106 bound is already stated in
    a noqa reason needs no second flag from the closure rule)."""
    covered: Dict[int, Set[str]] = {}
    for suppression in getattr(source, "suppressions", ()):
        lines = [suppression.line]
        if suppression.standalone:
            lines.append(suppression.line + 1)
        for line in lines:
            covered.setdefault(line, set()).update(suppression.codes)
    return covered


def _collect_imports(
    tree: ast.AST, package: str, imports: Dict[str, str]
) -> None:
    """Alias → dotted target for every import anywhere in the file."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            base = node.module or ""
            if node.level:
                anchor = package
                for _ in range(node.level - 1):
                    anchor = anchor.rpartition(".")[0]
                base = (
                    "%s.%s" % (anchor, node.module)
                    if node.module
                    else anchor
                )
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = "%s.%s" % (base, alias.name) if base else alias.name
                imports[alias.asname or alias.name] = target


def _summarize_class(
    node: ast.ClassDef, documented: Dict[int, Set[str]]
) -> Tuple[ClassSummary, List[FunctionSummary]]:
    methods: List[FunctionSummary] = []
    attr_types: Dict[str, Tuple[str, ...]] = {}
    for child in node.body:
        if isinstance(child, FunctionDefs):
            summary = _summarize_function(child, node.name, documented)
            methods.append(summary)
            _collect_attr_types(child, summary.local_types, attr_types)
    bases = []
    for base in node.bases:
        chain = _facts.attribute_chain(base)
        if chain is not None:
            bases.append(chain)
    klass = ClassSummary(
        node.name,
        node.lineno,
        bases,
        [method.name for method in methods],
        attr_types,
    )
    return klass, methods


def _collect_attr_types(
    func: ast.AST,
    local_types: Dict[str, Tuple[str, ...]],
    attr_types: Dict[str, Tuple[str, ...]],
) -> None:
    """``self.x = <ctor or typed local>`` → attribute type hints."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        chain = _value_type_chain(node.value, local_types)
        if chain is not None:
            attr_types.setdefault(target.attr, chain)


def _value_type_chain(
    value: ast.expr, local_types: Dict[str, Tuple[str, ...]]
) -> Optional[Tuple[str, ...]]:
    """The type chain a value expression implies, if any."""
    if isinstance(value, ast.Call):
        chain = _facts.attribute_chain(value.func)
        if chain is not None and chain[-1][:1].isupper():
            return chain
        return None
    if isinstance(value, ast.Name):
        return local_types.get(value.id)
    return None


def _annotation_chain(node: Optional[ast.expr]) -> Optional[Tuple[str, ...]]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):  # Optional[X] → X
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[0]
        return _annotation_chain(inner)
    return _facts.attribute_chain(node)


def _summarize_function(
    node, cls: Optional[str], documented: Dict[int, Set[str]]
) -> FunctionSummary:
    local_types: Dict[str, Tuple[str, ...]] = {}
    args = node.args
    all_args = list(
        getattr(args, "posonlyargs", [])
    ) + list(args.args) + list(args.kwonlyargs)
    for arg in all_args:
        chain = _annotation_chain(arg.annotation)
        if chain is not None:
            local_types[arg.arg] = chain
    calls: List[CallRef] = []
    _collect_calls(node, 0, calls, local_types)
    facts = {
        "purity": _facts.purity_facts(node),
        "rng": _facts.rng_facts(node, documented),
        "stores": _facts.store_facts(node),
        "loops": _facts.loop_facts(node, documented),
    }
    return FunctionSummary(
        node.name,
        cls,
        node.lineno,
        node.col_offset + 1,
        is_hot_path_function(node),
        is_cold_path_function(node),
        calls,
        local_types,
        facts,
    )


def _collect_calls(
    node: ast.AST,
    loop_depth: int,
    calls: List[CallRef],
    local_types: Dict[str, Tuple[str, ...]],
) -> None:
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
        if isinstance(target, ast.Name):
            chain = _value_type_chain(node.value, local_types)
            if chain is not None:
                local_types.setdefault(target.id, chain)
    elif isinstance(node, ast.AnnAssign) and isinstance(
        node.target, ast.Name
    ):
        chain = _annotation_chain(node.annotation)
        if chain is not None:
            local_types.setdefault(node.target.id, chain)
    if isinstance(node, ast.Call):
        chain = _facts.attribute_chain(node.func)
        if chain is not None:
            calls.append(
                CallRef(
                    chain,
                    node.lineno,
                    node.col_offset + 1,
                    loop_depth > 0,
                )
            )
    depth = loop_depth + (1 if isinstance(node, _facts.LOOP_NODES) else 0)
    for child in ast.iter_child_nodes(node):
        _collect_calls(child, depth, calls, local_types)


def _metric_calls(tree: ast.AST) -> List[List[Any]]:
    calls: List[List[Any]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if (
            not isinstance(callee, ast.Attribute)
            or callee.attr not in _METRIC_KINDS
        ):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            calls.append(
                [first.value, callee.attr, node.lineno, node.col_offset + 1]
            )
    return calls


def _metric_table(source) -> List[List[Any]]:
    rows: List[List[Any]] = []
    for number, line in enumerate(getattr(source, "lines", ()), start=1):
        match = _TABLE_ROW.match(line.strip())
        if match is not None:
            rows.append([match.group("name"), match.group("kind"), number])
    return rows


def summarize_sources(sources: Sequence[Any]) -> Dict[str, ModuleSummary]:
    """``path → summary`` for a batch of parsed files."""
    return {source.path: summarize_source(source) for source in sources}
