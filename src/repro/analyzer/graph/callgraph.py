"""Resolve module summaries into a whole-program call graph.

Resolution rules (deliberately lightweight — see DESIGN.md §9 for the
imprecision budget):

* plain names resolve through the module's own functions/classes, then
  its import table (``from a.b import f`` binds ``f → a.b.f``);
* dotted chains resolve their first segment through the import table
  and the rest through the module/class index (``dispatch.probe_one``
  → ``repro.serve.dispatch.probe_one``); relative imports are anchored
  at the summarizing module's package;
* ``self.m()`` / ``cls.m()`` resolve within the enclosing class, then
  depth-first through its statically named bases;
* ``obj.m()`` resolves when ``obj``'s type is locally evident — an
  annotated parameter, ``obj = SomeClass(...)``, or a ``self.attr``
  assigned one of those in any method of the class;
* calls to a class resolve to its ``__init__`` when one is defined.

Anything else (callbacks, dict-of-functions dispatch, ``getattr``) is
left unresolved: the graph under-approximates, so closure rules can
miss but never hallucinate an edge.  Reachability keeps first-seen
parent pointers, so every finding can print the concrete entry→sink
call path that makes it actionable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analyzer.graph.summary import (
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
)


class FunctionNode:
    """One function/method in the whole-program graph."""

    __slots__ = ("qname", "path", "module", "summary")

    def __init__(
        self, qname: str, path: str, module: str, summary: FunctionSummary
    ):
        self.qname = qname
        self.path = path
        self.module = module
        self.summary = summary

    @property
    def is_hot_path(self) -> bool:
        return self.summary.is_hot_path

    @property
    def is_cold_path(self) -> bool:
        return self.summary.is_cold_path

    @property
    def name(self) -> str:
        return self.summary.name

    @property
    def cls(self) -> Optional[str]:
        return self.summary.cls

    @property
    def line(self) -> int:
        return self.summary.line

    def facts(self, family: str) -> List:
        return self.summary.facts.get(family, [])

    def __repr__(self) -> str:
        return "FunctionNode(%s)" % self.qname


class CallEdge:
    """One resolved call site: caller → callee at ``path:line``."""

    __slots__ = ("caller", "callee", "path", "line", "col", "in_loop")

    def __init__(
        self,
        caller: str,
        callee: str,
        path: str,
        line: int,
        col: int,
        in_loop: bool,
    ):
        self.caller = caller
        self.callee = callee
        self.path = path
        self.line = line
        self.col = col
        self.in_loop = in_loop

    def __repr__(self) -> str:
        return "CallEdge(%s -> %s @%s:%d)" % (
            self.caller, self.callee, self.path, self.line,
        )


class CallGraph:
    """The resolved graph plus the queries the rules need."""

    def __init__(self, summaries: Dict[str, ModuleSummary]):
        self.summaries = summaries
        #: qname → node, for every summarized function/method.
        self.functions: Dict[str, FunctionNode] = {}
        #: module dotted name → summary.
        self.modules: Dict[str, ModuleSummary] = {}
        #: class qname (module.Class) → summary.
        self.classes: Dict[str, ClassSummary] = {}
        self._class_short: Dict[str, List[str]] = {}
        self.out_edges: Dict[str, List[CallEdge]] = {}
        self.in_edges: Dict[str, List[CallEdge]] = {}
        self._build_index()
        self._resolve_edges()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_index(self) -> None:
        for path in sorted(self.summaries):
            summary = self.summaries[path]
            self.modules[summary.module] = summary
            for klass in summary.classes:
                qname = "%s.%s" % (summary.module, klass.name)
                self.classes[qname] = klass
                self._class_short.setdefault(klass.name, []).append(qname)
            for func in summary.functions:
                qname = func.qname(summary.module)
                self.functions[qname] = FunctionNode(
                    qname, path, summary.module, func
                )

    def _resolve_edges(self) -> None:
        for path in sorted(self.summaries):
            summary = self.summaries[path]
            for func in summary.functions:
                caller = func.qname(summary.module)
                for ref in func.calls:
                    callee = self._resolve_call(summary, func, ref.chain)
                    if callee is None or callee == caller:
                        continue
                    edge = CallEdge(
                        caller, callee, path, ref.line, ref.col, ref.in_loop
                    )
                    self.out_edges.setdefault(caller, []).append(edge)
                    self.in_edges.setdefault(callee, []).append(edge)

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def _resolve_call(
        self,
        summary: ModuleSummary,
        func: FunctionSummary,
        chain: Tuple[str, ...],
    ) -> Optional[str]:
        if not chain:
            return None
        head = chain[0]
        if head in ("self", "cls"):
            if func.cls is None or len(chain) < 2:
                return None
            return self._resolve_self_call(summary, func, chain)
        if len(chain) == 1:
            return self._resolve_plain(summary, head)
        # obj.m(...) with a locally evident type.
        local = func.local_types.get(head)
        if local is not None:
            klass = self._resolve_type_chain(summary, local)
            if klass is not None:
                return self._resolve_through_attrs(
                    summary, klass, chain[1:]
                )
        # Module-qualified (or class-qualified) chain via imports.
        target = summary.imports.get(head)
        if target is not None:
            return self._lookup_dotted(
                "%s.%s" % (target, ".".join(chain[1:]))
            )
        # A class defined in this module: ClassName.method(...).
        klass_qname = "%s.%s" % (summary.module, head)
        if klass_qname in self.classes and len(chain) == 2:
            return self._find_method(klass_qname, chain[1])
        return None

    def _resolve_self_call(
        self,
        summary: ModuleSummary,
        func: FunctionSummary,
        chain: Tuple[str, ...],
    ) -> Optional[str]:
        klass_qname = "%s.%s" % (summary.module, func.cls)
        if len(chain) == 2:
            return self._find_method(klass_qname, chain[1])
        # self.attr.m(...): follow the attribute's recorded type.
        klass = self.classes.get(klass_qname)
        if klass is None:
            return None
        attr_type = klass.attr_types.get(chain[1])
        if attr_type is None:
            return None
        target = self._resolve_type_chain(summary, attr_type)
        if target is None:
            return None
        return self._resolve_through_attrs(summary, target, chain[2:])

    def _resolve_through_attrs(
        self,
        summary: ModuleSummary,
        klass_qname: str,
        rest: Tuple[str, ...],
    ) -> Optional[str]:
        """Walk ``.a.b.m()`` through attribute types to a method."""
        current = klass_qname
        for index, part in enumerate(rest):
            if index == len(rest) - 1:
                return self._find_method(current, part)
            klass = self.classes.get(current)
            if klass is None:
                return None
            attr_type = klass.attr_types.get(part)
            if attr_type is None:
                return None
            resolved = self._resolve_type_chain(summary, attr_type)
            if resolved is None:
                return None
            current = resolved
        return None

    def _resolve_plain(
        self, summary: ModuleSummary, name: str
    ) -> Optional[str]:
        qname = "%s.%s" % (summary.module, name)
        if qname in self.functions:
            return qname
        if qname in self.classes:
            return self._find_method(qname, "__init__")
        target = summary.imports.get(name)
        if target is not None:
            return self._lookup_dotted(target)
        return None

    def _lookup_dotted(self, dotted: str) -> Optional[str]:
        """``a.b.c.f`` / ``a.b.C.m`` / ``a.b.C`` → function qname."""
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module not in self.modules:
                continue
            rest = parts[split:]
            if len(rest) == 1:
                qname = "%s.%s" % (module, rest[0])
                if qname in self.functions:
                    return qname
                if qname in self.classes:
                    return self._find_method(qname, "__init__")
                return None
            if len(rest) == 2:
                return self._find_method(
                    "%s.%s" % (module, rest[0]), rest[1]
                )
            return None
        return None

    def _resolve_type_chain(
        self, summary: ModuleSummary, chain: Tuple[str, ...]
    ) -> Optional[str]:
        """A type hint chain (``("CompiledTrie",)``, ``("compile",
        "CompiledTrie")``) → class qname, if the class is summarized."""
        head = chain[0]
        if len(chain) == 1:
            qname = "%s.%s" % (summary.module, head)
            if qname in self.classes:
                return qname
            target = summary.imports.get(head)
            if target is not None:
                resolved = self._class_by_dotted(target)
                if resolved is not None:
                    return resolved
            # Unique short-name fallback: annotations often name a
            # class the module never imports at runtime.
            candidates = self._class_short.get(head, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        target = summary.imports.get(head)
        if target is not None:
            return self._class_by_dotted(
                "%s.%s" % (target, ".".join(chain[1:]))
            )
        return self._class_by_dotted(".".join(chain))

    def _class_by_dotted(self, dotted: str) -> Optional[str]:
        if dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module in self.modules and len(parts) - split == 1:
                qname = "%s.%s" % (module, parts[split])
                return qname if qname in self.classes else None
        return None

    def _find_method(
        self,
        klass_qname: str,
        name: str,
        _visited: Optional[Set[str]] = None,
    ) -> Optional[str]:
        """Method lookup through the class and its named bases."""
        visited = _visited if _visited is not None else set()
        if klass_qname in visited:
            return None
        visited.add(klass_qname)
        klass = self.classes.get(klass_qname)
        if klass is None:
            return None
        if name in klass.methods:
            qname = "%s.%s" % (klass_qname, name)
            if qname in self.functions:
                return qname
        module = klass_qname.rpartition(".")[0]
        summary = self.modules.get(module)
        if summary is None:
            return None
        for base in klass.bases:
            base_qname = self._resolve_type_chain(summary, base)
            if base_qname is None:
                continue
            found = self._find_method(base_qname, name, visited)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def resolve_base_type(
        self,
        node: FunctionNode,
        chain: Sequence[str],
    ) -> Optional[str]:
        """Class qname of the object a store-base chain denotes inside
        ``node``, when its type is locally evident (RC115's question:
        is ``trie`` in ``trie.child[i] = x`` a ``CompiledTrie``?)."""
        if not chain:
            return None
        summary = self.modules.get(node.module)
        func = node.summary
        if summary is None:
            return None
        head = chain[0]
        if head in ("self", "cls") and func.cls is not None:
            klass_qname = "%s.%s" % (summary.module, func.cls)
            if len(chain) == 1:
                return (
                    klass_qname if klass_qname in self.classes else None
                )
            klass = self.classes.get(klass_qname)
            if klass is None or len(chain) != 2:
                return None
            attr_type = klass.attr_types.get(chain[1])
            if attr_type is None:
                return None
            return self._resolve_type_chain(summary, attr_type)
        if len(chain) == 1:
            local = func.local_types.get(head)
            if local is not None:
                return self._resolve_type_chain(summary, local)
        return None

    def reachable_from(
        self, entries: Iterable[str], barrier=None
    ) -> Dict[str, Optional[CallEdge]]:
        """BFS closure with first-seen parent edges (entries → None).

        Deterministic: entries are visited sorted, edges in file order,
        so the reported witness path is stable across runs.  A node for
        which ``barrier(node)`` is true is recorded (its path remains
        printable) but never expanded — RC113 passes the ``@cold_path``
        test here so sanctioned slow-path subtrees stay out of the
        closure.
        """
        parents: Dict[str, Optional[CallEdge]] = {}
        frontier: List[str] = []
        for entry in sorted(set(entries)):
            if entry in self.functions and entry not in parents:
                parents[entry] = None
                frontier.append(entry)
        while frontier:
            next_frontier: List[str] = []
            for qname in frontier:
                for edge in self.out_edges.get(qname, ()):
                    if edge.callee in parents:
                        continue
                    parents[edge.callee] = edge
                    if barrier is not None and barrier(
                        self.functions[edge.callee]
                    ):
                        continue
                    next_frontier.append(edge.callee)
            frontier = next_frontier
        return parents

    def witness_path(
        self, parents: Dict[str, Optional[CallEdge]], qname: str
    ) -> List[CallEdge]:
        """The entry→``qname`` edges recorded by :meth:`reachable_from`."""
        edges: List[CallEdge] = []
        current = qname
        # repro: noqa[RC106] -- parent pointers are acyclic by BFS construction
        while True:
            edge = parents.get(current)
            if edge is None:
                break
            edges.append(edge)
            current = edge.caller
        edges.reverse()
        return edges

    def format_path(
        self, parents: Dict[str, Optional[CallEdge]], qname: str
    ) -> str:
        """``entry -> mid [file:line] -> sink [file:line]``."""
        edges = self.witness_path(parents, qname)
        if not edges:
            return qname
        parts = [edges[0].caller]
        for edge in edges:
            parts.append(
                "%s [%s:%d]" % (edge.callee, edge.path, edge.line)
            )
        return " -> ".join(parts)

    def path_in_loop(
        self, parents: Dict[str, Optional[CallEdge]], qname: str
    ) -> bool:
        """True when any call site on the witness path sits in a loop."""
        return any(
            edge.in_loop for edge in self.witness_path(parents, qname)
        )

    def roots_of(self, qname: str) -> List[str]:
        """Caller-closure roots: functions with no summarized callers
        from which ``qname`` is reachable (``qname`` itself when it has
        no callers at all)."""
        seen: Set[str] = set()
        stack = [qname]
        roots: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            callers = self.in_edges.get(current, ())
            if not callers:
                roots.add(current)
                continue
            for edge in callers:
                stack.append(edge.caller)
        return sorted(roots)

    # ------------------------------------------------------------------
    # file-level dependency structure (incremental cache)
    # ------------------------------------------------------------------
    def file_edges(self) -> Dict[str, Set[str]]:
        """caller-file → callee-files (cross-file edges only)."""
        adjacency: Dict[str, Set[str]] = {}
        for edges in self.out_edges.values():
            for edge in edges:
                callee_path = self.functions[edge.callee].path
                if callee_path != edge.path:
                    adjacency.setdefault(edge.path, set()).add(callee_path)
        return adjacency

    def caller_closure_files(self, path: str) -> Set[str]:
        """``path`` plus every file that can (transitively) call into
        it — the files whose edits can change ``path``'s
        interprocedural findings, hence its cache signature."""
        reverse: Dict[str, Set[str]] = {}
        for caller_path, callee_paths in self.file_edges().items():
            for callee_path in callee_paths:
                reverse.setdefault(callee_path, set()).add(caller_path)
        closure = {path}
        stack = [path]
        while stack:
            current = stack.pop()
            for caller_path in reverse.get(current, ()):
                if caller_path not in closure:
                    closure.add(caller_path)
                    stack.append(caller_path)
        return closure

    def forward_closure_files(self, path: str) -> Set[str]:
        """``path`` plus every file it (transitively) calls into — the
        set a *touch* of ``path`` invalidates."""
        adjacency = self.file_edges()
        closure = {path}
        stack = [path]
        while stack:
            current = stack.pop()
            for callee_path in adjacency.get(current, ()):
                if callee_path not in closure:
                    closure.add(callee_path)
                    stack.append(callee_path)
        return closure

    def __repr__(self) -> str:
        edges = sum(len(e) for e in self.out_edges.values())
        return "CallGraph(%d functions, %d edges)" % (
            len(self.functions), edges,
        )


def build_call_graph(
    summaries: "Dict[str, ModuleSummary] | Sequence[ModuleSummary]",
) -> CallGraph:
    """The graph over ``summaries`` (mapping by path, or a sequence)."""
    if not isinstance(summaries, dict):
        summaries = {summary.path: summary for summary in summaries}
    return CallGraph(summaries)
