"""Crossing an autonomous system: BGP over OSPF (§5.2).

A packet entering an AS at border router B1 is resolved in *two passes*:
the first walk of B1's table finds the destination's BMP, whose next hop
is the BGP router B2 on the far side of the AS (an address, not an
interface); the second walk resolves that address through the IGP routes.

The paper's observation: the clue stamped on the packet is still the
*first* BMP — interior and far-side routers look the destination up, not
B1's egress — so distributed IP lookup keeps working across the AS.

The scenario here is the concrete chain

    R0 (external) → B1 (border, two-pass) → I1 → … → B2 (border)

where every router carries the external route table (1999-style interiors
did) plus the IGP infrastructure routes, and all of them speak clues.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.addressing import Address, Prefix
from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.lookup import BASELINES
from repro.lookup.counters import MemoryCounter
from repro.routing.twopass import RecursiveNextHop, TwoPassLookup
from repro.tablegen.neighbors import NeighborProfile, derive_neighbor
from repro.tablegen.synthetic import Entry, generate_table

#: Infrastructure block holding the routers' own addresses.
INFRA_BLOCK = Prefix.parse("192.168.0.0/16")


class TransitHopReport:
    """Per-hop outcome of one packet crossing the AS."""

    __slots__ = ("router", "accesses", "bmp", "passes")

    def __init__(self, router: str, accesses: int, bmp: Optional[Prefix], passes: int):
        self.router = router
        self.accesses = accesses
        self.bmp = bmp
        self.passes = passes

    def __repr__(self) -> str:
        return "TransitHopReport(%s, refs=%d, passes=%d)" % (
            self.router,
            self.accesses,
            self.passes,
        )


class TransitScenario:
    """An external sender, a two-pass border router, and an AS interior."""

    def __init__(
        self,
        interior_hops: int = 2,
        table_size: int = 1500,
        seed: int = 0,
        technique: str = "patricia",
    ):
        if interior_hops < 0:
            raise ValueError("interior hop count cannot be negative")
        self.technique = technique
        self.names = (
            ["R0", "B1"]
            + ["I%d" % i for i in range(1, interior_hops + 1)]
            + ["B2"]
        )
        rng = random.Random(seed)
        #: B2's loopback: what B1's BGP routes recursively resolve to.
        self.egress_address = INFRA_BLOCK.random_address(rng)
        egress_route = (self.egress_address.prefix(32), "igp-port-to-B2")

        external = generate_table(table_size, seed=seed)
        external = [
            (prefix, hop)
            for prefix, hop in external
            if not INFRA_BLOCK.is_prefix_of(prefix) and not prefix.is_prefix_of(INFRA_BLOCK)
        ]
        profile = NeighborProfile()
        tables: Dict[str, List[Entry]] = {}
        previous = external
        for index, name in enumerate(self.names):
            table = previous if index == 0 else derive_neighbor(
                previous, profile, seed=seed + index
            )
            previous = table
            tables[name] = list(table)
        # B1's BGP routes resolve recursively through the IGP (§5.2).
        tables["B1"] = [
            (prefix, RecursiveNextHop(self.egress_address))
            for prefix, _hop in tables["B1"]
        ] + [egress_route]
        for name in self.names[2:]:
            tables[name] = sorted(
                tables[name] + [egress_route],
                key=lambda item: (item[0].length, item[0].bits),
            )
        self.tables = tables

        self.receivers = {
            name: ReceiverState(tables[name]) for name in self.names
        }
        self.bases = {
            name: BASELINES[technique](self.receivers[name].entries)
            for name in self.names
        }
        self.border_two_pass = TwoPassLookup(self.bases["B1"])
        #: clue machinery per downstream adjacency.
        from repro.trie.binary_trie import BinaryTrie

        self.assisted: Dict[str, ClueAssistedLookup] = {}
        for upstream, name in zip(self.names, self.names[1:]):
            method = AdvanceMethod(
                BinaryTrie.from_prefixes(tables[upstream]),
                self.receivers[name],
                technique,
            )
            self.assisted[name] = ClueAssistedLookup(
                self.bases[name], method.build_table()
            )
        from repro.trie.binary_trie import BinaryTrie as _BT

        self._external_trie = _BT.from_prefixes(tables["R0"])

    # ------------------------------------------------------------------
    def route(self, destination: Address) -> List[TransitHopReport]:
        """One packet across the chain; returns the per-hop record."""
        reports: List[TransitHopReport] = []
        counter = MemoryCounter()
        first = self.bases["R0"].lookup(destination, counter)
        reports.append(TransitHopReport("R0", counter.accesses, first.prefix, 1))
        clue = first.prefix

        # B1: clue-assisted first pass, then the IGP resolution pass.
        counter = MemoryCounter()
        border = self.assisted["B1"].lookup(destination, clue, counter)
        passes = 1
        if isinstance(border.next_hop, RecursiveNextHop):
            self.bases["B1"].lookup(border.next_hop.egress_address, counter)
            passes = 2
        reports.append(
            TransitHopReport("B1", counter.accesses, border.prefix, passes)
        )
        # §5.2: the clue placed on the packet is still the FIRST BMP.
        clue = border.prefix

        for name in self.names[2:]:
            counter = MemoryCounter()
            result = self.assisted[name].lookup(destination, clue, counter)
            reports.append(
                TransitHopReport(name, counter.accesses, result.prefix, 1)
            )
            clue = result.prefix
        return reports

    def sample_destination(self, rng: random.Random) -> Optional[Address]:
        """A destination the external sender actually routes."""
        entries = self.tables["R0"]
        prefix, _hop = entries[rng.randrange(len(entries))]
        destination = prefix.random_address(rng)
        if self._external_trie.best_prefix(destination) is None:
            return None
        return destination

    def average_costs(self, packets: int = 300, seed: int = 1) -> Dict[str, float]:
        """Average per-router references over a packet stream."""
        rng = random.Random(seed)
        totals = {name: 0 for name in self.names}
        measured = 0
        while measured < packets:
            destination = self.sample_destination(rng)
            if destination is None:
                continue
            for report in self.route(destination):
                totals[report.router] += report.accesses
            measured += 1
        return {name: total / packets for name, total in totals.items()}
