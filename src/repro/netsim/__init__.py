"""Network simulation: clue-aware forwarding, MPLS, deployment studies."""

from repro.netsim.flows import FlowExperiment, SchemeCost, pareto_flow_sizes
from repro.netsim.heterogeneous import (
    DeploymentPoint,
    build_neighbor_chain,
    deployment_sweep,
    rehop,
)
from repro.netsim.loadbalance import (
    ShapingReport,
    shape_sender_table,
    shaping_report,
)
from repro.netsim.mpls import AggregationScenario, LabelEntry, MplsRouter
from repro.netsim.multicast import (
    MULTICAST_BLOCK,
    MulticastForwarder,
    derive_neighbor_groups,
    generate_group_table,
)
from repro.netsim.invariant import wrong_hop_details, wrong_hops
from repro.netsim.network import DeliveryReport, Network
from repro.netsim.packet import HopRecord, Packet
from repro.netsim.path_profile import (
    DEFAULT_LENGTH_PROFILE,
    ChainScenario,
    PathProfile,
)
from repro.netsim.robustness import (
    RobustnessPoint,
    stale_table_experiment,
    truncated_clue_experiment,
    withheld_clue_experiment,
    withheld_mask,
)
from repro.netsim.router import ClueRouter, LegacyRouter, Router
from repro.netsim.transit import TransitHopReport, TransitScenario

__all__ = [
    "AggregationScenario",
    "ChainScenario",
    "ClueRouter",
    "DEFAULT_LENGTH_PROFILE",
    "DeliveryReport",
    "DeploymentPoint",
    "FlowExperiment",
    "HopRecord",
    "SchemeCost",
    "pareto_flow_sizes",
    "LabelEntry",
    "LegacyRouter",
    "MULTICAST_BLOCK",
    "MplsRouter",
    "MulticastForwarder",
    "Network",
    "TransitHopReport",
    "TransitScenario",
    "derive_neighbor_groups",
    "generate_group_table",
    "Packet",
    "PathProfile",
    "RobustnessPoint",
    "Router",
    "ShapingReport",
    "build_neighbor_chain",
    "deployment_sweep",
    "rehop",
    "shape_sender_table",
    "shaping_report",
    "stale_table_experiment",
    "truncated_clue_experiment",
    "withheld_clue_experiment",
    "withheld_mask",
    "wrong_hop_details",
    "wrong_hops",
]
