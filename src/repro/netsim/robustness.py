"""Robustness of the clue scheme (§5.3 and the §1 robustness claim).

The paper argues "even if neighbouring routers are slightly
un-coordinated the clues they send each other can not cause any
confusion".  This module turns that claim into measurable experiments:

* **truncated clues** — a privacy-conscious sender shortens its clues;
  the receiver must stay correct (an unknown truncated clue is just a
  table miss → full lookup), only the speedup degrades;
* **stale clue tables** — the receiver's Advance tables were built
  against an *old* snapshot of the sender's table; the Simple method is
  provably immune (its entries never consult the sender's table), while
  Advance may return a prefix shorter than the local optimum — we count
  exactly how often;
* **withheld clues** — a fraction of packets arrive with no clue at all
  (the sender may "refrain from sending some clues").

All experiments report both a correctness rate (against the receiver's
own full-lookup oracle) and the average memory references.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.addressing import Address, Prefix
from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.core.simple import SimpleMethod
from repro.lookup import BASELINES
from repro.lookup.counters import MemoryCounter
from repro.tablegen.synthetic import Entry
from repro.trie.binary_trie import BinaryTrie


class RobustnessPoint:
    """One experimental condition's outcome."""

    __slots__ = ("condition", "correct_rate", "avg_accesses", "samples")

    def __init__(
        self, condition: object, correct_rate: float, avg_accesses: float, samples: int
    ):
        self.condition = condition
        self.correct_rate = correct_rate
        self.avg_accesses = avg_accesses
        self.samples = samples

    def __repr__(self) -> str:
        return "RobustnessPoint(%r, correct=%.4f, accesses=%.3f)" % (
            self.condition,
            self.correct_rate,
            self.avg_accesses,
        )


def _measure(
    lookup: ClueAssistedLookup,
    receiver: ReceiverState,
    samples: Sequence[Tuple[Address, Optional[Prefix]]],
) -> Tuple[float, float]:
    """Correctness vs the receiver's oracle, and average references."""
    correct = 0
    accesses = 0
    for destination, clue in samples:
        counter = MemoryCounter()
        result = lookup.lookup(destination, clue, counter)
        accesses += counter.accesses
        oracle_prefix, _oracle_hop = receiver.best_match(destination)
        if result.prefix == oracle_prefix:
            correct += 1
    count = len(samples) or 1
    return correct / count, accesses / count


#: Rejection-sampling safety margin in :func:`_sample_destinations`:
#: give up after this many *misses per requested packet*.  Addresses
#: are drawn under the sender's own prefixes, so in any sane setup the
#: sender BMP exists on the first try; hitting the cap means the
#: entries and the trie disagree, and looping forever would hide that.
_SAMPLE_ATTEMPT_FACTOR = 50


def _sample_destinations(
    sender_entries: Sequence[Entry],
    sender_trie: BinaryTrie,
    packets: int,
    rng: random.Random,
) -> List[Tuple[Address, Prefix]]:
    """(destination, true sender BMP) pairs for traffic from the sender."""
    entries = list(sender_entries)
    if packets > 0 and not entries:
        raise ValueError(
            "cannot sample %d packets from an empty sender table" % packets
        )
    samples: List[Tuple[Address, Prefix]] = []
    attempts_left = packets * _SAMPLE_ATTEMPT_FACTOR
    while len(samples) < packets:
        if attempts_left <= 0:
            raise RuntimeError(
                "destination sampling stalled: %d/%d packets after %d "
                "attempts — the sender trie covers (almost) none of the "
                "sampled addresses; check that sender_entries and "
                "sender_trie describe the same table"
                % (len(samples), packets, packets * _SAMPLE_ATTEMPT_FACTOR)
            )
        attempts_left -= 1
        prefix, _hop = entries[rng.randrange(len(entries))]
        destination = prefix.random_address(rng)
        clue = sender_trie.best_prefix(destination)
        if clue is not None:
            samples.append((destination, clue))
    return samples


def withheld_mask(draws: Sequence[float], fraction: float) -> List[bool]:
    """Which packets withhold their clue at ``fraction``.

    One uniform draw per packet, thresholded — so masks for increasing
    fractions are *nested*: ``withheld_mask(d, f1) <= withheld_mask(d,
    f2)`` element-wise whenever ``f1 <= f2``.  Exposed (and property-
    tested) because the coupling is what makes the §5.3 sweep's points
    comparable.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fractions must be within [0, 1]")
    return [draw < fraction for draw in draws]


def truncated_clue_experiment(
    sender_entries: Sequence[Entry],
    receiver_entries: Sequence[Entry],
    max_lengths: Sequence[int],
    packets: int = 500,
    seed: int = 0,
    technique: str = "patricia",
    width: int = 32,
    rng: Optional[random.Random] = None,
) -> List[RobustnessPoint]:
    """Sweep the §5.3 clue-truncation limit.

    The clue table is still built over the sender's *full* clue universe
    plus its truncations, mirroring the paper's note that "truncated clues
    are also beneficial, perhaps not as much".

    All randomness flows through one ``rng`` (default: a fresh
    ``random.Random(seed)``), so callers composing several experiments
    can thread a single generator instead of juggling derived seeds.
    """
    if rng is None:
        rng = random.Random(seed)
    receiver = ReceiverState(receiver_entries, width)
    sender_trie = BinaryTrie.from_prefixes(sender_entries, width)
    method = AdvanceMethod(sender_trie, receiver, technique)
    clue_universe = list(sender_trie.prefixes())
    samples = _sample_destinations(sender_entries, sender_trie, packets, rng)
    points: List[RobustnessPoint] = []
    for limit in max_lengths:
        universe = {
            clue if clue.length <= limit else clue.truncate(limit)
            for clue in clue_universe
        }
        # A clue of length exactly ``limit`` may be a *truncation* of a
        # longer BMP, so Claim 1 (which assumes the clue is the sender's
        # true BMP) is unsound for it — those clues get Simple-style
        # entries, which are correct for any clue that prefixes the
        # destination.  Strictly-shorter clues always arrive untruncated.
        simple = SimpleMethod(receiver, technique)
        table = method.build_table(
            clue
            for clue in universe
            if clue.length < limit and sender_trie.contains(clue)
        )
        for clue in universe:
            if clue.length >= limit or not sender_trie.contains(clue):
                table.insert(simple.build_entry(clue))
        lookup = ClueAssistedLookup(
            BASELINES[technique](receiver.entries, width), table
        )
        truncated_samples = [
            (
                destination,
                clue if clue.length <= limit else clue.truncate(limit),
            )
            for destination, clue in samples
        ]
        correct, avg = _measure(lookup, receiver, truncated_samples)
        points.append(RobustnessPoint(limit, correct, avg, len(samples)))
    return points


def stale_table_experiment(
    old_sender_entries: Sequence[Entry],
    new_sender_entries: Sequence[Entry],
    receiver_entries: Sequence[Entry],
    packets: int = 500,
    seed: int = 0,
    technique: str = "patricia",
    width: int = 32,
    rng: Optional[random.Random] = None,
) -> dict:
    """Receiver's clue tables built from a stale sender snapshot.

    Traffic carries clues from the *new* sender table while the receiver's
    Advance machinery believes the *old* one.  Returns per-method
    robustness points: Simple must stay 100 % correct; Advance's error
    rate quantifies the staleness exposure.
    """
    if rng is None:
        rng = random.Random(seed)
    receiver = ReceiverState(receiver_entries, width)
    old_trie = BinaryTrie.from_prefixes(old_sender_entries, width)
    new_trie = BinaryTrie.from_prefixes(new_sender_entries, width)
    samples = _sample_destinations(new_sender_entries, new_trie, packets, rng)

    simple = SimpleMethod(receiver, technique)
    simple_table = simple.build_table(
        {clue for _dest, clue in samples}
    )
    simple_lookup = ClueAssistedLookup(
        BASELINES[technique](receiver.entries, width), simple_table
    )
    simple_correct, simple_avg = _measure(simple_lookup, receiver, samples)

    advance = AdvanceMethod(old_trie, receiver, technique)
    advance_table = advance.build_table()
    advance_lookup = ClueAssistedLookup(
        BASELINES[technique](receiver.entries, width), advance_table
    )
    advance_correct, advance_avg = _measure(advance_lookup, receiver, samples)

    return {
        "simple": RobustnessPoint("stale", simple_correct, simple_avg, len(samples)),
        "advance": RobustnessPoint(
            "stale", advance_correct, advance_avg, len(samples)
        ),
    }


def withheld_clue_experiment(
    sender_entries: Sequence[Entry],
    receiver_entries: Sequence[Entry],
    withhold_fractions: Sequence[float],
    packets: int = 500,
    seed: int = 0,
    technique: str = "patricia",
    width: int = 32,
    rng: Optional[random.Random] = None,
) -> List[RobustnessPoint]:
    """A fraction of packets arrive clue-less (sender refrains, §5.3).

    One uniform draw per packet is taken up front and shared by every
    fraction, so the withheld sets are *coupled*: each packet withheld at
    fraction ``f`` stays withheld at every ``f' > f``.  (The previous
    implementation reseeded with ``seed + 1`` per fraction, which both
    collided with other derived-seed streams and made the masks an
    accident of the seed arithmetic.)
    """
    # Validate every fraction before any expensive work: a bad value in
    # the tail of the sweep should not cost the whole table build first.
    fractions = list(withhold_fractions)
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                "fractions must be within [0, 1], got %r" % (fraction,)
            )
    if rng is None:
        rng = random.Random(seed)
    receiver = ReceiverState(receiver_entries, width)
    sender_trie = BinaryTrie.from_prefixes(sender_entries, width)
    method = AdvanceMethod(sender_trie, receiver, technique)
    lookup = ClueAssistedLookup(
        BASELINES[technique](receiver.entries, width), method.build_table()
    )
    samples = _sample_destinations(sender_entries, sender_trie, packets, rng)
    draws = [rng.random() for _ in samples]
    points: List[RobustnessPoint] = []
    for fraction in fractions:
        mask = withheld_mask(draws, fraction)
        conditioned = [
            (destination, None if withheld else clue)
            for (destination, clue), withheld in zip(samples, mask)
        ]
        correct, avg = _measure(lookup, receiver, conditioned)
        points.append(RobustnessPoint(fraction, correct, avg, len(samples)))
    return points
