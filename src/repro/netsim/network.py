"""The forwarding fabric: routers wired by their tables' next hops.

Next hops in a simulated forwarding table are router names; a packet is
delivered when the resolving router returns itself (local route) or a
name not present in the network (an egress).  The network also knows how
to assemble itself from a finished path-vector computation, registering
every adjacency so Advance clue tables can be built.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.addressing import Address
from repro.netsim.packet import Packet
from repro.netsim.router import ClueRouter, Router
from repro.routing.pathvector import PathVectorRouting


class DeliveryReport:
    """Outcome of forwarding one packet."""

    __slots__ = ("packet", "delivered", "path", "exit_reason")

    def __init__(
        self,
        packet: Packet,
        delivered: bool,
        path: List[str],
        exit_reason: str,
    ):
        self.packet = packet
        self.delivered = delivered
        self.path = path
        self.exit_reason = exit_reason

    def total_accesses(self) -> int:
        """Memory references spent across all hops."""
        return self.packet.total_accesses()

    def __repr__(self) -> str:
        return "DeliveryReport(delivered=%s, path=%s)" % (
            self.delivered,
            "->".join(self.path),
        )


class Network:
    """A set of routers addressable by name."""

    def __init__(self) -> None:
        self.routers: Dict[str, Router] = {}

    def add_router(self, router: Router) -> None:
        """Register a router; names must be unique."""
        if router.name in self.routers:
            raise ValueError("duplicate router name %r" % router.name)
        self.routers[router.name] = router

    def forward(
        self, packet: Packet, start: str, max_hops: Optional[int] = None
    ) -> DeliveryReport:
        """Forward the packet from ``start`` until delivery or failure."""
        if start not in self.routers:
            raise KeyError("unknown start router %r" % start)
        limit = max_hops if max_hops is not None else packet.ttl
        current: Optional[str] = start
        previous: Optional[str] = None
        path: List[str] = []
        for _hop in range(limit):
            router = self.routers[current]
            path.append(current)
            next_hop = router.process(packet, previous)
            if next_hop is None:
                return DeliveryReport(packet, False, path, "no-route")
            if next_hop == current:
                return DeliveryReport(packet, True, path, "local")
            if next_hop not in self.routers:
                return DeliveryReport(packet, True, path, "egress")
            previous, current = current, next_hop
        return DeliveryReport(packet, False, path, "ttl-exceeded")

    def send(
        self, destination: Address, start: str, max_hops: Optional[int] = None
    ) -> DeliveryReport:
        """Convenience: build a fresh packet for ``destination`` and forward."""
        return self.forward(Packet(destination), start, max_hops)

    @classmethod
    def from_pathvector(
        cls,
        routing: PathVectorRouting,
        technique: str = "patricia",
        method: str = "advance",
        width: int = 32,
    ) -> "Network":
        """Build a clue-router network from a converged route computation.

        Every adjacency registers the neighbour's table, so the Advance
        method is available on every link — modelling pre-processing table
        construction from the routing exchange (§3.3.2).
        """
        tables = routing.all_tables()
        network = cls()
        for name, entries in tables.items():
            network.add_router(
                ClueRouter(name, entries, technique=technique, method=method, width=width)
            )
        for name in routing.graph.nodes:
            router = network.routers[name]
            for neighbor in routing.graph.neighbors(name):
                router.register_neighbor(neighbor, tables[neighbor])
        return network

    def __len__(self) -> int:
        return len(self.routers)

    def __contains__(self, name: str) -> bool:
        return name in self.routers
