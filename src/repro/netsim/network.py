"""The forwarding fabric: routers wired by their tables' next hops.

Next hops in a simulated forwarding table are router names; a packet is
delivered when the resolving router returns itself (local route) or a
name not present in the network (an egress).  The network also knows how
to assemble itself from a finished path-vector computation, registering
every adjacency so Advance clue tables can be built.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.addressing import Address
from repro.netsim.packet import Packet
from repro.netsim.router import ClueRouter, Router
from repro.routing.pathvector import PathVectorRouting
from repro.telemetry.export import render_json, render_prometheus
from repro.telemetry.instruments import LookupInstruments, default_instruments


class DeliveryReport:
    """Outcome of forwarding one packet."""

    __slots__ = ("packet", "delivered", "path", "exit_reason")

    def __init__(
        self,
        packet: Packet,
        delivered: bool,
        path: List[str],
        exit_reason: str,
    ):
        self.packet = packet
        self.delivered = delivered
        self.path = path
        self.exit_reason = exit_reason

    def total_accesses(self) -> int:
        """Memory references spent across all hops."""
        return self.packet.total_accesses()

    def __repr__(self) -> str:
        return "DeliveryReport(delivered=%s, path=%s)" % (
            self.delivered,
            "->".join(self.path),
        )


class Network:
    """A set of routers addressable by name.

    A network constructed with explicit ``instruments`` imposes them on
    every router added to it, so one registry observes the whole fabric;
    without them, routers keep whatever instruments they were built with
    (the process default, normally) and reports fall back to the default
    registry.
    """

    def __init__(self, instruments: Optional[LookupInstruments] = None) -> None:
        self.routers: Dict[str, Router] = {}
        self.instruments = instruments
        #: Links currently failed (frozensets of two router names); a
        #: packet whose next hop crosses a down link is dropped.
        self.down_links: Set[frozenset] = set()
        #: Active :class:`repro.faults.inject.FaultPlan`, if any.  Set
        #: by the fault engine; applied per link traversal and per hop.
        self.fault_plan = None

    def _effective_instruments(self) -> LookupInstruments:
        return (
            self.instruments
            if self.instruments is not None
            else default_instruments()
        )

    def add_router(self, router: Router) -> None:
        """Register a router; names must be unique."""
        if router.name in self.routers:
            raise ValueError("duplicate router name %r" % router.name)
        if self.instruments is not None:
            router.set_instruments(self.instruments)
        self.routers[router.name] = router

    def forward(
        self, packet: Packet, start: str, max_hops: Optional[int] = None
    ) -> DeliveryReport:
        """Forward the packet from ``start`` until delivery or failure."""
        if start not in self.routers:
            raise KeyError("unknown start router %r" % start)
        instruments = self._effective_instruments()
        instruments.begin_packet()
        limit = max_hops if max_hops is not None else packet.ttl
        current: Optional[str] = start
        previous: Optional[str] = None
        path: List[str] = []
        report: Optional[DeliveryReport] = None
        plan = self.fault_plan
        for _hop in range(limit):
            router = self.routers[current]
            if not router.up:
                report = DeliveryReport(packet, False, path, "router-down")
                break
            if previous is not None and plan is not None:
                # The packet just crossed the previous->current link;
                # in-flight clue corruption happens here.
                plan.perturb_on_link(packet)
            path.append(current)
            next_hop = router.process(packet, previous)
            if plan is not None:
                # A Byzantine router lies about the BMP it just stamped.
                plan.lie_after_hop(current, packet)
            if next_hop is None:
                report = DeliveryReport(packet, False, path, "no-route")
                break
            if next_hop == current:
                report = DeliveryReport(packet, True, path, "local")
                break
            if next_hop not in self.routers:
                report = DeliveryReport(packet, True, path, "egress")
                break
            if frozenset((current, next_hop)) in self.down_links:
                report = DeliveryReport(packet, False, path, "link-down")
                break
            previous, current = current, next_hop
        if report is None:
            report = DeliveryReport(packet, False, path, "ttl-exceeded")
        instruments.record_delivery(report.exit_reason)
        return report

    def send(
        self, destination: Address, start: str, max_hops: Optional[int] = None
    ) -> DeliveryReport:
        """Convenience: build a fresh packet for ``destination`` and forward."""
        return self.forward(Packet(destination), start, max_hops)

    def run_batched(
        self,
        destinations: List[Address],
        start: str,
        max_hops: Optional[int] = None,
    ) -> List[DeliveryReport]:
        """Forward a fresh packet per destination, batching hop by hop.

        Per-packet semantics (paths, exit reasons, counters) match
        :meth:`forward`; the difference is execution order — at every
        step all in-flight packets sitting at the same ``(router,
        upstream)`` pair are resolved with one
        :meth:`~repro.netsim.router.ClueRouter.process_batch` call
        instead of one Python call per packet.  Fault plans need their
        per-hop perturbation hooks, so an active plan falls back to the
        scalar :meth:`forward` loop.
        """
        if start not in self.routers:
            raise KeyError("unknown start router %r" % start)
        packets = [Packet(destination) for destination in destinations]
        if self.fault_plan is not None:
            return [self.forward(packet, start, max_hops) for packet in packets]
        instruments = self._effective_instruments()
        reports: List[Optional[DeliveryReport]] = [None] * len(packets)
        lanes = []
        for index, packet in enumerate(packets):
            instruments.begin_packet()
            limit = max_hops if max_hops is not None else packet.ttl
            lanes.append([index, start, None, [], limit])
        while lanes:
            groups: Dict[tuple, list] = {}
            for lane in lanes:
                groups.setdefault((lane[1], lane[2]), []).append(lane)
            lanes = []
            for (current, previous), group in groups.items():
                router = self.routers[current]
                if not router.up:
                    for lane in group:
                        reports[lane[0]] = DeliveryReport(
                            packets[lane[0]], False, lane[3], "router-down"
                        )
                    continue
                for lane in group:
                    lane[3].append(current)
                hops = router.process_batch(
                    [packets[lane[0]] for lane in group], previous
                )
                for lane, next_hop in zip(group, hops):
                    index, _, _, path, limit = lane
                    packet = packets[index]
                    if next_hop is None:
                        reports[index] = DeliveryReport(
                            packet, False, path, "no-route"
                        )
                    elif next_hop == current:
                        reports[index] = DeliveryReport(
                            packet, True, path, "local"
                        )
                    elif next_hop not in self.routers:
                        reports[index] = DeliveryReport(
                            packet, True, path, "egress"
                        )
                    elif frozenset((current, next_hop)) in self.down_links:
                        reports[index] = DeliveryReport(
                            packet, False, path, "link-down"
                        )
                    elif limit <= 1:
                        reports[index] = DeliveryReport(
                            packet, False, path, "ttl-exceeded"
                        )
                    else:
                        lanes.append(
                            [index, next_hop, current, path, limit - 1]
                        )
        out: List[DeliveryReport] = []
        for report in reports:
            instruments.record_delivery(report.exit_reason)
            out.append(report)
        return out

    def apply_update(self, router: str, add=(), remove=()):
        """Apply a live route change to one router's table.

        Delegates to :meth:`Router.apply_update`; the clue tables of
        *pairs* touching this router are maintained by the churn engine
        (see :mod:`repro.churn`), not here.
        """
        if router not in self.routers:
            raise KeyError("unknown router %r" % router)
        return self.routers[router].apply_update(add=add, remove=remove)

    def run_with_churn(
        self,
        stream,
        epochs: int,
        traffic_per_epoch: int = 0,
        *,
        rebuild_budget: Optional[int] = None,
        audit_every: int = 0,
        hard_audit: bool = True,
        seed: int = 0,
        technique: Optional[str] = None,
    ):
        """Drive this network through ``epochs`` of live route churn.

        Builds a :class:`repro.churn.ChurnEngine` over the fabric (one
        incrementally maintained clue table per directed adjacency) and
        runs it; returns the engine's :class:`~repro.churn.ChurnReport`.
        """
        from repro.churn.engine import ChurnEngine

        engine = ChurnEngine(
            self,
            stream,
            rebuild_budget=rebuild_budget,
            audit_every=audit_every,
            hard_audit=hard_audit,
            seed=seed,
            technique=technique,
        )
        return engine.run(epochs, traffic_per_epoch)

    def run_with_faults(
        self,
        plan,
        rounds: int,
        traffic_per_round: int = 32,
        *,
        guard_policy=None,
        seed: int = 0,
        hard_invariant: Optional[bool] = None,
    ):
        """Drive this network through ``rounds`` of traffic under faults.

        Builds a :class:`repro.faults.engine.FaultEngine` over the
        fabric and runs it; returns the engine's
        :class:`~repro.faults.engine.FaultReport`.  ``guard_policy``
        turns on the guarded data path on every clue router (pass a
        :class:`~repro.faults.guard.GuardPolicy`, or ``True`` for the
        defaults); ``hard_invariant`` defaults to the guard being on.
        """
        from repro.faults.engine import FaultEngine

        engine = FaultEngine(
            self,
            plan,
            guard_policy=guard_policy,
            seed=seed,
            hard_invariant=hard_invariant,
        )
        return engine.run(rounds, traffic_per_round)

    def run_with_control(
        self,
        plane,
        plan=None,
        ticks: int = 100,
        traffic_per_tick: int = 8,
        *,
        cost_changes=(),
        rebuild_budget: Optional[int] = None,
        seed: int = 0,
        hard_invariant: bool = True,
        technique: Optional[str] = None,
    ):
        """Drive this network under a live link-state control plane.

        Builds a :class:`repro.control.engine.ControlEngine` coupling
        the fabric to ``plane`` (a
        :class:`~repro.control.plane.ControlPlane`) — SPF route deltas
        flow into the forwarding tables through the churn-maintenance
        feed, an optional fault ``plan``'s flaps/crashes perturb the
        IGP itself, and every forwarded packet is audited against the
        never-wrong oracle.  Returns the engine's
        :class:`~repro.control.engine.ControlReport`.
        """
        from repro.control.engine import ControlEngine

        engine = ControlEngine(
            self,
            plane,
            plan,
            cost_changes=cost_changes,
            rebuild_budget=rebuild_budget,
            seed=seed,
            hard_invariant=hard_invariant,
            technique=technique,
        )
        return engine.run(ticks, traffic_per_tick)

    def metrics_report(
        self, fmt: str = "json", refresh_gauges: bool = True
    ) -> str:
        """Render the fabric's registry (``fmt``: ``json`` or ``prom``).

        ``refresh_gauges`` first publishes every clue router's learned
        clue-table sizes, so the ``clue_table_size`` series reflect the
        state at report time rather than at the last sync.
        """
        instruments = self._effective_instruments()
        if refresh_gauges:
            for router in self.routers.values():
                sync = getattr(router, "sync_gauges", None)
                if sync is not None:
                    sync()
        if fmt == "json":
            return render_json(instruments.registry)
        if fmt == "prom":
            return render_prometheus(instruments.registry)
        raise ValueError("unknown metrics format %r (json or prom)" % fmt)

    @classmethod
    def from_pathvector(
        cls,
        routing: PathVectorRouting,
        technique: str = "patricia",
        method: str = "advance",
        width: int = 32,
        instruments: Optional[LookupInstruments] = None,
    ) -> "Network":
        """Build a clue-router network from a converged route computation.

        Every adjacency registers the neighbour's table, so the Advance
        method is available on every link — modelling pre-processing table
        construction from the routing exchange (§3.3.2).
        """
        tables = routing.all_tables()
        network = cls(instruments=instruments)
        for name, entries in tables.items():
            network.add_router(
                ClueRouter(name, entries, technique=technique, method=method, width=width)
            )
        for name in routing.graph.nodes:
            router = network.routers[name]
            for neighbor in routing.graph.neighbors(name):
                router.register_neighbor(neighbor, tables[neighbor])
        return network

    def __len__(self) -> int:
        return len(self.routers)

    def __contains__(self, name: str) -> bool:
        return name in self.routers
