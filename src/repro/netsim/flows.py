"""Flow-level cost comparison: clues vs traffic-driven label swapping.

§1–2 argue the clue scheme's killer feature against data-driven
IP-switching/Tag-switching: **no setup**.  A label-per-flow scheme pays a
full IP lookup along the whole path for the first packet (plus label
setup messages, plus up to a round-trip of added latency) and only then
switches in O(1); a one-packet UDP flow never amortises that.  The clue
scheme gives every packet — including the very first of a flow — the ≈1
reference treatment, with zero control traffic.

This module measures all three schemes over a flow-size distribution on
a real simulated chain: the IP and clue costs come from the actual
lookup structures, only the label swap is the constant the hardware
gives it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.lookup import BASELINES
from repro.lookup.counters import MemoryCounter
from repro.netsim.heterogeneous import build_neighbor_chain, rehop
from repro.tablegen.synthetic import Entry
from repro.trie.binary_trie import BinaryTrie


def pareto_flow_sizes(
    count: int, seed: int = 0, alpha: float = 1.3, max_size: int = 10000
) -> List[int]:
    """Heavy-tailed flow sizes (packets per flow), mostly tiny."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = random.Random(seed)
    sizes = []
    for _ in range(count):
        size = int(rng.paretovariate(alpha))
        sizes.append(min(max(size, 1), max_size))
    return sizes


class SchemeCost:
    """Accumulated cost of one forwarding scheme over a traffic mix."""

    __slots__ = ("references", "setup_messages", "first_packet_delay_hops", "packets")

    def __init__(self) -> None:
        self.references = 0
        self.setup_messages = 0
        self.first_packet_delay_hops = 0
        self.packets = 0

    def per_packet(self) -> float:
        """Average data-path memory references per packet (whole path)."""
        return self.references / self.packets if self.packets else 0.0

    def __repr__(self) -> str:
        return (
            "SchemeCost(refs/pkt=%.2f, setup=%d, delay=%d)"
            % (self.per_packet(), self.setup_messages, self.first_packet_delay_hops)
        )


class FlowExperiment:
    """Chain of routers measuring IP, clue and tag-switching flow costs."""

    def __init__(
        self,
        hops: int = 5,
        table_size: int = 2000,
        seed: int = 0,
        technique: str = "patricia",
    ):
        if hops < 2:
            raise ValueError("a path needs at least two hops")
        self.hops = hops
        tables = build_neighbor_chain(hops, table_size, seed=seed)
        names = ["f%d" % i for i in range(hops)]
        self.tables: List[Sequence[Entry]] = [
            rehop(table, names[min(i + 1, hops - 1)])
            for i, table in enumerate(tables)
        ]
        self.receivers = [ReceiverState(table) for table in self.tables]
        self.bases = [
            BASELINES[technique](receiver.entries) for receiver in self.receivers
        ]
        self.assisted: List[Optional[ClueAssistedLookup]] = [None]
        for index in range(1, hops):
            upstream = BinaryTrie.from_prefixes(self.tables[index - 1])
            method = AdvanceMethod(upstream, self.receivers[index], technique)
            self.assisted.append(
                ClueAssistedLookup(self.bases[index], method.build_table())
            )
        self._sender_trie = BinaryTrie.from_prefixes(self.tables[0])

    # ------------------------------------------------------------------
    def _full_path_references(self, destination) -> int:
        counter = MemoryCounter()
        for base in self.bases:
            base.lookup(destination, counter)
        return counter.accesses

    def _clue_path_references(self, destination) -> int:
        counter = MemoryCounter()
        result = self.bases[0].lookup(destination, counter)
        clue = result.prefix
        for index in range(1, self.hops):
            result = self.assisted[index].lookup(destination, clue, counter)
            clue = result.prefix
        return counter.accesses

    # ------------------------------------------------------------------
    def average_path_costs(
        self, samples: int = 100, seed: int = 0
    ) -> Dict[str, float]:
        """Average whole-path references for a single packet, per scheme."""
        rng = random.Random(seed)
        entries = list(self.tables[0])
        full_total = 0
        clue_total = 0
        measured = 0
        while measured < samples:
            prefix, _hop = entries[rng.randrange(len(entries))]
            destination = prefix.random_address(rng)
            if self._sender_trie.best_prefix(destination) is None:
                continue
            full_total += self._full_path_references(destination)
            clue_total += self._clue_path_references(destination)
            measured += 1
        return {
            "ip": full_total / samples,
            "clue": clue_total / samples,
            "tag_steady": float(self.hops),
        }

    def crossover_flow_size(self, samples: int = 100, seed: int = 0) -> float:
        """The flow size beyond which tag switching beats clues.

        Per the cost model, a flow of ``n`` packets costs ``n * clue_path``
        under clues and ``full_path + (n - 1) * hops`` under traffic-driven
        tag switching, so the crossover sits at

            n* = (full_path - hops) / (clue_path - hops)

        Returns ``inf`` when the clue path already matches the per-hop
        label-switching floor (tag switching never catches up).
        """
        costs = self.average_path_costs(samples, seed)
        clue_margin = costs["clue"] - self.hops
        if clue_margin <= 0:
            return float("inf")
        return (costs["ip"] - self.hops) / clue_margin

    def run(
        self, flow_sizes: Sequence[int], seed: int = 0
    ) -> Dict[str, SchemeCost]:
        """Route every flow under the three schemes."""
        rng = random.Random(seed)
        entries = list(self.tables[0])
        schemes = {"ip": SchemeCost(), "clue": SchemeCost(), "tag": SchemeCost()}
        for size in flow_sizes:
            prefix, _hop = entries[rng.randrange(len(entries))]
            destination = prefix.random_address(rng)
            if self._sender_trie.best_prefix(destination) is None:
                continue
            full_cost = self._full_path_references(destination)
            clue_cost = self._clue_path_references(destination)

            ip = schemes["ip"]
            ip.references += full_cost * size
            ip.packets += size

            clue = schemes["clue"]
            clue.references += clue_cost * size
            clue.packets += size

            # Traffic-driven tag switching: the first packet triggers the
            # full lookup along the path and a label-setup message per hop
            # (and is delayed by the setup propagating); every later
            # packet switches in one reference per hop.
            tag = schemes["tag"]
            tag.references += full_cost + (size - 1) * self.hops
            tag.setup_messages += self.hops - 1
            tag.first_packet_delay_hops += self.hops - 1
            tag.packets += size
        return schemes
