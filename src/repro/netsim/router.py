"""Simulated routers: clue-aware and legacy.

A :class:`ClueRouter` implements the full distributed-IP-lookup data path:
it keeps one clue structure per upstream neighbour (Advance needs the
neighbour's table, obtained from the routing exchange via
:meth:`register_neighbor`; unknown neighbours fall back to the Simple
method learned on the fly), resolves each packet, stamps its own BMP as
the outgoing clue, and returns the next hop.

A :class:`LegacyRouter` ignores clues entirely — it performs the ordinary
full lookup — and models the two §5.3 behaviours: *relaying* the incoming
clue unchanged (the good citizen) or stripping it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.addressing import Prefix
from repro.core.advance import AdvanceMethod
from repro.core.clue import ClueEncodingError
from repro.core.learning import LearningClueLookup
from repro.core.receiver import ReceiverState
from repro.core.simple import SimpleMethod
from repro.fastpath.backend import (
    CODE_CLUE_MISS,
    CODE_FD_IMMEDIATE,
    CODE_RESUMED,
    CODE_TO_METHOD,
)
from repro.fastpath.compile import (
    FastpathUnsupported,
    compile_clue_table,
)
from repro.fastpath.layouts import LAYOUTS, compile_layout
from repro.fastpath.kernels import (
    as_destination_array,
    as_length_array,
    full_lookup_batch,
    lookup_batch,
)
from repro.lookup import BASELINES
from repro.lookup.counters import METHOD_FULL, MemoryCounter
from repro.lookup.hotpath import hot_path
from repro.netsim.packet import HopRecord, Packet
from repro.telemetry.instruments import LookupInstruments, default_instruments
from repro.trie.binary_trie import BinaryTrie

if TYPE_CHECKING:
    from repro.core.maintenance import MaintainedClueTable
    from repro.core.table import ClueTable
    from repro.faults.guard import GuardPolicy, NeighborHealth

Entries = Iterable[Tuple[Prefix, object]]


class Router:
    """Base class: a named node that processes packets.

    Every router reports through a :class:`LookupInstruments` — its own
    if one was passed, otherwise the process-wide default — and reuses a
    single :class:`MemoryCounter` across packets (allocating one per
    packet measurably slows the hot path; see DESIGN.md "Telemetry").
    """

    def __init__(self, name: str, instruments: Optional[LookupInstruments] = None):
        self.name = name
        self._counter = MemoryCounter()
        #: Liveness flag driven by the fault engine's crash–restart
        #: events; a down router drops every packet handed to it.
        self.up = True
        self.set_instruments(
            instruments if instruments is not None else default_instruments()
        )

    def set_instruments(self, instruments: LookupInstruments) -> None:
        """Point this router at a (new) metric set, rebinding hot handles."""
        self.instruments = instruments
        self.metrics = instruments.bind_router(self.name)

    def process(self, packet: Packet, from_router: Optional[str] = None):
        """Resolve the packet; append a trace record; return the next hop."""
        raise NotImplementedError

    def process_batch(
        self, packets: List[Packet], from_router: Optional[str] = None
    ) -> List[object]:
        """Resolve a batch arriving from one upstream; one next hop each.

        Subclasses with a compiled fastpath override this; the default
        is the scalar loop, so every router is batch-callable.
        """
        return [self.process(packet, from_router) for packet in packets]

    def apply_update(
        self,
        add: Entries = (),
        remove: Iterable[Prefix] = (),
    ) -> Tuple[List[Tuple[Prefix, object]], List[Prefix]]:
        """Apply a live route change to this router's own table."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self.name)


class ClueRouter(Router):
    """A router running distributed IP lookup."""

    def __init__(
        self,
        name: str,
        entries: Entries,
        technique: str = "patricia",
        method: str = "advance",
        width: int = 32,
        emit_clues: bool = True,
        truncate_clues_to: Optional[int] = None,
        preprocess: bool = False,
        instruments: Optional[LookupInstruments] = None,
        layout: str = "dense",
    ):
        super().__init__(name, instruments)
        if method not in ("simple", "advance"):
            raise ValueError("method must be 'simple' or 'advance'")
        if layout not in LAYOUTS:
            raise ValueError(
                "layout must be one of %s, got %r" % (", ".join(LAYOUTS), layout)
            )
        #: Compiled fastpath layout for full lookups (see
        #: `repro.fastpath.layouts`); scalar/object-graph paths ignore it.
        self.layout = layout
        self.receiver = ReceiverState(entries, width)
        self.technique = technique
        self.method = method
        self.emit_clues = emit_clues
        #: §5.3 privacy knob: never emit a clue longer than this.
        self.truncate_clues_to = truncate_clues_to
        #: §3.3.2 pre-processing: build a registered neighbour's whole clue
        #: table up front instead of learning it clue by clue.
        self.preprocess = preprocess
        self.base = BASELINES[technique](self.receiver.entries, width)
        self._simple = SimpleMethod(self.receiver, technique, telemetry=self.metrics)
        #: per-upstream clue lookup state, built lazily.
        self._lookups: Dict[Optional[str], LearningClueLookup] = {}
        #: upstream tables registered from the routing exchange.
        self._neighbor_tries: Dict[str, BinaryTrie] = {}
        #: per-upstream incrementally maintained clue tables (churn mode);
        #: see :meth:`attach_maintained`.
        self._maintained: Dict[str, "MaintainedClueTable"] = {}
        #: When set (see :meth:`enable_guard`), lazily built per-upstream
        #: lookups are wrapped in the guarded, self-healing data path.
        self.guard_policy: Optional["GuardPolicy"] = None
        #: Per-upstream health scores.  Kept outside the lookups so
        #: quarantine state survives table drops (updates, restarts).
        self._health: Dict[Optional[str], "NeighborHealth"] = {}
        #: Per-upstream compiled fastpath tables: upstream → (compiled
        #: or None, source table, its length when compiled).  Rebuilt
        #: lazily by :meth:`_compiled_for`; any event that can change a
        #: table's contents clears the affected entries.
        self._compiled: Dict[Optional[str], tuple] = {}
        #: The receiver trie compiled once into :attr:`layout` and shared
        #: by every upstream's compiled table (shared result pool; a
        #: multibit layout also shares its dense base arrays).
        self._compiled_trie = None

    def set_instruments(self, instruments: LookupInstruments) -> None:
        """Rebind this router (and its entry builders) to a metric set."""
        super().set_instruments(instruments)
        # __init__ calls this before the builders exist; later rebinds
        # (e.g. Network.add_router) must repoint them too.
        simple = getattr(self, "_simple", None)
        if simple is not None:
            simple.telemetry = self.metrics
        for lookup in getattr(self, "_lookups", {}).values():
            lookup.builder.telemetry = self.metrics
            if getattr(lookup, "monitor", None) is not None:
                lookup.monitor = instruments.bind_guard(self.name)

    # ------------------------------------------------------------------
    def enable_guard(
        self, policy: Optional["GuardPolicy"] = None
    ) -> "GuardPolicy":
        """Turn on the guarded, self-healing data path (repro.faults).

        Lazily built per-upstream lookups are created as
        :class:`~repro.faults.guard.GuardedLookup` from now on; existing
        unguarded ones are dropped so they rebuild guarded.  Maintained
        churn attachments keep their incremental path — the churn engine
        owns their consistency story.
        """
        from repro.faults.guard import GuardPolicy

        self.guard_policy = policy if policy is not None else GuardPolicy()
        for upstream in list(self._lookups):
            if upstream not in self._maintained:
                del self._lookups[upstream]
        self._compiled.clear()
        return self.guard_policy

    def crash(self) -> None:
        """Take the router down; the fabric drops packets handed to it."""
        self.up = False

    def restart(self) -> None:
        """Come back up with cold clue tables, rebuilt lazily.

        Every learned record is lost — a reboot loses its fast-memory
        clue tables — but neighbour health (quarantine state) survives:
        it models the control plane's memory of who misbehaved, not the
        data-plane cache.  Maintained attachments are re-installed
        against their live tables.
        """
        self.up = True
        self._lookups.clear()
        self._compiled.clear()
        for upstream, maintained in list(self._maintained.items()):
            self.attach_maintained(upstream, maintained)

    def learned_tables(self) -> Dict[Optional[str], "ClueTable"]:
        """Live clue tables per upstream — the fault injector's target."""
        return {
            upstream: lookup.table
            for upstream, lookup in self._lookups.items()
        }

    def guard_reports(self) -> Dict[Optional[str], Dict[str, object]]:
        """Per-upstream guard statistics (empty unless the guard is on)."""
        reports: Dict[Optional[str], Dict[str, object]] = {}
        for upstream, lookup in self._lookups.items():
            health = getattr(lookup, "health", None)
            if health is None:
                continue
            reports[upstream] = {
                "health": health.as_dict(),
                "rejections": dict(lookup.rejections),
                "healed_records": lookup.healed_records,
                "hits": lookup.hits,
                "misses": lookup.misses,
            }
        return reports

    # ------------------------------------------------------------------
    def register_neighbor(self, neighbor: str, entries: Entries) -> None:
        """Learn an upstream's table (enables the Advance method for it)."""
        self._neighbor_tries[neighbor] = BinaryTrie.from_prefixes(
            entries, self.receiver.width
        )
        self._lookups.pop(neighbor, None)
        self._compiled.pop(neighbor, None)

    def attach_maintained(
        self, upstream: str, maintained: "MaintainedClueTable"
    ) -> LearningClueLookup:
        """Serve ``upstream``'s clues from an incrementally maintained table.

        The lookup's table *is* the maintained table, so deferred-rebuild
        deactivations take effect on the data path immediately (a
        deactivated record probes as a miss), and on-demand relearning
        repairs records through the maintained Advance builder — which
        sees the live sender trie and receiver state.
        """
        self._maintained[upstream] = maintained
        self._compiled.pop(upstream, None)
        self._neighbor_tries[upstream] = maintained.sender_trie
        maintained.method.telemetry = self.metrics
        lookup = LearningClueLookup(self.base, maintained.method)
        lookup.table = maintained.table
        self._lookups[upstream] = lookup
        return lookup

    def maintained_for(self, upstream: str) -> Optional["MaintainedClueTable"]:
        """The maintained clue table attached for ``upstream``, if any."""
        return self._maintained.get(upstream)

    def apply_update(
        self,
        add: Entries = (),
        remove: Iterable[Prefix] = (),
    ) -> Tuple[List[Tuple[Prefix, object]], List[Prefix]]:
        """Apply a live route change to this router's own table.

        The receiver state mutates in place (maintained pairs sharing it
        observe the change for free), the base lookup structure is
        rebuilt, and learned clue tables that are *not* incrementally
        maintained are dropped — their records were built against the old
        table and relearning is the only safe repair for them.  Returns
        the ``(added, removed)`` entries actually applied.
        """
        added = list(add)
        removed = [
            prefix for prefix in remove if self.receiver.trie.contains(prefix)
        ]
        if added or removed:
            self.receiver.apply_update(added, removed)
            self.base = BASELINES[self.technique](
                self.receiver.entries, self.receiver.width
            )
            for upstream in list(self._lookups):
                if upstream in self._maintained:
                    self._lookups[upstream].base = self.base
                else:
                    del self._lookups[upstream]
            self._compiled.clear()
            self._compiled_trie = None
        return added, removed

    def _lookup_for(self, from_router: Optional[str]) -> LearningClueLookup:
        lookup = self._lookups.get(from_router)
        if lookup is None:
            if (
                self.method == "advance"
                and from_router is not None
                and from_router in self._neighbor_tries
            ):
                builder = AdvanceMethod(
                    self._neighbor_tries[from_router],
                    self.receiver,
                    self.technique,
                    telemetry=self.metrics,
                )
            else:
                builder = self._simple
            if self.guard_policy is not None:
                from repro.faults.guard import GuardedLookup, NeighborHealth

                health = self._health.get(from_router)
                if health is None:
                    health = NeighborHealth(self.guard_policy)
                    self._health[from_router] = health
                lookup = GuardedLookup(
                    self.base,
                    builder,
                    self.guard_policy,
                    health=health,
                    monitor=self.instruments.bind_guard(self.name),
                )
                if self.preprocess and from_router in self._neighbor_tries:
                    # Learn through the guard so each record is sealed.
                    for clue in self._neighbor_tries[from_router].prefixes():
                        lookup.learn(clue)
            else:
                lookup = LearningClueLookup(self.base, builder)
                if self.preprocess and from_router in self._neighbor_tries:
                    for clue in self._neighbor_tries[from_router].prefixes():
                        lookup.table.insert(builder.build_entry(clue))
            self._lookups[from_router] = lookup
        return lookup

    # ------------------------------------------------------------------
    def _compiled_for(self, from_router, lookup):
        """The compiled fastpath table for this upstream, or None.

        Only the plain learning path over the "regular" technique
        compiles: guarded lookups, maintained (churn) tables — whose
        records deactivate in place without changing the table length —
        and the pointer-machine techniques stay scalar.  A cached
        compile is reused while it provably matches the live table
        (same object, same record count); learning, updates, restarts
        and guard/neighbor changes all invalidate it.
        """
        if (
            self.technique != "regular"
            or self.guard_policy is not None
            or from_router in self._maintained
            or type(lookup) is not LearningClueLookup
        ):
            return None
        table = lookup.table
        cached = self._compiled.get(from_router)
        if cached is not None and cached[1] is table and cached[2] == len(table):
            return cached[0]
        if self._compiled_trie is None:
            self._compiled_trie = compile_layout(self.receiver.trie, self.layout)
        try:
            compiled = compile_clue_table(table, self._compiled_trie)
        except FastpathUnsupported:
            compiled = None
        self._compiled[from_router] = (compiled, table, len(table))
        return compiled

    def process_batch(
        self, packets: List[Packet], from_router: Optional[str] = None
    ) -> List[object]:
        """Resolve a whole batch arriving from one upstream at once.

        Semantically :meth:`process` per packet, executed through the
        compiled batch kernels, with two documented differences: the
        clue table is frozen for the duration of the batch (every
        packet of the batch carrying the same *new* clue pays the miss;
        the clue is learned once, between batches) and per-packet trace
        spans are not recorded.  Falls back to the scalar loop whenever
        the upstream's table does not compile (see :meth:`_compiled_for`).
        """
        lookup = self._lookup_for(from_router)
        compiled = self._compiled_for(from_router, lookup)
        if compiled is None:
            return [self.process(packet, from_router) for packet in packets]
        width = self.receiver.width
        values = []
        lens = []
        for packet in packets:
            values.append(packet.destination.value)
            length = packet.clue.length
            lens.append(length if length is not None and 0 <= length <= width else -1)
        dsts = as_destination_array(values, width)
        clue_lens = as_length_array(lens, width)
        methods, codes, new_clues, memrefs = lookup_batch(
            compiled, dsts, clue_lens
        )
        pool = compiled.trie.pool
        hops: List[object] = []
        accesses_list = []
        resumed_accesses = []
        counts = [0, 0, 0, 0]
        missed_clues = []
        missed_seen = set()
        for lane, packet in enumerate(packets):
            code = int(codes[lane])
            action = int(methods[lane])
            refs = int(memrefs[lane])
            counts[action] += 1
            accesses_list.append(refs)
            if action == CODE_RESUMED:
                resumed_accesses.append(refs)
            prefix = pool.prefixes[code] if code >= 0 else None
            next_hop = pool.next_hops[code] if code >= 0 else None
            packet.trace.append(
                HopRecord(
                    self.name,
                    refs,
                    prefix,
                    packet.clue.length,
                    CODE_TO_METHOD[action],
                )
            )
            if self.emit_clues and prefix is not None:
                packet.clue.length = prefix.length
                packet.clue.index = None
                if self.truncate_clues_to is not None:
                    packet.clue.truncate(self.truncate_clues_to)
            elif self.emit_clues:
                packet.clue.clear()
            if action == CODE_CLUE_MISS:
                clue = packet.destination.prefix(lens[lane])
                if clue not in missed_seen:
                    missed_seen.add(clue)
                    missed_clues.append(clue)
            hops.append(next_hop)
        lookup.hits += counts[CODE_FD_IMMEDIATE] + counts[CODE_RESUMED]
        lookup.misses += counts[CODE_CLUE_MISS]
        if missed_clues:
            # §3.3.1's "new-clue" procedure, batched: learn each missed
            # clue once, off the fast path, then drop the stale compile.
            for clue in missed_clues:
                lookup.table.insert(lookup.builder.build_entry(clue))
            self._compiled.pop(from_router, None)
        self.metrics.record_lookup_batch(
            counts[0],
            counts[CODE_CLUE_MISS],
            counts[CODE_FD_IMMEDIATE],
            counts[CODE_RESUMED],
            accesses_list,
            resumed_accesses,
        )
        return hops

    @hot_path
    def process(self, packet: Packet, from_router: Optional[str] = None):
        """The distributed-IP-lookup data path for one packet."""
        counter = self._counter
        counter.reset()
        incoming = packet.clue.length
        lookup = self._lookup_for(from_router)
        try:
            clue = packet.clue_prefix()
        except ClueEncodingError:
            # An undecodable header field: proceed clueless, and let a
            # guarded path score the anomaly against the upstream.
            clue = None
            note = getattr(lookup, "note_malformed", None)
            if note is not None:
                note()
        result = lookup.lookup(packet.destination, clue, counter)
        accesses = counter.accesses
        method = counter.method
        hop = len(packet.trace)
        packet.trace.append(
            HopRecord(self.name, accesses, result.prefix, incoming, method)
        )
        if self.emit_clues and result.prefix is not None:
            packet.clue.length = result.prefix.length
            packet.clue.index = None
            if self.truncate_clues_to is not None:
                packet.clue.truncate(self.truncate_clues_to)
        elif self.emit_clues:
            packet.clue.clear()
        self.metrics.record_lookup(method, accesses)
        tracer = self.instruments.tracer
        if tracer is not None and tracer.active:
            tracer.record(
                self.name,
                hop,
                method if method is not None else METHOD_FULL,
                accesses,
                incoming,
                packet.clue.length,
            )
        return result.next_hop

    def clue_table_sizes(self) -> Dict[Optional[str], int]:
        """Learned clue-table sizes per upstream neighbour."""
        return {
            upstream: len(lookup.table)
            for upstream, lookup in self._lookups.items()
        }

    def sync_gauges(self) -> None:
        """Publish the learned clue-table sizes to the registry gauges."""
        for upstream, size in self.clue_table_sizes().items():
            self.instruments.set_clue_table_size(self.name, upstream, size)


class LegacyRouter(Router):
    """A router that has not deployed the scheme."""

    def __init__(
        self,
        name: str,
        entries: Entries,
        technique: str = "patricia",
        width: int = 32,
        relay_clues: bool = True,
        instruments: Optional[LookupInstruments] = None,
        layout: str = "dense",
    ):
        super().__init__(name, instruments)
        if layout not in LAYOUTS:
            raise ValueError(
                "layout must be one of %s, got %r" % (", ".join(LAYOUTS), layout)
            )
        self.receiver = ReceiverState(entries, width)
        self.technique = technique
        self.layout = layout
        self.base = BASELINES[technique](self.receiver.entries, width)
        #: §5.3: a legacy router that leaves the options field alone still
        #: lets downstream clue routers benefit; one that rewrites the
        #: header strips the clue.
        self.relay_clues = relay_clues
        #: Receiver trie compiled lazily for :meth:`process_batch`.
        self._compiled_trie = None

    def apply_update(
        self,
        add: Entries = (),
        remove: Iterable[Prefix] = (),
    ) -> Tuple[List[Tuple[Prefix, object]], List[Prefix]]:
        """Apply a live route change: update the table, rebuild the base."""
        added = list(add)
        removed = [
            prefix for prefix in remove if self.receiver.trie.contains(prefix)
        ]
        if added or removed:
            self.receiver.apply_update(added, removed)
            self.base = BASELINES[self.technique](
                self.receiver.entries, self.receiver.width
            )
            self._compiled_trie = None
        return added, removed

    def process_batch(
        self, packets: List[Packet], from_router: Optional[str] = None
    ) -> List[object]:
        """Batched plain full lookups; clues relayed or stripped unread.

        Scalar-equivalent except that trace spans are not recorded; only
        the "regular" technique compiles, anything else loops.
        """
        if self.technique != "regular":
            return [self.process(packet, from_router) for packet in packets]
        if self._compiled_trie is None:
            self._compiled_trie = compile_layout(self.receiver.trie, self.layout)
        ctrie = self._compiled_trie
        width = self.receiver.width
        dsts = as_destination_array(
            [packet.destination.value for packet in packets], width
        )
        codes, memrefs = full_lookup_batch(ctrie, dsts)
        pool = ctrie.pool
        hops: List[object] = []
        accesses_list = []
        for lane, packet in enumerate(packets):
            code = int(codes[lane])
            refs = int(memrefs[lane])
            accesses_list.append(refs)
            prefix = pool.prefixes[code] if code >= 0 else None
            packet.trace.append(
                HopRecord(
                    self.name, refs, prefix, packet.clue.length, METHOD_FULL
                )
            )
            if not self.relay_clues:
                packet.clue.clear()
            hops.append(pool.next_hops[code] if code >= 0 else None)
        self.metrics.record_lookup_batch(
            len(packets), 0, 0, 0, accesses_list, ()
        )
        return hops

    @hot_path
    def process(self, packet: Packet, from_router: Optional[str] = None):
        """Plain full lookup; the clue is relayed or stripped, never used."""
        counter = self._counter
        counter.reset()
        incoming = packet.clue.length
        result = self.base.lookup(packet.destination, counter)
        accesses = counter.accesses
        hop = len(packet.trace)
        packet.trace.append(
            HopRecord(self.name, accesses, result.prefix, incoming, METHOD_FULL)
        )
        if not self.relay_clues:
            packet.clue.clear()
        self.metrics.record_lookup(METHOD_FULL, accesses)
        tracer = self.instruments.tracer
        if tracer is not None and tracer.active:
            tracer.record(
                self.name, hop, METHOD_FULL, accesses, incoming,
                packet.clue.length,
            )
        return result.next_hop
