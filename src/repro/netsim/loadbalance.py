"""Work shaping between routers via clue design (§5.4).

The paper's closing idea: instead of merely accelerating lookups, use the
clue mechanism to *shape* where work happens.  If the sender's table is
de-aggregated just enough that every clue it can emit is a prefix the
receiver cannot extend, the receiver resolves every packet in exactly one
memory reference — TAG-switching speed without label swapping — moving
the residual work to the (lightly loaded) edge.

``shape_sender_table`` performs the minimal de-aggregation: it adds, for
every problematic clue, the receiver's potential-set prefixes into the
sender's table.  Because this only *reduces* aggregation it cannot create
routing loops (the paper's §5.4 observation).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.addressing import Prefix
from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.lookup import BASELINES
from repro.lookup.counters import MemoryCounter
from repro.tablegen.synthetic import Entry
from repro.trie.binary_trie import BinaryTrie
from repro.trie.overlay import TrieOverlay


def shape_sender_table(
    sender_entries: Sequence[Entry],
    receiver_entries: Sequence[Entry],
    width: int = 32,
) -> List[Entry]:
    """De-aggregate the sender so all its clues are final at the receiver.

    For every problematic clue the receiver's potential-set prefixes are
    copied into the sender's table, inheriting the clue's next hop (they
    route the same way — towards the receiver).  The closure property: in
    the shaped table *no* clue violates Claim 1 anymore.
    """
    sender_trie = BinaryTrie.from_prefixes(sender_entries, width)
    receiver_trie = BinaryTrie.from_prefixes(receiver_entries, width)
    overlay = TrieOverlay(sender_trie, receiver_trie)
    additions: Dict[Prefix, object] = {}
    for clue in overlay.problematic_clues():
        hop = sender_trie.next_hop_of(clue)
        for prefix in overlay.potential_set(clue):
            additions.setdefault(prefix, hop)
    merged = dict(sender_entries)
    for prefix, hop in additions.items():
        merged.setdefault(prefix, hop)
    return sorted(merged.items(), key=lambda item: (item[0].length, item[0].bits))


class ShapingReport:
    """Before/after measurements of receiver work under shaping."""

    __slots__ = (
        "receiver_work_before",
        "receiver_work_after",
        "problematic_before",
        "problematic_after",
        "sender_size_before",
        "sender_size_after",
    )

    def __init__(
        self,
        receiver_work_before: float,
        receiver_work_after: float,
        problematic_before: int,
        problematic_after: int,
        sender_size_before: int,
        sender_size_after: int,
    ):
        self.receiver_work_before = receiver_work_before
        self.receiver_work_after = receiver_work_after
        self.problematic_before = problematic_before
        self.problematic_after = problematic_after
        self.sender_size_before = sender_size_before
        self.sender_size_after = sender_size_after

    def sender_growth(self) -> int:
        """Extra prefixes the sender carries after shaping."""
        return self.sender_size_after - self.sender_size_before

    def __repr__(self) -> str:
        return (
            "ShapingReport(before=%.3f, after=%.3f, growth=%d)"
            % (
                self.receiver_work_before,
                self.receiver_work_after,
                self.sender_growth(),
            )
        )


def _receiver_work(
    sender_entries: Sequence[Entry],
    receiver: ReceiverState,
    packets: int,
    seed: int,
    technique: str,
) -> float:
    """Average receiver references per packet, Advance clue tables."""
    sender_trie = BinaryTrie.from_prefixes(sender_entries, receiver.width)
    method = AdvanceMethod(sender_trie, receiver, technique)
    lookup = ClueAssistedLookup(
        BASELINES[technique](receiver.entries, receiver.width),
        method.build_table(),
    )
    rng = random.Random(seed)
    sender_list = list(sender_entries)
    total = 0
    measured = 0
    for _ in range(packets):
        prefix, _hop = sender_list[rng.randrange(len(sender_list))]
        destination = prefix.random_address(rng)
        clue = sender_trie.best_prefix(destination)
        if clue is None:
            continue
        counter = MemoryCounter()
        lookup.lookup(destination, clue, counter)
        total += counter.accesses
        measured += 1
    return total / measured if measured else 0.0


def shaping_report(
    sender_entries: Sequence[Entry],
    receiver_entries: Sequence[Entry],
    packets: int = 1000,
    seed: int = 0,
    technique: str = "patricia",
    width: int = 32,
) -> ShapingReport:
    """Measure receiver work before and after §5.4 work shaping."""
    receiver = ReceiverState(receiver_entries, width)
    shaped = shape_sender_table(sender_entries, receiver_entries, width)
    before_overlay = TrieOverlay(
        BinaryTrie.from_prefixes(sender_entries, width), receiver.trie
    )
    after_overlay = TrieOverlay(
        BinaryTrie.from_prefixes(shaped, width), receiver.trie
    )
    return ShapingReport(
        receiver_work_before=_receiver_work(
            sender_entries, receiver, packets, seed, technique
        ),
        receiver_work_after=_receiver_work(
            shaped, receiver, packets, seed, technique
        ),
        problematic_before=len(before_overlay.problematic_clues()),
        problematic_after=len(after_overlay.problematic_clues()),
        sender_size_before=len(list(sender_entries)),
        sender_size_after=len(shaped),
    )
