"""Partial deployment in a heterogeneous network (§5.3).

The scheme needs no flag day: a router that has not deployed it simply
ignores (and hopefully relays) the clue, and any clue-aware router
downstream of another clue-aware router still benefits — "even if the
packet has traveled several hops since a clue was last added to it, the
clue it carries is still a prefix of the packet destination".

This module builds a chain of neighbouring routers (each table derived
from its upstream's) and sweeps the fraction of clue-aware routers from
0 to 1, measuring average per-hop memory references.  The two legacy
behaviours — relaying vs stripping the clue — are both supported, showing
how much of the benefit survives non-participating hops.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.addressing import Address, Prefix
from repro.netsim.network import Network
from repro.netsim.packet import Packet
from repro.netsim.router import ClueRouter, LegacyRouter
from repro.tablegen.neighbors import NeighborProfile, derive_neighbor
from repro.tablegen.synthetic import Entry, generate_table


def rehop(entries: Sequence[Entry], next_hop: object) -> List[Entry]:
    """Point every entry of a table at one next hop (chain wiring)."""
    return [(prefix, next_hop) for prefix, _old in entries]


def build_neighbor_chain(
    hops: int,
    table_size: int,
    seed: int = 0,
    profile: Optional[NeighborProfile] = None,
) -> List[List[Entry]]:
    """``hops`` tables, each derived from the previous one."""
    if hops < 2:
        raise ValueError("a chain needs at least two routers")
    profile = profile if profile is not None else NeighborProfile()
    tables = [generate_table(table_size, seed=seed)]
    for index in range(1, hops):
        tables.append(derive_neighbor(tables[-1], profile, seed=seed + index))
    return tables


class DeploymentPoint:
    """One sweep sample: deployment fraction and measured cost."""

    __slots__ = ("fraction", "enabled", "avg_per_hop", "avg_total")

    def __init__(
        self, fraction: float, enabled: int, avg_per_hop: float, avg_total: float
    ):
        self.fraction = fraction
        self.enabled = enabled
        self.avg_per_hop = avg_per_hop
        self.avg_total = avg_total

    def __repr__(self) -> str:
        return "DeploymentPoint(fraction=%.2f, per_hop=%.2f)" % (
            self.fraction,
            self.avg_per_hop,
        )


def _build_chain_network(
    tables: Sequence[Sequence[Entry]],
    enabled: Sequence[bool],
    technique: str,
    relay_clues: bool,
) -> Tuple[Network, List[str]]:
    names = ["h%d" % i for i in range(len(tables))]
    network = Network()
    for index, table in enumerate(tables):
        hop = names[index + 1] if index + 1 < len(names) else names[index]
        wired = rehop(table, hop)
        if enabled[index]:
            router = ClueRouter(
                names[index], wired, technique=technique, preprocess=True
            )
            if index > 0:
                upstream_hop = names[index]
                router.register_neighbor(
                    names[index - 1], rehop(tables[index - 1], upstream_hop)
                )
            network.add_router(router)
        else:
            network.add_router(
                LegacyRouter(
                    names[index], wired, technique=technique, relay_clues=relay_clues
                )
            )
    return network, names


def deployment_sweep(
    tables: Sequence[Sequence[Entry]],
    fractions: Sequence[float],
    packets: int = 200,
    seed: int = 0,
    technique: str = "patricia",
    relay_clues: bool = True,
    warmup: int = 50,
) -> List[DeploymentPoint]:
    """Measure per-hop cost as the clue-aware fraction grows.

    For each fraction, a random subset of the chain is upgraded; packets
    are addressed to prefixes of the last router's table so they traverse
    the full chain.  ``warmup`` extra packets populate the learned clue
    tables before measurement (steady state).
    """
    rng = random.Random(seed)
    results: List[DeploymentPoint] = []
    last_table = list(tables[-1])
    hops = len(tables)
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fractions must be within [0, 1]")
        enabled_count = round(fraction * hops)
        chosen = set(rng.sample(range(hops), k=enabled_count))
        enabled = [index in chosen for index in range(hops)]
        network, names = _build_chain_network(
            tables, enabled, technique, relay_clues
        )
        total_accesses = 0
        total_hops = 0
        for number in range(warmup + packets):
            prefix, _hop = last_table[rng.randrange(len(last_table))]
            destination = prefix.random_address(rng)
            packet = Packet(destination)
            network.forward(packet, names[0])
            if number >= warmup:
                total_accesses += packet.total_accesses()
                total_hops += packet.hop_count()
        avg_total = total_accesses / packets if packets else 0.0
        avg_per_hop = total_accesses / total_hops if total_hops else 0.0
        results.append(
            DeploymentPoint(fraction, enabled_count, avg_per_hop, avg_total)
        )
    return results
