"""Packets and per-hop work traces.

A packet carries its destination address and the clue header field; every
router that processes it appends a :class:`HopRecord`, so experiments can
read off the per-router work profile (Figure 1) and the end-to-end cost.
"""

from __future__ import annotations

from typing import List, Optional

from repro.addressing import Address, Prefix
from repro.core.clue import ClueHeader


class HopRecord:
    """What one router did to the packet."""

    __slots__ = ("router", "accesses", "bmp", "incoming_clue_length", "method")

    def __init__(
        self,
        router: str,
        accesses: int,
        bmp: Optional[Prefix],
        incoming_clue_length: Optional[int],
        method: Optional[str] = None,
    ):
        self.router = router
        self.accesses = accesses
        self.bmp = bmp
        self.incoming_clue_length = incoming_clue_length
        #: Resolution method the router charged (one of
        #: :data:`repro.lookup.counters.METHODS`), None for routers that
        #: predate method tagging.
        self.method = method

    def bmp_length(self) -> Optional[int]:
        """Length of the BMP found at this hop (None on a miss)."""
        return self.bmp.length if self.bmp is not None else None

    def __repr__(self) -> str:
        return "HopRecord(%s, accesses=%d, bmp=%s)" % (
            self.router,
            self.accesses,
            self.bmp,
        )


class Packet:
    """An IP packet with the clue extension."""

    __slots__ = ("destination", "clue", "trace", "ttl")

    def __init__(self, destination: Address, ttl: int = 64):
        self.destination = destination
        self.clue = ClueHeader()
        self.trace: List[HopRecord] = []
        self.ttl = ttl

    def clue_prefix(self) -> Optional[Prefix]:
        """The clue currently on the packet, decoded against destination."""
        return self.clue.clue_prefix(self.destination)

    def total_accesses(self) -> int:
        """Memory references spent on this packet across all hops."""
        return sum(record.accesses for record in self.trace)

    def hop_count(self) -> int:
        """Routers traversed so far."""
        return len(self.trace)

    def bmp_lengths(self) -> List[Optional[int]]:
        """Per-hop BMP lengths (the Figure 1 upper curve)."""
        return [record.bmp_length() for record in self.trace]

    def work_profile(self) -> List[int]:
        """Per-hop memory references (the Figure 1 lower curve)."""
        return [record.accesses for record in self.trace]

    def methods(self) -> List[Optional[str]]:
        """Per-hop resolution methods (for telemetry reconciliation)."""
        return [record.method for record in self.trace]

    def __repr__(self) -> str:
        return "Packet(dest=%s, hops=%d, clue=%r)" % (
            self.destination,
            len(self.trace),
            self.clue,
        )
