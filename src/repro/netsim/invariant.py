"""The never-wrong-forwarding invariant, shared by churn and faults.

The paper's robustness claim reduces to one checkable statement: at
every hop, the BMP the router acted on equals what its *own* full
lookup would have found.  Degradation (misses, deactivated records,
quarantined neighbours, dropped packets) is allowed; a divergent
forwarding decision never is.  Both the churn engine and the fault
engine assert this hop by hop on live traffic.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.netsim.packet import Packet


def wrong_hops(network, packet: Packet) -> int:
    """Hops of ``packet`` whose recorded BMP diverges from the oracle."""
    return len(wrong_hop_details(network, packet))


def wrong_hop_details(network, packet: Packet) -> List[Tuple[str, str, str]]:
    """``(router, found, oracle)`` for every hop that violated the invariant.

    The oracle is the hop router's own ``ReceiverState.best_match`` —
    exactly the lookup a clueless deployment would have run.  Routers
    without a receiver state (e.g. exotic test doubles) are skipped.
    """
    violations: List[Tuple[str, str, str]] = []
    destination = packet.destination
    for hop in packet.trace:
        router = network.routers.get(hop.router)
        if router is None:
            continue
        receiver = getattr(router, "receiver", None)
        if receiver is None:
            continue
        oracle, _hop = receiver.best_match(destination)
        if hop.bmp != oracle:
            violations.append((hop.router, str(hop.bmp), str(oracle)))
    return violations
