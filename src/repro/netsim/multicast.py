"""Clues for IP multicast (§7).

The conclusions list IP-multicasting among the services distributed IP
lookup "can support and be beneficial for".  A multicast forwarding
entry maps a *group prefix* to the set of outgoing interfaces (plus the
RPF check against the source); the longest-group-prefix match is the
same computation as unicast LPM, so the clue machinery applies verbatim
— the upstream router stamps the group BMP it matched, the downstream
router resolves its own (out-interface set valued) entry in ≈1 memory
reference.

Group tables here live in the historical class-D space (224.0.0.0/4).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.addressing import Address, Prefix
from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.lookup import BASELINES
from repro.lookup.counters import MemoryCounter
from repro.trie.binary_trie import BinaryTrie

#: The class-D multicast block.
MULTICAST_BLOCK = Prefix.parse("224.0.0.0/4")

Interfaces = FrozenSet[str]
GroupEntry = Tuple[Prefix, Interfaces]


def generate_group_table(
    count: int,
    seed: int = 0,
    interfaces: Sequence[str] = ("if0", "if1", "if2", "if3"),
) -> List[GroupEntry]:
    """Synthetic multicast state: group prefixes → outgoing-interface sets.

    Groups are drawn inside 224.0.0.0/4 at /8–/32 granularity (shared
    trees use coarse group ranges, source-specific state is /32).
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    rng = random.Random(seed)
    table: Dict[Prefix, Interfaces] = {}
    attempts = count * 20
    while len(table) < count and attempts:
        attempts -= 1
        length = rng.choice((8, 12, 16, 24, 32, 32))
        extra = length - MULTICAST_BLOCK.length
        bits = (MULTICAST_BLOCK.bits << extra) | rng.getrandbits(extra)
        prefix = Prefix(bits, length, 32)
        if prefix in table:
            continue
        fanout = rng.randint(1, len(interfaces))
        table[prefix] = frozenset(rng.sample(list(interfaces), k=fanout))
    return sorted(table.items(), key=lambda item: (item[0].length, item[0].bits))


def derive_neighbor_groups(
    base: Sequence[GroupEntry],
    seed: int = 1,
    drop: float = 0.02,
    interfaces: Sequence[str] = ("if0", "if1", "if2", "if3"),
) -> List[GroupEntry]:
    """A neighbouring router's multicast state (pruned branches differ)."""
    rng = random.Random(seed)
    result: Dict[Prefix, Interfaces] = {}
    for prefix, oifs in base:
        if rng.random() < drop:
            continue
        # Downstream of a prune, the interface set often differs.
        if rng.random() < 0.2:
            fanout = rng.randint(1, len(interfaces))
            oifs = frozenset(rng.sample(list(interfaces), k=fanout))
        result[prefix] = oifs
    return sorted(result.items(), key=lambda item: (item[0].length, item[0].bits))


class MulticastForwarder:
    """A pair of multicast routers running distributed group lookup."""

    def __init__(
        self,
        upstream: Sequence[GroupEntry],
        local: Sequence[GroupEntry],
        technique: str = "patricia",
    ):
        for prefix, _oifs in list(upstream) + list(local):
            if not MULTICAST_BLOCK.is_prefix_of(prefix):
                raise ValueError("group prefix %s outside 224.0.0.0/4" % prefix)
        self.upstream_trie = BinaryTrie.from_prefixes(upstream)
        self.receiver = ReceiverState(local)
        method = AdvanceMethod(self.upstream_trie, self.receiver, technique)
        self.assisted = ClueAssistedLookup(
            BASELINES[technique](self.receiver.entries), method.build_table()
        )

    def upstream_clue(self, group: Address) -> Optional[Prefix]:
        """What the upstream router stamps for this group."""
        return self.upstream_trie.best_prefix(group)

    def forward(
        self,
        group: Address,
        clue: Optional[Prefix] = None,
        counter: Optional[MemoryCounter] = None,
    ) -> Optional[Interfaces]:
        """The local outgoing-interface set for the group (None = prune)."""
        result = self.assisted.lookup(group, clue, counter)
        return result.next_hop

    def oracle(self, group: Address) -> Optional[Interfaces]:
        """Full local lookup (test reference)."""
        _prefix, oifs = self.receiver.best_match(group)
        return oifs
