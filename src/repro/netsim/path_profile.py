"""The Figure 1 scenario: BMP length and work along a packet's path.

The paper's Figure 1 sketches how a packet's best matching prefix grows
on its way from source to destination, and argues the per-router work
under distributed IP lookup is (roughly) the *derivative* of that curve —
so the heavily-loaded backbone routers in the flat middle of the curve do
almost no work.

This module builds a concrete router chain realising a chosen BMP-length
profile: router *i*'s table contains the destination's prefix truncated
to the profile's *i*-th length (plus realistic background prefixes that
do not interfere), wired hop by hop.  Forwarding one packet through the
chain with clues, and once more through an identical legacy chain,
produces both curves of the figure.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.addressing import Address, Prefix
from repro.netsim.network import Network
from repro.netsim.packet import Packet
from repro.netsim.router import ClueRouter, LegacyRouter
from repro.tablegen.synthetic import Entry, generate_table

#: Default BMP-length profile: specific near the edges, flat aggregates
#: across the backbone, fully resolved (/32 host route) at the last hop.
DEFAULT_LENGTH_PROFILE: Tuple[int, ...] = (8, 10, 12, 12, 12, 16, 24, 32)


class PathProfile:
    """The measured Figure 1 curves for one packet."""

    __slots__ = ("routers", "bmp_lengths", "clue_work", "legacy_work")

    def __init__(
        self,
        routers: List[str],
        bmp_lengths: List[Optional[int]],
        clue_work: List[int],
        legacy_work: List[int],
    ):
        self.routers = routers
        self.bmp_lengths = bmp_lengths
        self.clue_work = clue_work
        self.legacy_work = legacy_work

    def derivative(self) -> List[int]:
        """Per-hop BMP-length increase (first hop from zero)."""
        series: List[int] = []
        previous = 0
        for length in self.bmp_lengths:
            current = length if length is not None else 0
            series.append(max(current - previous, 0))
            previous = current
        return series

    def rows(self) -> List[Tuple[str, Optional[int], int, int, int]]:
        """(router, bmp_length, delta, clue_work, legacy_work) per hop."""
        deltas = self.derivative()
        return [
            (router, length, delta, clue, legacy)
            for router, length, delta, clue, legacy in zip(
                self.routers,
                self.bmp_lengths,
                deltas,
                self.clue_work,
                self.legacy_work,
            )
        ]


class ChainScenario:
    """A source→backbone→destination chain realising a length profile."""

    def __init__(
        self,
        length_profile: Sequence[int] = DEFAULT_LENGTH_PROFILE,
        background: int = 300,
        seed: int = 0,
        technique: str = "patricia",
        method: str = "advance",
        width: int = 32,
        instruments=None,
    ):
        if len(length_profile) < 2:
            raise ValueError("the profile needs at least two hops")
        if any(not 1 <= length <= width for length in length_profile):
            raise ValueError("profile lengths must be within [1, width]")
        self.length_profile = tuple(length_profile)
        self.width = width
        self.technique = technique
        self.method = method
        #: Optional :class:`repro.telemetry.LookupInstruments` observing
        #: both chains (clue-aware and legacy) through one registry.
        self.instruments = instruments
        rng = random.Random(seed)
        self.destination = Address(rng.getrandbits(width), width)
        self.router_names = ["r%d" % i for i in range(len(length_profile))]
        self.tables = self._build_tables(background, seed)
        self.clue_network = self._build_network(clue_aware=True)
        self.legacy_network = self._build_network(clue_aware=False)

    # ------------------------------------------------------------------
    def _build_tables(self, background: int, seed: int) -> List[List[Entry]]:
        tables: List[List[Entry]] = []
        names = self.router_names
        for index, length in enumerate(self.length_profile):
            next_hop = names[index + 1] if index + 1 < len(names) else names[index]
            noise = generate_table(
                background, seed=seed + index, width=self.width, next_hops=(next_hop,)
            )
            table = [
                (prefix, hop)
                for prefix, hop in noise
                if not (prefix.matches(self.destination) and prefix.length > length)
            ]
            table.append((self.destination.prefix(length), next_hop))
            # Deduplicate in case the noise already held the exact prefix.
            unique = {}
            for prefix, hop in table:
                unique[prefix] = hop
            tables.append(
                sorted(unique.items(), key=lambda item: (item[0].length, item[0].bits))
            )
        return tables

    def _build_network(self, clue_aware: bool) -> Network:
        network = Network(instruments=self.instruments)
        for index, name in enumerate(self.router_names):
            if clue_aware:
                router = ClueRouter(
                    name,
                    self.tables[index],
                    technique=self.technique,
                    method=self.method,
                    width=self.width,
                )
                if index > 0:
                    router.register_neighbor(
                        self.router_names[index - 1], self.tables[index - 1]
                    )
            else:
                router = LegacyRouter(
                    name, self.tables[index], technique=self.technique, width=self.width
                )
            network.add_router(router)
        return network

    # ------------------------------------------------------------------
    def profile(self, warm: bool = True) -> PathProfile:
        """Forward one packet through both chains and collect the curves.

        ``warm`` sends a first packet to populate the learned clue tables
        (the paper's steady state); the measured packet follows.
        """
        if warm:
            self.clue_network.forward(
                Packet(self.destination), self.router_names[0]
            )
        clue_packet = Packet(self.destination)
        clue_report = self.clue_network.forward(clue_packet, self.router_names[0])
        legacy_packet = Packet(self.destination)
        self.legacy_network.forward(legacy_packet, self.router_names[0])
        if not clue_report.delivered:
            raise RuntimeError("chain failed to deliver: %s" % clue_report.exit_reason)
        return PathProfile(
            routers=list(self.router_names),
            bmp_lengths=clue_packet.bmp_lengths(),
            clue_work=clue_packet.work_profile(),
            legacy_work=legacy_packet.work_profile(),
        )
