"""MPLS / Tag-switching baseline and its clue integration (§5.1, Figure 8).

Topology-driven MPLS binds a label to a prefix (a FEC); packets matching
the FEC are switched in one label-table reference per hop.  The catch the
paper exploits: at an *aggregation point* — a router whose own table holds
prefixes extending the FEC — the label no longer determines the route, so
the router must run a full IP lookup to pick the outgoing label (Figure 8,
router R4).

The clue integration replaces that full lookup: every control-driven label
is associated with its FEC prefix, i.e. with a clue, so the aggregation
router can index its clue table by the label (no hash needed) and resolve
in ≈1 reference like everywhere else.

Also modelled: the label-distribution control cost (one binding message
per FEC per link), which the clue scheme simply does not have.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.addressing import Address, Prefix
from repro.core.advance import AdvanceMethod
from repro.core.receiver import ReceiverState
from repro.lookup import BASELINES
from repro.lookup.counters import MemoryCounter
from repro.tablegen.synthetic import Entry
from repro.trie.binary_trie import BinaryTrie


class LabelEntry:
    """One label-table record: swap and forward, or exit the LSP."""

    __slots__ = ("fec", "next_hop", "out_label")

    def __init__(self, fec: Prefix, next_hop: str, out_label: Optional[int]):
        self.fec = fec
        self.next_hop = next_hop
        #: None marks the end of the label-switched path (pop the label).
        self.out_label = out_label


class MplsRouter:
    """A label-switching router with an IP control plane."""

    def __init__(
        self,
        name: str,
        entries: Sequence[Entry],
        technique: str = "patricia",
        width: int = 32,
    ):
        self.name = name
        self.receiver = ReceiverState(entries, width)
        self.base = BASELINES[technique](self.receiver.entries, width)
        self.label_table: Dict[int, LabelEntry] = {}
        #: label → Advance clue machinery for the clue integration.
        self._clue_methods: Dict[int, AdvanceMethod] = {}
        self._clue_entries: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def bind_label(
        self, label: int, fec: Prefix, next_hop: str, out_label: Optional[int]
    ) -> None:
        """Install a label binding (a received label-distribution message)."""
        self.label_table[label] = LabelEntry(fec, next_hop, out_label)

    def is_aggregation_point(self, label: int) -> bool:
        """True if this router's table extends the label's FEC (Figure 8)."""
        entry = self.label_table.get(label)
        if entry is None:
            return False
        return self.receiver.trie.has_marked_descendant(entry.fec)

    def enable_clue_for_label(
        self, label: int, upstream_entries: Sequence[Entry]
    ) -> None:
        """Precompute the clue record the label maps to (§5.1).

        ``upstream_entries`` is the table of the router at the other end of
        the label-switched hop (the clue sender the label stands for).
        """
        binding = self.label_table.get(label)
        if binding is None:
            raise KeyError("label %d is not bound" % label)
        method = AdvanceMethod(
            BinaryTrie.from_prefixes(upstream_entries, self.receiver.width),
            self.receiver,
            technique="binary",
        )
        self._clue_methods[label] = method
        self._clue_entries[label] = method.build_entry(binding.fec)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def switch(
        self, label: int, counter: MemoryCounter
    ) -> Tuple[Optional[str], Optional[int]]:
        """Pure label switching: one reference into the label table."""
        counter.touch()
        entry = self.label_table.get(label)
        if entry is None:
            return None, None
        return entry.next_hop, entry.out_label

    def ip_lookup(
        self, address: Address, counter: MemoryCounter
    ) -> Tuple[Optional[Prefix], Optional[str]]:
        """Full IP lookup (what plain MPLS does at an aggregation point)."""
        result = self.base.lookup(address, counter)
        return result.prefix, result.next_hop

    def clue_lookup(
        self, label: int, address: Address, counter: MemoryCounter
    ) -> Tuple[Optional[Prefix], Optional[str]]:
        """Clue-assisted resolution at an aggregation point (§5.1).

        The label itself indexes the clue record — no hash function — so
        the single charged reference is the record fetch; a problematic
        clue pays its (tiny) restricted search on top.
        """
        entry = self._clue_entries.get(label)
        if entry is None:
            return self.ip_lookup(address, counter)
        counter.touch()
        if entry.continuation is not None:
            match = entry.continuation.search(address, counter)
            if match is not None:
                return match[0], match[1]
        return entry.fd_prefix, entry.fd_next_hop


class AggregationScenario:
    """Figure 8: an LSP crossing an aggregation point.

    Routers ``R1 → R2 → R3 → R4``: R1 is the ingress (full IP lookup,
    pushes the label), R2/R3 switch labels, R4 aggregates — its table
    holds more-specifics of the FEC.
    """

    def __init__(
        self,
        fec: Prefix,
        specifics: Sequence[Entry],
        background: Sequence[Entry],
        technique: str = "patricia",
        width: int = 32,
    ):
        for prefix, _hop in specifics:
            if not fec.is_prefix_of(prefix) or prefix.length <= fec.length:
                raise ValueError(
                    "specific %s must strictly extend the FEC %s" % (prefix, fec)
                )
        self.fec = fec
        self.width = width
        names = ["R1", "R2", "R3", "R4"]
        upstream_table = sorted(
            list(background) + [(fec, "R4")],
            key=lambda item: (item[0].length, item[0].bits),
        )
        r4_table = sorted(
            list(background) + [(fec, "R4")] + list(specifics),
            key=lambda item: (item[0].length, item[0].bits),
        )
        self.routers: Dict[str, MplsRouter] = {}
        for name in names[:-1]:
            self.routers[name] = MplsRouter(name, upstream_table, technique, width)
        self.routers["R4"] = MplsRouter("R4", r4_table, technique, width)
        # Label distribution along the chain: 10 → 11 → 12, popped at R4.
        self.routers["R1"].bind_label(10, fec, "R2", 11)
        self.routers["R2"].bind_label(11, fec, "R3", 12)
        self.routers["R3"].bind_label(12, fec, "R4", 13)
        self.routers["R4"].bind_label(13, fec, "R4", None)
        self.routers["R4"].enable_clue_for_label(13, upstream_table)
        #: one binding message per FEC per link (LDP-style control cost).
        self.setup_messages = 3

    def measure(self, address: Address) -> Dict[str, List[int]]:
        """Per-hop references for the three schemes on one destination."""
        if not self.fec.matches(address):
            raise ValueError("destination %s is outside the FEC" % address)
        schemes: Dict[str, List[int]] = {"ip": [], "mpls": [], "mpls+clue": []}
        # Pure IP: a full lookup at every router.
        for name in ("R1", "R2", "R3", "R4"):
            counter = MemoryCounter()
            self.routers[name].ip_lookup(address, counter)
            schemes["ip"].append(counter.accesses)
        # Plain MPLS: ingress lookup, switching, full lookup at R4.
        for variant in ("mpls", "mpls+clue"):
            counter = MemoryCounter()
            self.routers["R1"].ip_lookup(address, counter)
            schemes[variant].append(counter.accesses)
            label = 11
            for name in ("R2", "R3"):
                counter = MemoryCounter()
                _hop, label = self.routers[name].switch(label, counter)
                schemes[variant].append(counter.accesses)
            counter = MemoryCounter()
            if variant == "mpls":
                self.routers["R4"].ip_lookup(address, counter)
            else:
                self.routers["R4"].clue_lookup(label, address, counter)
            schemes[variant].append(counter.accesses)
        return schemes

    def aggregation_cost(self, addresses: Sequence[Address]) -> Dict[str, float]:
        """Average R4 cost per scheme over many destinations."""
        totals = {"ip": 0, "mpls": 0, "mpls+clue": 0}
        for address in addresses:
            per_hop = self.measure(address)
            for scheme, series in per_hop.items():
                totals[scheme] += series[-1]
        count = len(addresses) or 1
        return {scheme: total / count for scheme, total in totals.items()}
