"""The chaos engine: fault-tolerant serving with a never-wrong audit.

:class:`ChaosEngine` is the resilience layer's counterpart of
:class:`repro.serve.engine.ServeEngine`: the same §6 sender/receiver
fixture, the same seeded Zipf/bursty workload, but every table slice is
built R times (:mod:`repro.resilience.replica`) and the tick loop
survives the shard-level fault vocabulary of
:class:`repro.faults.inject.ShardFaultPlan` — replica crashes with
off-hot-path rebuild + re-certification, slow-replica windows, and
whole-batch drops.

Per-request lifecycle (all ticks are the engine's integer clock; RC103
— no wall clocks anywhere in the plane):

* **dispatch** — the destination's slice and preferred replica come
  from one vectorized pass; candidates are tried in health-then-
  rotation order, spilling to the next replica when a queue is full
  (a *failover*) and shedding/backlogging only when every live replica
  refused;
* **deadline** — every request carries an ``arrival + deadline_ticks``
  budget; a request not served by then is *expired*, never silently
  lost;
* **retry** — a request lost to a crash or a dropped batch is
  re-dispatched with exponential backoff, at most ``max_retries``
  times;
* **hedge** — a request still pending ``hedge_ticks`` after its first
  dispatch is duplicated to a different replica; the first completion
  wins and late duplicates are counted, not double-served;
* **degrade** — when the retry budget is exhausted or no replica of the
  slice is dispatchable, the request is answered *immediately* from
  the full-table scalar :class:`~repro.core.lookup.ClueAssistedLookup`
  — the answer every shard is certified against, so the degraded path
  can change latency but never the result.

The end-of-run audit re-verifies ``(prefix, next_hop)`` for **every**
served request — including retried, hedged, and degraded ones, decoded
from the exact table epoch that served them — against the full-table
scalar lookup and the receiver's longest-prefix-match oracle, and a
conservation check proves ``offered = served + shed + expired`` with
nothing left pending.  Wrong answers must be zero: faults may cost
latency and availability, never correctness.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.addressing import Address
from repro.core.advance import AdvanceMethod
from repro.core.lookup import ClueAssistedLookup
from repro.core.receiver import ReceiverState
from repro.core.simple import SimpleMethod
from repro.fastpath.backend import get_numpy, numpy_eligible
from repro.fastpath.kernels import as_destination_array, as_length_array
from repro.faults.inject import (
    KIND_BATCH_DROP,
    KIND_SHARD_CRASH,
    KIND_SHARD_RESTART,
    KIND_SHARD_SLOW,
    ShardFaultPlan,
    shard_chaos_plan,
)
from repro.lookup.regular import RegularTrieLookup
from repro.resilience.health import ShardHealth, ShardHealthPolicy
from repro.resilience.replica import (
    MAX_REPLICATION,
    ReplicaPlan,
    build_replica_shard,
    build_replica_shards,
    replica_rotation,
)
from repro.resilience.report import ResilienceReport
from repro.serve.batcher import BatchPolicy, RequestBatcher
from repro.serve.loadgen import LoadProfile, ZipfLoadGenerator
from repro.serve.dispatch import ShardPlan, route_batch
from repro.serve.report import latency_summary
from repro.tablegen import NeighborProfile, derive_neighbor, generate_table
from repro.trie.binary_trie import BinaryTrie

Clock = Optional[Callable[[], float]]

#: Terminal request states (the conservation check's partition).
PENDING = 0
SERVED = 1
SHED = 2
EXPIRED = 3


class ResilienceConfig:
    """Everything a chaos run depends on — echoed into the payload."""

    __slots__ = (
        "shards",
        "replication",
        "partition",
        "method",
        "policy",
        "table_size",
        "requests",
        "max_batch",
        "max_wait",
        "queue_capacity",
        "zipf_alpha",
        "universe",
        "rate",
        "seed",
        "width",
        "force_python",
        "deadline_ticks",
        "hedge_ticks",
        "max_retries",
        "retry_backoff",
        "service_ticks",
        "rebuild_ticks",
    )

    def __init__(
        self,
        shards: int = 2,
        replication: int = 2,
        partition: str = "range",
        method: str = "advance",
        policy: str = "shed",
        table_size: int = 20000,
        requests: int = 250000,
        max_batch: int = 256,
        max_wait: int = 4,
        queue_capacity: int = 4096,
        zipf_alpha: float = 1.1,
        universe: int = 4096,
        rate: float = 512.0,
        seed: int = 42,
        width: int = 32,
        force_python: bool = False,
        deadline_ticks: int = 32,
        hedge_ticks: int = 6,
        max_retries: int = 3,
        retry_backoff: int = 1,
        service_ticks: int = 1,
        rebuild_ticks: int = 8,
    ):
        if shards < 1:
            raise ValueError("need at least one shard, got %d" % shards)
        if not 1 <= replication <= MAX_REPLICATION:
            raise ValueError(
                "replication must be in [1, %d], got %d"
                % (MAX_REPLICATION, replication)
            )
        if requests < 1:
            raise ValueError("requests must be >= 1, got %d" % requests)
        if table_size < 1:
            raise ValueError("table_size must be >= 1, got %d" % table_size)
        if deadline_ticks < 1:
            raise ValueError("deadline_ticks must be >= 1")
        if hedge_ticks < 1:
            raise ValueError("hedge_ticks must be >= 1")
        if not 0 <= max_retries <= 64:
            raise ValueError("max_retries must be in [0, 64]")
        if retry_backoff < 1:
            raise ValueError("retry_backoff must be >= 1")
        if service_ticks < 1:
            raise ValueError("service_ticks must be >= 1")
        if rebuild_ticks < 1:
            raise ValueError("rebuild_ticks must be >= 1")
        self.shards = shards
        self.replication = replication
        self.partition = partition
        self.method = method
        self.policy = policy
        self.table_size = table_size
        self.requests = requests
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.queue_capacity = queue_capacity
        self.zipf_alpha = zipf_alpha
        self.universe = universe
        self.rate = rate
        self.seed = seed
        self.width = width
        self.force_python = force_python
        self.deadline_ticks = deadline_ticks
        self.hedge_ticks = hedge_ticks
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.service_ticks = service_ticks
        self.rebuild_ticks = rebuild_ticks

    def batch_policy(self) -> BatchPolicy:
        """The per-worker queue policy.

        Worker batchers always run in ``block`` mode internally: a full
        queue must *refuse* the overflow so the dispatcher can spill it
        to the next replica — the engine applies the configured
        shed/block policy only after every candidate refused.
        """
        return BatchPolicy(
            max_batch=self.max_batch,
            max_wait=self.max_wait,
            capacity=self.queue_capacity,
            policy="block",
        )

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}


class _Flight:
    """One batch in service: commits at its scheduled completion tick."""

    __slots__ = ("worker", "table_index", "indices", "codes", "cancelled")

    def __init__(self, worker, table_index, indices, codes):
        self.worker = worker
        self.table_index = table_index
        self.indices = indices
        self.codes = codes
        self.cancelled = False


class _Worker:
    """Per-run mutable state of one replica worker."""

    __slots__ = (
        "slice_id",
        "replica",
        "shard",
        "table_index",
        "batcher",
        "health",
        "down",
        "rebuilding",
        "flights",
        "res_metrics",
        "requests_run",
        "batches_run",
    )

    def __init__(self, slice_id, replica, shard, table_index, batcher,
                 health, res_metrics):
        self.slice_id = slice_id
        self.replica = replica
        self.shard = shard
        self.table_index = table_index
        self.batcher = batcher
        self.health = health
        self.down = False
        self.rebuilding = False
        self.flights: List[_Flight] = []
        self.res_metrics = res_metrics
        self.requests_run = 0
        self.batches_run = 0


class _RunState:
    """Everything one chaos run mutates (fresh per ``run`` call)."""

    __slots__ = (
        "workers",
        "tables",
        "status",
        "attempts",
        "hedged",
        "last_replica",
        "result_src",
        "result_code",
        "completions",
        "retry_due",
        "hedge_due",
        "rebuild_due",
        "backlog",
        "degraded_cache",
        "latency",
        "served",
        "shed",
        "expired",
        "degraded",
        "retries",
        "hedges",
        "failovers",
        "late",
        "batches",
        "batch_drops",
        "crashes",
        "restarts",
        "rebuilt_lanes",
        "expire_cursor",
        "ticks_run",
    )

    def __init__(self, n: int):
        self.workers: List[List[_Worker]] = []
        self.tables: List[object] = []
        self.status = bytearray(n)
        self.attempts = bytearray(n)
        self.hedged = bytearray(n)
        self.last_replica = bytearray(n)
        self.result_src = [-1] * n
        self.result_code = [0] * n
        self.completions: Dict[int, List[_Flight]] = {}
        self.retry_due: Dict[int, List[int]] = {}
        self.hedge_due: Dict[int, List[int]] = {}
        self.rebuild_due: Dict[int, List[tuple]] = {}
        self.backlog: List[int] = []
        self.degraded_cache: Dict[tuple, tuple] = {}
        self.latency: Dict[int, int] = {}
        self.served = 0
        self.shed = 0
        self.expired = 0
        self.degraded = 0
        self.retries = 0
        self.hedges = 0
        self.failovers = 0
        self.late = 0
        self.batches = 0
        self.batch_drops = 0
        self.crashes = 0
        self.restarts = 0
        self.rebuilt_lanes = 0
        self.expire_cursor = 0
        self.ticks_run = 0


class ChaosEngine:
    """Builds the replicated plane once, then replays seeded chaos runs."""

    def __init__(
        self,
        config: Optional[ResilienceConfig] = None,
        instruments=None,
        health_policy: Optional[ShardHealthPolicy] = None,
    ):
        self.config = config if config is not None else ResilienceConfig()
        cfg = self.config
        self.instruments = instruments
        self.health_policy = (
            health_policy if health_policy is not None else ShardHealthPolicy()
        )
        self.sender_entries = generate_table(
            cfg.table_size, seed=cfg.seed, width=cfg.width
        )
        self.receiver_entries = derive_neighbor(
            self.sender_entries, NeighborProfile(), seed=cfg.seed + 1
        )
        self.sender_trie = BinaryTrie(cfg.width)
        for prefix, next_hop in self.sender_entries:
            self.sender_trie.insert(prefix, next_hop)
        self.rplan = ReplicaPlan(
            ShardPlan(cfg.shards, cfg.partition, cfg.width), cfg.replication
        )
        # Every replica slice is compiled and certified here, exactly
        # like a PR 6 shard — an uncertified replica never serves, and
        # the retained slices let crashes rebuild off the hot path.
        self.shards, self.entry_slices, self.clue_slices = (
            build_replica_shards(
                self.rplan,
                self.receiver_entries,
                self.sender_trie,
                method=cfg.method,
                width=cfg.width,
                seed=cfg.seed,
                force_python=cfg.force_python,
                instruments=instruments,
            )
        )
        self.certified_lanes = sum(
            shard.certified_lanes for row in self.shards for shard in row
        )
        # The degraded path and the audit both answer from the one
        # full-table scalar pair every shard was certified against.
        state = ReceiverState(self.receiver_entries, cfg.width)
        if cfg.method == "advance":
            builder = AdvanceMethod(self.sender_trie, state, "regular")
        else:
            builder = SimpleMethod(state, "regular")
        table = builder.build_table(list(self.sender_trie.prefixes()))
        self.reference = ClueAssistedLookup(
            RegularTrieLookup(self.receiver_entries, cfg.width), table
        )
        self.oracle = RegularTrieLookup(self.receiver_entries, cfg.width)
        self.loadgen = ZipfLoadGenerator(
            self.sender_entries,
            self.sender_trie,
            LoadProfile(
                zipf_alpha=cfg.zipf_alpha,
                universe=cfg.universe,
                rate=cfg.rate,
            ),
            seed=cfg.seed + 2,
            width=cfg.width,
        )
        self._use_numpy = (
            get_numpy() is not None
            and not cfg.force_python
            and numpy_eligible(cfg.width)
        )
        self._workload = None
        self._prep = None
        self._deadline_counter = (
            instruments.serve_deadline_expired
            if instruments is not None
            else None
        )

    # ------------------------------------------------------------------
    def workload(self):
        """The materialized request stream (generated once, reused)."""
        if self._workload is None:
            self._workload = self.loadgen.generate(self.config.requests)
        return self._workload

    def _prepared(self):
        """Workload-derived arrays shared by every run (computed once).

        ``(values, lens, offsets, slice_ids, rotations, arrival)`` —
        the per-request slice id, preferred replica, and arrival tick,
        all from vectorized passes when numpy is available.
        """
        if self._prep is not None:
            return self._prep
        wl = self.workload()
        values, lens, offsets = wl.values, wl.clue_lens, wl.offsets
        if not self._use_numpy and not isinstance(values, list):
            values = values.tolist()
            lens = lens.tolist()
            offsets = offsets.tolist()
        slice_ids = route_batch(
            self.rplan.plan, values, force_python=not self._use_numpy
        )
        rotations = replica_rotation(
            self.rplan, values, force_python=not self._use_numpy
        )
        np = get_numpy()
        if self._use_numpy:
            arrival = np.repeat(
                np.arange(wl.ticks, dtype=np.int64), np.diff(offsets)
            ).tolist()
            slice_ids = slice_ids.tolist()
            rotations = rotations.tolist()
            values_list = values.tolist()
            lens_list = lens.tolist()
        else:
            arrival = []
            for tick in range(wl.ticks):
                arrival.extend(
                    [tick] * (int(offsets[tick + 1]) - int(offsets[tick]))
                )
            values_list = list(values)
            lens_list = list(lens)
            offsets = [int(value) for value in offsets]
        self._prep = (
            values_list,
            lens_list,
            [int(value) for value in offsets],
            slice_ids,
            rotations,
            arrival,
        )
        return self._prep

    def default_plan(
        self,
        crashes: int = 1,
        slowdowns: int = 1,
        drops: int = 1,
        duration: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> ShardFaultPlan:
        """A seeded chaos schedule sized to this engine's workload.

        The settle tail covers the crash rebuild plus the deadline
        budget, so every scheduled episode — including the restart and
        its re-certification — completes while the run is still live.
        """
        cfg = self.config
        ticks = self.workload().ticks
        if duration is None:
            duration = max(4, min(24, ticks // 6))
        settle = cfg.rebuild_ticks + cfg.deadline_ticks + cfg.max_wait + 8
        return shard_chaos_plan(
            cfg.shards,
            cfg.replication,
            ticks,
            crashes=crashes,
            slowdowns=slowdowns,
            drops=drops,
            seed=cfg.seed if seed is None else seed,
            duration=duration,
            settle=settle,
        )

    # ------------------------------------------------------------------
    def run(
        self, plan: Optional[ShardFaultPlan] = None, clock: Clock = None
    ) -> Dict[str, object]:
        """Replay the workload once (with or without faults); one payload.

        Fresh per-run state throughout — two runs of the same engine
        (the baseline/chaos pair :meth:`bench` reports) never share
        queues, health, or table epochs.
        """
        cfg = self.config
        values, lens, offsets, slice_ids, rotations, arrival = (
            self._prepared()
        )
        n = len(values)
        arrival_ticks = len(offsets) - 1
        state = _RunState(n)
        for row in self.shards:
            state.tables.extend(row)
        index = 0
        for s, row in enumerate(self.shards):
            workers_row = []
            for r, shard in enumerate(row):
                res_metrics = (
                    self.instruments.bind_resilience("%d.%d" % (s, r))
                    if self.instruments is not None
                    else None
                )
                workers_row.append(
                    _Worker(
                        s,
                        r,
                        shard,
                        index,
                        RequestBatcher(cfg.batch_policy()),
                        ShardHealth(self.health_policy),
                        res_metrics,
                    )
                )
                index += 1
            state.workers.append(workers_row)
        if plan is not None and self.instruments is not None:
            plan.telemetry = self.instruments
        self._values = values
        self._lens = lens
        self._arrival = arrival
        start = clock() if clock is not None else None
        horizon = (
            arrival_ticks
            + cfg.deadline_ticks
            + cfg.service_ticks
            + cfg.max_wait
            + 16
        )
        if plan is not None:
            horizon += sum(event.extra_ticks for event in plan.slowdowns)
            horizon = max(
                horizon,
                plan.last_event_tick()
                + cfg.rebuild_ticks
                + cfg.deadline_ticks
                + cfg.service_ticks
                + 16,
            )
        for now in range(horizon):
            arriving = now < arrival_ticks
            pending = n - state.served - state.shed - state.expired
            if not arriving and pending == 0 and not state.rebuild_due:
                break
            state.ticks_run = now + 1
            self._commit_completions(state, now)
            if plan is not None:
                self._apply_faults(state, plan, now)
            self._expire_deadlines(state, offsets, now, arrival_ticks)
            for i in state.retry_due.pop(now, ()):
                if state.status[i] == PENDING:
                    self._redispatch(state, i, now)
            if state.backlog:
                self._reoffer_backlog(state, now)
            if arriving:
                lo, hi = offsets[now], offsets[now + 1]
                if hi > lo:
                    self._dispatch_arrivals(
                        state, slice_ids, rotations, lo, hi, now
                    )
            for i in state.hedge_due.pop(now, ()):
                if state.status[i] == PENDING and not state.hedged[i]:
                    self._hedge(state, i, now)
            self._release_batches(state, plan, now)
            if self.instruments is not None:
                self._publish_gauges(state)
        else:
            raise RuntimeError(
                "chaos loop failed to drain within %d ticks" % horizon
            )
        elapsed = clock() - start if clock is not None else None
        return self._payload(state, plan, n, arrival_ticks, elapsed)

    def bench(
        self,
        plan: Optional[ShardFaultPlan] = None,
        clock: Clock = None,
    ) -> ResilienceReport:
        """Baseline run + fault run, one comparative report.

        ``plan=None`` builds :meth:`default_plan`; the baseline always
        runs fault-free so the payload can state exactly what the
        injected adversity cost in latency and availability.
        """
        cfg = self.config
        if plan is None:
            plan = self.default_plan()
        baseline = self.run(plan=None, clock=clock)
        chaos = self.run(plan=plan, clock=clock)
        base_lat = baseline["latency"]
        chaos_lat = chaos["latency"]
        base_totals = baseline["totals"]
        chaos_totals = chaos["totals"]
        base_goodput = base_totals["goodput_per_tick"]
        payload: Dict[str, object] = {
            "bench": "resilience",
            "config": cfg.as_dict(),
            "health_policy": self.health_policy.as_dict(),
            "seed": cfg.seed,
            "width": cfg.width,
            "backend": "numpy" if self._use_numpy else "python",
            "fault_plan": plan.describe(),
            "baseline": baseline,
            "chaos": chaos,
            "certification": {
                "lanes": self.certified_lanes,
                "rebuilt_lanes": chaos["totals"]["rebuilt_lanes"],
                "disagreements": 0,
            },
            "comparison": {
                "availability_without_faults": base_totals["availability"],
                "availability_with_faults": chaos_totals["availability"],
                "p50_without_faults": base_lat["p50"],
                "p50_with_faults": chaos_lat["p50"],
                "p99_without_faults": base_lat["p99"],
                "p99_with_faults": chaos_lat["p99"],
                "p999_without_faults": base_lat["p999"],
                "p999_with_faults": chaos_lat["p999"],
                "goodput_ratio": (
                    chaos_totals["goodput_per_tick"] / base_goodput
                    if base_goodput
                    else None
                ),
            },
        }
        return ResilienceReport(payload)

    # -- dispatch -------------------------------------------------------
    def _dispatch_arrivals(self, state, slice_ids, rotations, lo, hi, now):
        """Group one tick's arrivals by (slice, preferred replica)."""
        groups: Dict[tuple, List[int]] = {}
        for i in range(lo, hi):
            key = (slice_ids[i], rotations[i])
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [i]
            else:
                bucket.append(i)
        for (s, rotation) in sorted(groups):
            self._offer_group(state, s, rotation, groups[(s, rotation)], now)

    def _candidates(self, state, slice_id, rotation, now, exclude=-1):
        """Live workers of the slice in health-then-rotation order."""
        workers = state.workers[slice_id]
        replication = self.rplan.replication
        order = []
        for k in range(replication):
            r = (rotation + k) % replication
            if r == exclude:
                continue
            worker = workers[r]
            if worker.down:
                continue
            rank = worker.health.dispatch_rank(now)
            if rank is None:
                continue
            order.append((rank, k, worker))
        order.sort(key=lambda item: (item[0], item[1]))
        return [worker for _rank, _k, worker in order]

    def _offer_group(self, state, slice_id, rotation, idxs, now,
                     first_dispatch=True):
        """Offer a same-preference group, spilling across replicas."""
        cfg = self.config
        candidates = self._candidates(state, slice_id, rotation, now)
        if not candidates:
            # No replica of the slice is dispatchable at all: last
            # resort, answer from the full-table scalar path right now.
            for i in idxs:
                self._degrade(state, i, now)
            return
        remaining = idxs
        for worker in candidates:
            taken = worker.batcher.offer(remaining, remaining, now)
            if taken:
                accepted = remaining[:taken]
                for i in accepted:
                    state.last_replica[i] = worker.replica
                if worker.replica != rotation:
                    state.failovers += taken
                    if worker.res_metrics is not None:
                        worker.res_metrics.failovers.inc(taken)
                if (
                    first_dispatch
                    and self.rplan.replication > 1
                ):
                    state.hedge_due.setdefault(
                        now + cfg.hedge_ticks, []
                    ).extend(accepted)
                remaining = remaining[taken:]
            if not remaining:
                return
        # Every live replica refused the tail: the configured policy
        # decides between shedding and upstream backlog.
        if cfg.policy == "shed":
            primary = state.workers[slice_id][rotation]
            metrics = primary.shard.metrics
            if metrics is not None:
                metrics.shed.inc(len(remaining))
            for i in remaining:
                state.status[i] = SHED
            state.shed += len(remaining)
        else:
            state.backlog.extend(remaining)

    def _reoffer_backlog(self, state, now):
        """Re-offer blocked requests in arrival order (block policy)."""
        held = state.backlog
        state.backlog = []
        slice_ids = self._prep[3]
        rotations = self._prep[4]
        for i in held:
            if state.status[i] != PENDING:
                continue
            candidates = self._candidates(
                state, slice_ids[i], rotations[i], now
            )
            if not candidates:
                self._degrade(state, i, now)
                continue
            placed = False
            for worker in candidates:
                if worker.batcher.offer([i], [i], now):
                    state.last_replica[i] = worker.replica
                    if worker.replica != rotations[i]:
                        state.failovers += 1
                        if worker.res_metrics is not None:
                            worker.res_metrics.failovers.inc()
                    placed = True
                    break
            if not placed:
                state.backlog.append(i)

    def _redispatch(self, state, i, now):
        """Retry one request on the next live replica of its slice."""
        slice_ids = self._prep[3]
        rotations = self._prep[4]
        slice_id = slice_ids[i]
        rotation = rotations[i]
        candidates = self._candidates(
            state, slice_id, rotation, now, exclude=state.last_replica[i]
        )
        if not candidates:
            # The failed replica may be the only one back up by now.
            candidates = self._candidates(state, slice_id, rotation, now)
        if not candidates:
            self._degrade(state, i, now)
            return
        for worker in candidates:
            if worker.batcher.offer([i], [i], now):
                state.last_replica[i] = worker.replica
                if worker.replica != rotation:
                    state.failovers += 1
                    if worker.res_metrics is not None:
                        worker.res_metrics.failovers.inc()
                return
        if self.config.policy == "shed":
            state.status[i] = SHED
            state.shed += 1
        else:
            state.backlog.append(i)

    def _hedge(self, state, i, now):
        """Duplicate a still-pending request to a different replica."""
        if self.rplan.replication < 2:
            return
        arrival = self._arrival
        if now - arrival[i] >= self.config.deadline_ticks:
            return
        slice_ids = self._prep[3]
        rotations = self._prep[4]
        candidates = self._candidates(
            state,
            slice_ids[i],
            rotations[i],
            now,
            exclude=state.last_replica[i],
        )
        for worker in candidates:
            if worker.batcher.offer([i], [i], now):
                state.hedged[i] = 1
                state.hedges += 1
                if worker.res_metrics is not None:
                    worker.res_metrics.hedges.inc()
                return

    # -- failure recovery -----------------------------------------------
    def _requeue(self, state, idxs, now, worker):
        """Requests lost to a crash or dropped batch: retry or degrade."""
        cfg = self.config
        for i in idxs:
            if state.status[i] != PENDING:
                continue
            used = state.attempts[i]
            if used >= cfg.max_retries:
                self._degrade(state, i, now)
                continue
            state.attempts[i] = used + 1
            state.retries += 1
            if worker.res_metrics is not None:
                worker.res_metrics.retries.inc()
            delay = cfg.retry_backoff << used
            state.retry_due.setdefault(now + delay, []).append(i)

    def _degrade(self, state, i, now):
        """Serve one request from the full-table scalar path, now.

        The scalar :class:`ClueAssistedLookup` is the exact reference
        every shard was certified against, so a degraded answer is
        *definitionally* never wrong — the audit still re-checks it
        against the oracle like every other completion.
        """
        value = self._values[i]
        clen = self._lens[i]
        key = (value, clen)
        answer = state.degraded_cache.get(key)
        if answer is None:
            address = Address(value, self.config.width)
            clue = address.prefix(clen) if clen >= 0 else None
            result = self.reference.lookup(address, clue)
            answer = (result.prefix, result.next_hop)
            state.degraded_cache[key] = answer
        state.status[i] = SERVED
        state.result_src[i] = -1
        state.result_code[i] = 0
        state.served += 1
        state.degraded += 1
        waited = now - self._arrival[i]
        state.latency[waited] = state.latency.get(waited, 0) + 1

    def _apply_faults(self, state, plan, now):
        """Execute the plan's scheduled events landing on this tick."""
        cfg = self.config
        replication = self.rplan.replication
        slices = self.rplan.plan.shards
        for event in plan.crashes_at(now):
            if event.shard >= slices or event.replica >= replication:
                continue
            worker = state.workers[event.shard][event.replica]
            if worker.down:
                continue
            worker.down = True
            worker.rebuilding = False
            state.crashes += 1
            plan.count_event(KIND_SHARD_CRASH)
            worker.health.mark_down(now)
            # Everything queued on or in flight at the worker is lost;
            # the pending copies come back through the retry machinery.
            for batch in worker.batcher.drain_all(now):
                self._requeue(state, batch[0], now, worker)
            for flight in worker.flights:
                flight.cancelled = True
                self._requeue(state, flight.indices, now, worker)
            worker.flights = []
        for event in plan.restarts_at(now):
            if event.shard >= slices or event.replica >= replication:
                continue
            worker = state.workers[event.shard][event.replica]
            if not worker.down or worker.rebuilding:
                continue
            worker.rebuilding = True
            state.rebuild_due.setdefault(now + cfg.rebuild_ticks, []).append(
                (event.shard, event.replica)
            )
        for (s, r) in state.rebuild_due.pop(now, ()):
            worker = state.workers[s][r]
            # The rebuild runs the full PR 6 pipeline again — compile
            # plus certification — and the fresh table becomes a new
            # epoch so the audit decodes every answer against the exact
            # table that produced it.
            shard = build_replica_shard(
                s,
                r,
                self.entry_slices[s],
                self.clue_slices[s],
                self.sender_trie,
                method=cfg.method,
                width=cfg.width,
                seed=cfg.seed,
                force_python=cfg.force_python,
                instruments=self.instruments,
            )
            state.tables.append(shard)
            worker.shard = shard
            worker.table_index = len(state.tables) - 1
            worker.down = False
            worker.rebuilding = False
            worker.health.rebuilt(now)
            state.restarts += 1
            state.rebuilt_lanes += shard.certified_lanes
            plan.count_event(KIND_SHARD_RESTART)

    def _expire_deadlines(self, state, offsets, now, arrival_ticks):
        """Expire pending requests whose deadline budget ran out."""
        boundary_tick = now - self.config.deadline_ticks
        if boundary_tick < 0:
            return
        if boundary_tick >= arrival_ticks:
            hi = len(state.status)
        else:
            hi = offsets[boundary_tick + 1]
        status = state.status
        cursor = state.expire_cursor
        counter = self._deadline_counter
        while cursor < hi:
            if status[cursor] == PENDING:
                status[cursor] = EXPIRED
                state.expired += 1
                if counter is not None:
                    counter.inc()
            cursor += 1
        state.expire_cursor = cursor

    # -- service --------------------------------------------------------
    def _commit_completions(self, state, now):
        """Commit every batch whose service time elapses this tick."""
        status = state.status
        latency = state.latency
        arrival = self._arrival
        result_src = state.result_src
        result_code = state.result_code
        for flight in state.completions.pop(now, ()):
            if flight.cancelled:
                continue
            worker = flight.worker
            try:
                worker.flights.remove(flight)
            except ValueError:
                pass
            worker.health.record_ok(now)
            codes = flight.codes
            table_index = flight.table_index
            for pos, i in enumerate(flight.indices):
                if status[i] == PENDING:
                    status[i] = SERVED
                    state.served += 1
                    result_src[i] = table_index
                    result_code[i] = int(codes[pos])
                    waited = now - arrival[i]
                    latency[waited] = latency.get(waited, 0) + 1
                else:
                    # A hedge/retry duplicate lost the race (or the
                    # request expired mid-flight): counted, not served.
                    state.late += 1

    def _release_batches(self, state, plan, now):
        """Release every due batch on every live worker (kernel calls)."""
        for row in state.workers:
            for worker in row:
                if worker.down:
                    continue
                batch = worker.batcher.take_batch(now)
                while batch is not None:
                    self._release_one(state, worker, batch[0], now, plan)
                    batch = worker.batcher.take_batch(now)

    def _release_one(self, state, worker, idxs, now, plan):
        """One coalesced batch through one kernel call (or a fault)."""
        cfg = self.config
        status = state.status
        live = [i for i in idxs if status[i] == PENDING]
        if not live:
            return
        state.batches += 1
        if plan is not None and plan.drops_batch(
            worker.slice_id, worker.replica, now
        ):
            plan.count_event(KIND_BATCH_DROP)
            state.batch_drops += 1
            worker.health.record_fault(now)
            self._requeue(state, live, now, worker)
            return
        extra = 0
        if plan is not None:
            extra = plan.slow_penalty(worker.slice_id, worker.replica, now)
            if extra:
                plan.count_event(KIND_SHARD_SLOW)
                worker.health.record_fault(now)
        values = self._values
        lens = self._lens
        dsts = as_destination_array(
            [values[i] for i in live], cfg.width
        )
        clue_lens = as_length_array([lens[i] for i in live], cfg.width)
        codes, _memrefs = worker.shard.process(dsts, clue_lens)
        worker.requests_run += len(live)
        worker.batches_run += 1
        flight = _Flight(worker, worker.table_index, live, codes)
        worker.flights.append(flight)
        state.completions.setdefault(
            now + cfg.service_ticks + extra, []
        ).append(flight)

    def _publish_gauges(self, state):
        for row in state.workers:
            for worker in row:
                metrics = worker.shard.metrics
                if metrics is not None:
                    metrics.queue_depth.set(worker.batcher.depth)
                if worker.res_metrics is not None:
                    worker.res_metrics.health_state.set(
                        worker.health.state_code()
                    )

    # -- reporting ------------------------------------------------------
    def _payload(self, state, plan, n, arrival_ticks, elapsed):
        audit = self._audit(state, n)
        served = state.served
        pending_end = n - served - state.shed - state.expired
        goodput = served / state.ticks_run if state.ticks_run else 0.0
        workload = self.workload()
        return {
            "workload": {
                "requests": n,
                "arrival_ticks": arrival_ticks,
                "burst_ticks": workload.burst_ticks,
            },
            "totals": {
                "offered": n,
                "served": served,
                "degraded": state.degraded,
                "shed": state.shed,
                "deadline_expired": state.expired,
                "late_completions": state.late,
                "retries": state.retries,
                "hedges": state.hedges,
                "failovers": state.failovers,
                "batches": state.batches,
                "batch_drops": state.batch_drops,
                "crashes": state.crashes,
                "restarts": state.restarts,
                "rebuilt_lanes": state.rebuilt_lanes,
                "ticks": state.ticks_run,
                "availability": served / n if n else None,
                "goodput_per_tick": goodput,
                "elapsed_s": elapsed,
                "sustained_pps": served / elapsed if elapsed else None,
            },
            "latency": latency_summary(state.latency),
            "workers": [
                {
                    "slice": worker.slice_id,
                    "replica": worker.replica,
                    "prefixes": len(worker.shard.entries),
                    "requests": worker.requests_run,
                    "batches": worker.batches_run,
                    "health": worker.health.state,
                    "quarantines": worker.health.quarantines,
                    "faults_seen": worker.health.faults_total,
                }
                for row in state.workers
                for worker in row
            ],
            "faults": (
                dict(plan.describe(), counts=dict(plan.counts))
                if plan is not None
                else None
            ),
            "audit": audit,
            "conservation": {
                "offered": n,
                "served": served,
                "shed": state.shed,
                "deadline_expired": state.expired,
                "pending_end": pending_end,
                "ok": (
                    pending_end == 0
                    and served + state.shed + state.expired == n
                ),
            },
        }

    def _audit(self, state, n):
        """Verify every served request against the scalar path + oracle.

        Answers are decoded from the exact table epoch that served them
        (``result_src`` indexes the per-run table registry, −1 = the
        degraded scalar path) and compared with the full-table scalar
        clue lookup *and* the receiver's longest-prefix match.  Distinct
        ``(epoch, code, destination, clue)`` combinations are verified
        once and the verdict reused — same rigor, linear cost.
        """
        cfg = self.config
        values = self._values
        lens = self._lens
        status = state.status
        result_src = state.result_src
        result_code = state.result_code
        tables = state.tables
        cache: Dict[tuple, bool] = {}
        checked = 0
        wrong = 0
        details: List[Dict[str, object]] = []
        for i in range(n):
            if status[i] != SERVED:
                continue
            value = values[i]
            clen = lens[i]
            src = result_src[i]
            code = result_code[i]
            key = (src, code, value, clen)
            verdict = cache.get(key)
            if verdict is None:
                address = Address(value, cfg.width)
                clue = address.prefix(clen) if clen >= 0 else None
                reference = self.reference.lookup(address, clue)
                want = (reference.prefix, reference.next_hop)
                if src >= 0:
                    got = tables[src].decode(code)
                else:
                    got = state.degraded_cache[(value, clen)]
                oracle_hop = self.oracle.lookup(address).next_hop
                verdict = got == want and got[1] == oracle_hop
                cache[key] = verdict
                if not verdict and len(details) < 5:
                    details.append(
                        {
                            "destination": value,
                            "clue_len": clen,
                            "table_epoch": src,
                            "got": repr(got),
                            "scalar": repr(want),
                            "oracle_next_hop": repr(oracle_hop),
                        }
                    )
            checked += 1
            if not verdict:
                wrong += 1
        return {
            "checked": checked,
            "wrong_answers": wrong,
            "distinct_verified": len(cache),
            "details": details,
        }
