"""repro.resilience — fault-tolerant serving over the replicated plane.

The serving plane of :mod:`repro.serve` assumes every shard stays up;
this subsystem drops that assumption and keeps the paper's never-wrong
forwarding invariant anyway.  Four modules, one story:

* :mod:`repro.resilience.replica` — every table slice built, compiled,
  and certified R times, with a deterministic per-destination replica
  preference order.
* :mod:`repro.resilience.health` — a per-worker health FSM (healthy →
  suspect → quarantined → probation, doubling cooldowns) that steers
  dispatch away from sick replicas.
* :mod:`repro.resilience.engine` — the chaos tick loop: deadline
  budgets, bounded retries with exponential backoff, tick-based
  hedging, failover, a full-table degraded path of last resort, crash
  rebuild + re-certification off the hot path — and a full-population
  audit proving every served answer right.
* :mod:`repro.resilience.report` — the ``BENCH_resilience.json``
  payload comparing the same seeded workload with and without faults.

Fault schedules come from :func:`repro.faults.shard_chaos_plan`; time
is an integer tick throughout (RC103), so every chaos run replays
bit-identically from its seed.
"""

from repro.resilience.engine import (
    ChaosEngine,
    EXPIRED,
    PENDING,
    ResilienceConfig,
    SERVED,
    SHED,
)
from repro.resilience.health import (
    HEALTH_STATE_CODES,
    SHARD_HEALTH_STATES,
    SHARD_HEALTHY,
    SHARD_PROBATION,
    SHARD_QUARANTINED,
    SHARD_SUSPECT,
    ShardHealth,
    ShardHealthPolicy,
)
from repro.resilience.replica import (
    MAX_REPLICATION,
    ReplicaPlan,
    build_replica_shard,
    build_replica_shards,
    partition_slices,
    replica_rotation,
)
from repro.resilience.report import ResilienceReport

__all__ = [
    "ChaosEngine",
    "EXPIRED",
    "HEALTH_STATE_CODES",
    "MAX_REPLICATION",
    "PENDING",
    "ReplicaPlan",
    "ResilienceConfig",
    "ResilienceReport",
    "SERVED",
    "SHARD_HEALTHY",
    "SHARD_HEALTH_STATES",
    "SHARD_PROBATION",
    "SHARD_QUARANTINED",
    "SHARD_SUSPECT",
    "SHED",
    "ShardHealth",
    "ShardHealthPolicy",
    "build_replica_shard",
    "build_replica_shards",
    "partition_slices",
    "replica_rotation",
]
