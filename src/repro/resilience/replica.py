"""R-way replicated shard placement over the PR 6 ``ShardPlan``.

The serving plane's :class:`~repro.serve.dispatch.ShardPlan` maps every
destination to exactly one *slice* of the table.  A single crash then
destroys coverage for the slice's whole key range — so the resilience
layer replicates: each slice is built, compiled, and certified **R**
times (identical content, independent workers), and every destination
resolves to an *ordered* candidate list of the R replica workers of its
slice.

The order rotates deterministically per destination — replica
``(rotation + k) % R`` is the k-th choice, with the rotation drawn from
the high bits of the same splitmix64 mix the hash partition mode uses
(the low bits pick the slice in hash mode, so slice and rotation stay
independent).  Rotation spreads primary load evenly across replicas in
both partition modes while keeping per-destination affinity: the same
destination always prefers the same replica, so failover and hedging
semantics are replayable from the seed alone.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.fastpath.backend import get_numpy, numpy_eligible
from repro.lookup.hotpath import cold_path, hot_path
from repro.serve.dispatch import (
    _GOLDEN,
    _MASK64,
    _MIX_1,
    _MIX_2,
    _mix64,
    ShardPlan,
)
from repro.serve.shard import Shard

#: Replication ceiling: candidate lists are tiny ordered scans and the
#: engine stores replica ids in byte arrays.
MAX_REPLICATION = 8


class ReplicaPlan:
    """A :class:`ShardPlan` plus an R-way replica candidate order."""

    __slots__ = ("plan", "replication")

    def __init__(self, plan: ShardPlan, replication: int = 2):
        if not 1 <= replication <= MAX_REPLICATION:
            raise ValueError(
                "replication must be in [1, %d], got %d"
                % (MAX_REPLICATION, replication)
            )
        self.plan = plan
        self.replication = replication

    @property
    def slices(self) -> int:
        """Distinct table slices (the underlying plan's shard count)."""
        return self.plan.shards

    @property
    def workers(self) -> int:
        """Total replica workers: slices x replication."""
        return self.plan.shards * self.replication

    # -- scalar --------------------------------------------------------
    def rotation_of(self, value: int) -> int:
        """The preferred replica of destination ``value`` (scalar path)."""
        return (_mix64(value) >> 32) % self.replication

    def candidates(self, value: int) -> List[int]:
        """Replica ids of ``value``'s slice, in preference order."""
        rotation = self.rotation_of(value)
        return [
            (rotation + k) % self.replication
            for k in range(self.replication)
        ]

    def __repr__(self) -> str:
        return "ReplicaPlan(slices=%d, replication=%d, mode=%r)" % (
            self.plan.shards,
            self.replication,
            self.plan.mode,
        )


@hot_path
def _rotation_numpy(np, rplan, dsts):
    """Vectorized preferred-replica ids for a whole destination batch."""
    h = (dsts.astype(np.uint64) + np.uint64(_GOLDEN)) & np.uint64(_MASK64)
    h = (h ^ (h >> np.uint64(30))) * np.uint64(_MIX_1)
    h = (h ^ (h >> np.uint64(27))) * np.uint64(_MIX_2)
    h = h ^ (h >> np.uint64(31))
    return ((h >> np.uint64(32)) % np.uint64(rplan.replication)).astype(
        np.int64
    )


@cold_path
def _rotation_python(rplan, dsts):
    """Per-element twin of :func:`_rotation_numpy` — per-batch result
    list amortized across lanes, so off the per-packet budget."""
    return [rplan.rotation_of(int(value)) for value in dsts]


@hot_path
def replica_rotation(rplan: ReplicaPlan, dsts, force_python: bool = False):
    """Preferred replica id per lane of ``dsts`` (one array op chain)."""
    np = get_numpy()
    if (
        np is not None
        and not force_python
        and numpy_eligible(rplan.plan.width)
    ):
        return _rotation_numpy(np, rplan, dsts)
    return _rotation_python(rplan, dsts)


def partition_slices(
    plan: ShardPlan, receiver_entries, sender_trie
) -> Tuple[List[List[Tuple[object, object]]], List[List[object]]]:
    """Receiver-entry and clue-universe slices per shard of ``plan``.

    The same overlap-replication rule ``build_shards`` applies, exposed
    separately so replica construction computes each slice once and the
    chaos engine can rebuild a crashed replica from the retained slice
    without re-partitioning the whole table.
    """
    entry_slices: List[List[Tuple[object, object]]] = [
        [] for _ in range(plan.shards)
    ]
    for prefix, next_hop in receiver_entries:
        for shard in plan.prefix_shards(prefix):
            entry_slices[shard].append((prefix, next_hop))
    clue_slices: List[List[object]] = [[] for _ in range(plan.shards)]
    for clue in sender_trie.prefixes():
        for shard in plan.prefix_shards(clue):
            clue_slices[shard].append(clue)
    return entry_slices, clue_slices


def build_replica_shard(
    slice_id: int,
    replica: int,
    entry_slice,
    clue_slice,
    sender_trie,
    method: str = "advance",
    width: int = 32,
    seed: int = 0,
    force_python: bool = False,
    instruments=None,
) -> Shard:
    """Build (and certify) one replica worker's table slice.

    Every replica goes through the full PR 6 pipeline — ReceiverState,
    Simple/Advance builder, fastpath compile, ``certify_full`` +
    ``certify_clue`` — exactly like a singleton shard; the chaos engine
    calls this again, off the hot path, to rebuild a crashed worker.
    """
    metrics = (
        instruments.bind_shard("%d.%d" % (slice_id, replica))
        if instruments is not None
        else None
    )
    return Shard(
        slice_id,
        entry_slice,
        clue_slice,
        sender_trie,
        method=method,
        width=width,
        seed=seed,
        force_python=force_python,
        metrics=metrics,
    )


def build_replica_shards(
    rplan: ReplicaPlan,
    receiver_entries,
    sender_trie,
    method: str = "advance",
    width: int = 32,
    seed: int = 0,
    force_python: bool = False,
    instruments=None,
) -> Tuple[List[List[Shard]], List[List[Tuple[object, object]]], List[List[object]]]:
    """Partition once, then build R certified workers per slice.

    Returns ``(grid, entry_slices, clue_slices)`` where ``grid[s][r]``
    is replica *r* of slice *s* and the slices are retained for
    off-hot-path rebuilds after crashes.
    """
    entry_slices, clue_slices = partition_slices(
        rplan.plan, receiver_entries, sender_trie
    )
    grid: List[List[Shard]] = []
    for slice_id in range(rplan.plan.shards):
        replicas: List[Shard] = []
        for replica in range(rplan.replication):
            replicas.append(
                build_replica_shard(
                    slice_id,
                    replica,
                    entry_slices[slice_id],
                    clue_slices[slice_id],
                    sender_trie,
                    method=method,
                    width=width,
                    seed=seed,
                    force_python=force_python,
                    instruments=instruments,
                )
            )
        grid.append(replicas)
    return grid, entry_slices, clue_slices
