"""Per-shard health: the FSM that steers dispatch away from sick workers.

The neighbour-health machinery in :mod:`repro.faults.guard` tracks one
*upstream* per sliding window of per-packet anomalies; this module is
the same shape one level up — one :class:`ShardHealth` per replica
worker, fed per-*batch* outcomes by the chaos engine, clocked by the
engine's integer tick (RC103: no wall clocks anywhere in the plane).

Four states::

    healthy ──(window mismatch >= suspect)──> suspect
    suspect ──(window mismatch >= quarantine, min samples)──> quarantined
    quarantined ──(cooldown ticks elapse)──> probation
    probation ──(probation_batches clean)──> healthy   (cooldown halves)
    probation ──(any fault)──> quarantined             (cooldown doubles)

Suspect workers still serve but are *deprioritized* — the dispatcher
prefers healthy replicas, then probation (they must see traffic to be
re-trusted), then suspect — while quarantined workers receive nothing
at all.  Every re-quarantine doubles the next cooldown up to
``cooldown_max``; a survived probation halves it back down (floored at
the base), so transient gray failures do not scar a worker forever.
A crashed worker is quarantined for accounting and re-admitted through
probation once its slice has been rebuilt and re-certified
(:meth:`ShardHealth.rebuilt`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

#: Health states a replica worker moves through.
SHARD_HEALTHY = "healthy"
SHARD_SUSPECT = "suspect"
SHARD_QUARANTINED = "quarantined"
SHARD_PROBATION = "probation"

SHARD_HEALTH_STATES = (
    SHARD_HEALTHY,
    SHARD_SUSPECT,
    SHARD_QUARANTINED,
    SHARD_PROBATION,
)

#: Numeric codes for the ``shard_health_state`` gauge (stable, small).
HEALTH_STATE_CODES = {
    SHARD_HEALTHY: 0,
    SHARD_SUSPECT: 1,
    SHARD_QUARANTINED: 2,
    SHARD_PROBATION: 3,
}

#: Dispatch preference per state (lower is better); quarantined workers
#: are not dispatchable at all.  Probation outranks suspect because a
#: probing worker must see traffic to earn back trust.
_DISPATCH_RANKS = {
    SHARD_HEALTHY: 0,
    SHARD_PROBATION: 1,
    SHARD_SUSPECT: 2,
}


class ShardHealthPolicy:
    """Tunable knobs of the per-shard health FSM.

    The defaults suspect a worker after a quarter of a 16-batch window
    went bad, quarantine it at half (with at least 2 observed faults),
    sit out 8 ticks, then re-admit it on a 2-batch probation; every
    re-quarantine doubles the cooldown up to ``cooldown_max``.
    """

    __slots__ = (
        "window",
        "suspect_threshold",
        "quarantine_threshold",
        "min_samples",
        "cooldown_base",
        "cooldown_factor",
        "cooldown_max",
        "probation_batches",
    )

    def __init__(
        self,
        window: int = 16,
        suspect_threshold: float = 0.25,
        quarantine_threshold: float = 0.5,
        min_samples: int = 2,
        cooldown_base: int = 8,
        cooldown_factor: float = 2.0,
        cooldown_max: int = 128,
        probation_batches: int = 2,
    ):
        if window < 1:
            raise ValueError("window must be positive")
        if not 0.0 < suspect_threshold <= 1.0:
            raise ValueError("suspect_threshold must be in (0, 1]")
        if not suspect_threshold <= quarantine_threshold <= 1.0:
            raise ValueError(
                "need suspect_threshold <= quarantine_threshold <= 1"
            )
        if min_samples < 1:
            raise ValueError("min_samples must be positive")
        if cooldown_base < 1 or cooldown_max < cooldown_base:
            raise ValueError("need 1 <= cooldown_base <= cooldown_max")
        if cooldown_factor < 1.0:
            raise ValueError("cooldown_factor must be >= 1")
        if probation_batches < 1:
            raise ValueError("probation_batches must be positive")
        self.window = window
        self.suspect_threshold = suspect_threshold
        self.quarantine_threshold = quarantine_threshold
        self.min_samples = min_samples
        self.cooldown_base = cooldown_base
        self.cooldown_factor = cooldown_factor
        self.cooldown_max = cooldown_max
        self.probation_batches = probation_batches

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            "ShardHealthPolicy(window=%d, suspect=%.2f, quarantine=%.2f, "
            "cooldown=%d..%d)"
            % (
                self.window,
                self.suspect_threshold,
                self.quarantine_threshold,
                self.cooldown_base,
                self.cooldown_max,
            )
        )


class ShardHealth:
    """Sliding-window batch-outcome tracking for one replica worker."""

    __slots__ = (
        "policy",
        "state",
        "window",
        "ok_total",
        "faults_total",
        "quarantines",
        "until",
        "probation_left",
        "next_cooldown",
    )

    def __init__(self, policy: ShardHealthPolicy):
        self.policy = policy
        self.state = SHARD_HEALTHY
        self.window: Deque[int] = deque(maxlen=policy.window)
        self.ok_total = 0
        self.faults_total = 0
        self.quarantines = 0
        #: Tick the current quarantine cooldown expires (meaningful only
        #: while quarantined).
        self.until = 0
        self.probation_left = 0
        self.next_cooldown = policy.cooldown_base

    # ------------------------------------------------------------------
    def mismatch_rate(self) -> float:
        """Fault fraction over the sliding window of batch outcomes."""
        if not self.window:
            return 0.0
        return sum(self.window) / len(self.window)

    def _maybe_release(self, now: int) -> None:
        if self.state == SHARD_QUARANTINED and now >= self.until:
            self.state = SHARD_PROBATION
            self.probation_left = self.policy.probation_batches

    def dispatch_rank(self, now: int):
        """Preference rank for dispatch now, or ``None`` if quarantined.

        Lower ranks are preferred: healthy (0) < probation (1) <
        suspect (2).  Querying a quarantined worker whose cooldown has
        elapsed releases it to probation — tick-driven, so recovery
        needs no separate bookkeeping sweep.
        """
        self._maybe_release(now)
        return _DISPATCH_RANKS.get(self.state)

    # ------------------------------------------------------------------
    def record_ok(self, now: int) -> None:
        """One batch completed cleanly on this worker."""
        self.ok_total += 1
        self.window.append(0)
        if self.state == SHARD_PROBATION:
            self.probation_left -= 1
            if self.probation_left <= 0:
                self.state = SHARD_HEALTHY
                self.window.clear()
                # A survived probation halves the next cooldown (floored
                # at the base), so transient faults do not scar forever.
                self.next_cooldown = max(
                    self.policy.cooldown_base, self.next_cooldown // 2
                )
        elif self.state == SHARD_SUSPECT:
            if self.mismatch_rate() < self.policy.suspect_threshold:
                self.state = SHARD_HEALTHY

    def record_fault(self, now: int) -> bool:
        """One worker-attributable fault; True if quarantine fired."""
        self.faults_total += 1
        self.window.append(1)
        if self.state == SHARD_PROBATION:
            # A probing worker that faults goes straight back out.
            self._quarantine(now)
            return True
        rate = self.mismatch_rate()
        if (
            sum(self.window) >= self.policy.min_samples
            and rate >= self.policy.quarantine_threshold
        ):
            self._quarantine(now)
            return True
        if self.state == SHARD_HEALTHY and rate >= self.policy.suspect_threshold:
            self.state = SHARD_SUSPECT
        return False

    def mark_down(self, now: int) -> None:
        """The worker crashed: quarantine it for accounting.

        The engine's ``down`` flag gates dispatch while the slice is
        being rebuilt; this keeps the FSM (and the ``shard_health_state``
        gauge) telling the same story.
        """
        self._quarantine(now)

    def rebuilt(self, now: int) -> None:
        """The slice was rebuilt and re-certified: re-admit on probation."""
        self.state = SHARD_PROBATION
        self.probation_left = self.policy.probation_batches
        self.window.clear()

    def _quarantine(self, now: int) -> None:
        self.state = SHARD_QUARANTINED
        self.quarantines += 1
        self.until = now + self.next_cooldown
        self.next_cooldown = min(
            self.policy.cooldown_max,
            int(self.next_cooldown * self.policy.cooldown_factor),
        )
        self.window.clear()

    # ------------------------------------------------------------------
    def state_code(self) -> int:
        """The ``shard_health_state`` gauge value for the current state."""
        return HEALTH_STATE_CODES[self.state]

    def __repr__(self) -> str:
        return "ShardHealth(%s, ok=%d, faults=%d, quarantines=%d)" % (
            self.state,
            self.ok_total,
            self.faults_total,
            self.quarantines,
        )
