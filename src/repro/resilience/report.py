"""The ``BENCH_resilience.json`` payload: what the chaos actually cost.

One report carries two complete runs of the same seeded workload — a
fault-free baseline and the chaos run — plus a comparison block that
states the price of adversity directly: availability with and without
faults, the latency p-trio side by side, and the goodput ratio.  All
latency figures come from exact integer-tick histograms (the serve
plane's nearest-rank percentiles), so two reports from the same seed
and config are byte-identical; wall-clock throughput appears only when
the CLI injected a clock (RC103).

The verdict is strict: *both* runs must show zero wrong answers in the
full-population audit and a balanced conservation ledger.  Crashes,
hedge races, and degraded answers may move every latency and
availability number — they may never move a ``next_hop``.
"""

from __future__ import annotations

import json
from typing import Dict


class ResilienceReport:
    """The finished chaos benchmark: payload access plus the verdict."""

    __slots__ = ("payload",)

    def __init__(self, payload: Dict[str, object]):
        self.payload = payload

    def as_dict(self) -> Dict[str, object]:
        return self.payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.payload, indent=indent, sort_keys=True)

    def passed(self) -> bool:
        """True iff both runs audit clean and conserve every request."""
        for key in ("baseline", "chaos"):
            run = self.payload[key]
            audit = run["audit"]  # type: ignore[index]
            conservation = run["conservation"]  # type: ignore[index]
            if audit["wrong_answers"] != 0:
                return False
            if not conservation["ok"]:
                return False
        return True

    def summary(self) -> str:
        """A few human-oriented lines for the CLI footer."""
        config = self.payload["config"]
        chaos = self.payload["chaos"]
        totals = chaos["totals"]  # type: ignore[index]
        audit = chaos["audit"]  # type: ignore[index]
        comparison = self.payload["comparison"]
        cert = self.payload["certification"]
        pps = totals["sustained_pps"]
        availability = totals["availability"]
        lines = [
            "chaos: %d slices x %d replicas (%s), %s backend"
            % (
                config["shards"],  # type: ignore[index]
                config["replication"],  # type: ignore[index]
                config["partition"],  # type: ignore[index]
                self.payload["backend"],
            ),
            "served %d/%d (availability %s) with %d crashes, %d restarts"
            % (
                totals["served"],
                totals["offered"],
                "%.4f" % availability if availability is not None else "n/a",
                totals["crashes"],
                totals["restarts"],
            ),
            "recovery: %d retries, %d hedges, %d failovers, %d degraded, "
            "%d expired"
            % (
                totals["retries"],
                totals["hedges"],
                totals["failovers"],
                totals["degraded"],
                totals["deadline_expired"],
            ),
            "p99 ticks %s -> %s under faults (goodput ratio %s)"
            % (
                comparison["p99_without_faults"],  # type: ignore[index]
                comparison["p99_with_faults"],  # type: ignore[index]
                "%.3f" % comparison["goodput_ratio"]  # type: ignore[index]
                if comparison["goodput_ratio"] is not None  # type: ignore[index]
                else "n/a",
            ),
            "sustained %s pps"
            % ("%.0f" % pps if pps is not None else "n/a (no clock)"),
            "certified %d lanes (%d rebuilt); audit %d checked, "
            "%d wrong answers"
            % (
                cert["lanes"],  # type: ignore[index]
                cert["rebuilt_lanes"],  # type: ignore[index]
                audit["checked"],
                audit["wrong_answers"],
            ),
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "ResilienceReport(passed=%r)" % self.passed()
