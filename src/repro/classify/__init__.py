"""§7 extension: distributed packet classification with filter clues."""

from repro.classify.clue import (
    ClassifierWithClues,
    FilterClueEntry,
    classification_experiment,
)
from repro.classify.filter import FULL_PORT_RANGE, FlowKey, PacketFilter
from repro.classify.ruleset import (
    RuleSet,
    derive_neighbor_ruleset,
    generate_ruleset,
    sample_matching_flow,
)

__all__ = [
    "ClassifierWithClues",
    "FULL_PORT_RANGE",
    "FilterClueEntry",
    "FlowKey",
    "PacketFilter",
    "RuleSet",
    "classification_experiment",
    "derive_neighbor_ruleset",
    "generate_ruleset",
    "sample_matching_flow",
]
