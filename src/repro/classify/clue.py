"""Distributed packet classification with filter clues (§7).

The sender classifies the packet and stamps the winning filter as the
clue.  The receiver pre-computes, per possible clue filter ``f``, the
*candidate list* of its own rules that could still win, by the Claim 1
analogue stated in the paper's conclusions:

* a rule that does not **intersect** ``f`` can never match a packet
  that matched ``f`` — discard;
* a rule that **both routers share** and that outranks ``f`` would have
  won at the sender — since it did not, it cannot match the packet —
  discard (exactly Claim 1's "a prefix of R1 on the way means R1 would
  have found it").

What survives is typically a handful of rules; the receiver scans only
those, at one memory reference each, after the single clue-table probe.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.classify.filter import FlowKey, PacketFilter
from repro.classify.ruleset import RuleSet
from repro.lookup.counters import MemoryCounter


class FilterClueEntry:
    """One record: the clue filter and the surviving candidate list."""

    __slots__ = ("clue", "candidates")

    def __init__(self, clue: PacketFilter, candidates: List[PacketFilter]):
        self.clue = clue
        self.candidates = candidates

    def __repr__(self) -> str:
        return "FilterClueEntry(%r, %d candidates)" % (
            self.clue,
            len(self.candidates),
        )


class ClassifierWithClues:
    """Receiver-side distributed classification."""

    def __init__(self, sender: RuleSet, receiver: RuleSet):
        self.sender = sender
        self.receiver = receiver
        self._shared = set(sender.filters) & set(receiver.filters)
        self._entries: Dict[PacketFilter, FilterClueEntry] = {}
        for clue in sender.filters:
            self._entries[clue] = self._build_entry(clue)

    def _build_entry(self, clue: PacketFilter) -> FilterClueEntry:
        candidates = [
            rule
            for rule in self.receiver.filters
            if rule.intersects(clue)
            and not (
                rule in self._shared
                and rule.priority < clue.priority
            )
        ]
        return FilterClueEntry(clue, candidates)

    # ------------------------------------------------------------------
    def entry_for(self, clue: PacketFilter) -> Optional[FilterClueEntry]:
        """The precomputed record for a clue filter (None if unknown)."""
        return self._entries.get(clue)

    def candidate_histogram(self) -> Dict[int, int]:
        """Distribution of candidate-list sizes over all clue filters."""
        histogram: Dict[int, int] = {}
        for entry in self._entries.values():
            size = len(entry.candidates)
            histogram[size] = histogram.get(size, 0) + 1
        return histogram

    def classify(
        self,
        flow: FlowKey,
        clue: Optional[PacketFilter] = None,
        counter: Optional[MemoryCounter] = None,
    ) -> Optional[PacketFilter]:
        """Classify at the receiver, using the clue when present.

        An unknown or absent clue falls back to the full linear scan, so
        the scheme stays correct in heterogeneous deployments, exactly
        like the IP-lookup variant.
        """
        if clue is None:
            return self.receiver.classify(flow, counter)
        if counter is not None:
            counter.touch()  # the clue-table probe
        entry = self._entries.get(clue)
        if entry is None:
            return self.receiver.classify(flow, counter)
        return self.receiver.classify_among(flow, entry.candidates, counter)


def classification_experiment(
    sender: RuleSet,
    receiver: RuleSet,
    flows: int = 1000,
    seed: int = 0,
) -> Tuple[float, float, int]:
    """Average references per flow (clue-less, with clues) and mismatches.

    Flows are sampled to match the *sender's* rules (traffic the sender
    actually classified); the receiver's answers with and without the
    clue are compared — they must be identical.
    """
    from repro.classify.ruleset import sample_matching_flow

    rng = random.Random(seed)
    classifier = ClassifierWithClues(sender, receiver)
    without = MemoryCounter()
    with_clue = MemoryCounter()
    mismatches = 0
    measured = 0
    while measured < flows:
        flow = sample_matching_flow(sender, rng)
        clue = sender.classify(flow)
        if clue is None:
            continue
        plain = classifier.classify(flow, None, without)
        clued = classifier.classify(flow, clue, with_clue)
        if plain != clued:
            mismatches += 1
        measured += 1
    return without.accesses / flows, with_clue.accesses / flows, mismatches
