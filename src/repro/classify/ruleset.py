"""Rule sets: priority-ordered filter lists and their generators.

The baseline classifier is the linear scan every 1999 firewall actually
ran: examine filters in priority order, first match wins, one memory
reference per filter examined.  The synthetic generator produces
firewall-shaped rule sets (prefix pairs drawn from the 1999 address
histogram, well-known service ports, a protocol mix) and the neighbour
derivation mirrors :mod:`repro.tablegen.neighbors` so that adjacent
routers hold mostly-shared rules — the premise the §7 clue extension
needs.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.addressing import Address, Prefix
from repro.classify.filter import FULL_PORT_RANGE, FlowKey, PacketFilter
from repro.lookup.counters import MemoryCounter
from repro.tablegen.synthetic import generate_table

WELL_KNOWN_PORTS = (20, 21, 22, 23, 25, 53, 80, 110, 143, 443, 8080)
PROTOCOLS = (6, 17, 1)  # TCP, UDP, ICMP
ACTIONS = ("permit", "deny", "qos-gold", "qos-silver")


class RuleSet:
    """A priority-ordered set of filters with linear-scan classification."""

    def __init__(self, filters: Sequence[PacketFilter]):
        self.filters: List[PacketFilter] = sorted(
            filters, key=lambda f: f.priority
        )
        priorities = [f.priority for f in self.filters]
        if len(set(priorities)) != len(priorities):
            raise ValueError("filter priorities must be unique within a rule set")

    def classify(
        self, flow: FlowKey, counter: Optional[MemoryCounter] = None
    ) -> Optional[PacketFilter]:
        """First (highest-priority) matching filter; one reference each."""
        for rule in self.filters:
            if counter is not None:
                counter.touch()
            if rule.matches(flow):
                return rule
        return None

    def classify_among(
        self,
        flow: FlowKey,
        candidates: Sequence[PacketFilter],
        counter: Optional[MemoryCounter] = None,
    ) -> Optional[PacketFilter]:
        """Linear scan restricted to a precomputed candidate list."""
        for rule in candidates:
            if counter is not None:
                counter.touch()
            if rule.matches(flow):
                return rule
        return None

    def __len__(self) -> int:
        return len(self.filters)

    def __contains__(self, rule: PacketFilter) -> bool:
        return rule in set(self.filters)

    def __iter__(self) -> Iterator[PacketFilter]:
        return iter(self.filters)


def generate_ruleset(
    count: int, seed: int = 0, width: int = 32
) -> RuleSet:
    """A firewall-shaped synthetic rule set of ``count`` filters."""
    if count < 1:
        raise ValueError("a rule set needs at least one filter")
    rng = random.Random(seed)
    # Draw address prefixes from the same 1999-shaped universe the
    # forwarding tables use, then coarsen some for wildcard-ish rules.
    pool = [prefix for prefix, _hop in generate_table(count * 2, seed=seed, width=width)]
    filters: List[PacketFilter] = []
    for priority in range(count):
        src = rng.choice(pool)
        dst = rng.choice(pool)
        if rng.random() < 0.3:
            src = src.truncate(min(src.length, rng.choice((0, 8, 16))))
        if rng.random() < 0.2:
            dst = dst.truncate(min(dst.length, rng.choice((8, 16))))
        protocol = rng.choice(PROTOCOLS) if rng.random() < 0.7 else None
        if rng.random() < 0.6:
            port = rng.choice(WELL_KNOWN_PORTS)
            dst_ports = (port, port)
        elif rng.random() < 0.5:
            low = rng.randrange(1024, 60000)
            dst_ports = (low, low + rng.randrange(1, 4096))
        else:
            dst_ports = FULL_PORT_RANGE
        filters.append(
            PacketFilter(
                src_prefix=src,
                dst_prefix=dst,
                priority=priority,
                action=rng.choice(ACTIONS),
                protocol=protocol,
                dst_ports=dst_ports,
            )
        )
    return RuleSet(filters)


def derive_neighbor_ruleset(
    base: RuleSet,
    seed: int = 1,
    drop: float = 0.03,
    add: float = 0.03,
    width: int = 32,
) -> RuleSet:
    """A neighbouring router's rule set: mostly shared, a few private rules."""
    rng = random.Random(seed)
    kept = [rule for rule in base if rng.random() >= drop]
    extra_count = round(len(base) * add)
    if extra_count:
        # Private rules get fresh priorities woven between the shared ones.
        taken = {rule.priority for rule in kept}
        fresh = generate_ruleset(extra_count, seed=seed + 17, width=width)
        for rule in fresh:
            priority = rng.randrange(len(base) * 2)
            while priority in taken:
                priority += 1
            taken.add(priority)
            kept.append(
                PacketFilter(
                    rule.src_prefix,
                    rule.dst_prefix,
                    priority,
                    rule.action,
                    rule.protocol,
                    rule.src_ports,
                    rule.dst_ports,
                )
            )
    return RuleSet(kept)


def sample_matching_flow(
    ruleset: RuleSet, rng: random.Random, width: int = 32
) -> FlowKey:
    """A random flow that matches at least one rule of the set."""
    rule = ruleset.filters[rng.randrange(len(ruleset.filters))]
    protocol = rule.protocol if rule.protocol is not None else rng.choice(PROTOCOLS)
    return FlowKey(
        src=rule.src_prefix.random_address(rng),
        dst=rule.dst_prefix.random_address(rng),
        protocol=protocol,
        src_port=rng.randint(*rule.src_ports),
        dst_port=rng.randint(*rule.dst_ports),
    )
