"""Packet filters and flow keys for the classification extension (§7).

The paper's conclusions generalise the clue idea beyond destination
lookup: "when a packet header is classified by several filters (in QoS,
or firewall applications), the clue being added to the packet is the
filter by which the packet is classified at a router".

A filter here is the classical 5-tuple rule: source/destination address
prefixes, an optional protocol, and source/destination port ranges, with
a global priority (lower number wins).  Filters are value objects —
identical rules at two routers are *the same filter*, which is what lets
the receiving router reason about what the sender's classification
already ruled out.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.addressing import Address, Prefix

PortRange = Tuple[int, int]
FULL_PORT_RANGE: PortRange = (0, 65535)


def _check_port_range(name: str, ports: PortRange) -> None:
    low, high = ports
    if not 0 <= low <= high <= 65535:
        raise ValueError("%s range %r is not a valid port range" % (name, ports))


class FlowKey:
    """The header fields a classifier examines."""

    __slots__ = ("src", "dst", "protocol", "src_port", "dst_port")

    def __init__(
        self,
        src: Address,
        dst: Address,
        protocol: int = 6,
        src_port: int = 0,
        dst_port: int = 0,
    ):
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.src_port = src_port
        self.dst_port = dst_port

    def __repr__(self) -> str:
        return "FlowKey(%s -> %s, proto=%d, %d -> %d)" % (
            self.src,
            self.dst,
            self.protocol,
            self.src_port,
            self.dst_port,
        )


class PacketFilter:
    """One classification rule.

    ``priority`` is a global rank (lower wins) shared by every router
    holding the rule; ``action`` is the rule's verdict (an opaque label
    such as ``"deny"`` or a QoS class).
    """

    __slots__ = (
        "src_prefix",
        "dst_prefix",
        "protocol",
        "src_ports",
        "dst_ports",
        "priority",
        "action",
    )

    def __init__(
        self,
        src_prefix: Prefix,
        dst_prefix: Prefix,
        priority: int,
        action: object = "permit",
        protocol: Optional[int] = None,
        src_ports: PortRange = FULL_PORT_RANGE,
        dst_ports: PortRange = FULL_PORT_RANGE,
    ):
        _check_port_range("source port", src_ports)
        _check_port_range("destination port", dst_ports)
        if priority < 0:
            raise ValueError("priority cannot be negative")
        self.src_prefix = src_prefix
        self.dst_prefix = dst_prefix
        self.protocol = protocol
        self.src_ports = src_ports
        self.dst_ports = dst_ports
        self.priority = priority
        self.action = action

    # ------------------------------------------------------------------
    def matches(self, flow: FlowKey) -> bool:
        """True if the flow's header falls inside every dimension."""
        if not self.src_prefix.matches(flow.src):
            return False
        if not self.dst_prefix.matches(flow.dst):
            return False
        if self.protocol is not None and self.protocol != flow.protocol:
            return False
        if not self.src_ports[0] <= flow.src_port <= self.src_ports[1]:
            return False
        if not self.dst_ports[0] <= flow.dst_port <= self.dst_ports[1]:
            return False
        return True

    def intersects(self, other: "PacketFilter") -> bool:
        """True if some flow could match both filters.

        This is the geometric test §7 uses: a receiver may discard any
        candidate that cannot intersect the clue filter.
        """
        if not (
            self.src_prefix.is_prefix_of(other.src_prefix)
            or other.src_prefix.is_prefix_of(self.src_prefix)
        ):
            return False
        if not (
            self.dst_prefix.is_prefix_of(other.dst_prefix)
            or other.dst_prefix.is_prefix_of(self.dst_prefix)
        ):
            return False
        if (
            self.protocol is not None
            and other.protocol is not None
            and self.protocol != other.protocol
        ):
            return False
        if self.src_ports[0] > other.src_ports[1] or other.src_ports[0] > self.src_ports[1]:
            return False
        if self.dst_ports[0] > other.dst_ports[1] or other.dst_ports[0] > self.dst_ports[1]:
            return False
        return True

    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (
            self.src_prefix,
            self.dst_prefix,
            self.protocol,
            self.src_ports,
            self.dst_ports,
            self.priority,
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PacketFilter) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return "PacketFilter(#%d %s -> %s proto=%s)" % (
            self.priority,
            self.src_prefix,
            self.dst_prefix,
            self.protocol,
        )
