"""Reliable-flooding bookkeeping: per-neighbour retransmission lists.

Every LSA sent to a neighbour stays on that neighbour's pending list
until an :class:`~repro.control.lsa.LsAck` covering its ``(origin,
seq)`` arrives; while pending it is retransmitted every
``retransmit_interval`` ticks.  The list is keyed by *origin*, so
queueing a newer LSA for an origin silently replaces the stale pending
copy — exactly the OSPF rule that a retransmission always carries the
freshest instance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.control.lsa import RouterLSA


class FloodingState:
    """Unacknowledged-LSA tracking for one router's neighbours."""

    __slots__ = ("retransmit_interval", "_pending")

    def __init__(self, retransmit_interval: int = 2):
        if retransmit_interval < 1:
            raise ValueError("retransmit interval must be >= 1")
        self.retransmit_interval = retransmit_interval
        #: neighbor -> origin -> (freshest pending LSA, next-due tick)
        self._pending: Dict[str, Dict[str, Tuple[RouterLSA, int]]] = {}

    def queue(self, neighbor: str, lsa: RouterLSA, tick: int) -> None:
        """Track ``lsa`` as sent-but-unacked to ``neighbor`` at ``tick``."""
        per_origin = self._pending.setdefault(neighbor, {})
        per_origin[lsa.origin] = (lsa, tick + self.retransmit_interval)

    def ack(self, neighbor: str, keys: Iterable[Tuple[str, int]]) -> int:
        """Clear pending entries covered by ``(origin, seq)`` acks.

        An ack for seq N covers any pending instance with seq <= N, so
        a late ack never cancels a *newer* pending LSA.  Returns the
        number of entries cleared.
        """
        per_origin = self._pending.get(neighbor)
        if not per_origin:
            return 0
        cleared = 0
        for origin, seq in keys:
            entry = per_origin.get(origin)
            if entry is not None and entry[0].seq <= seq:
                del per_origin[origin]
                cleared += 1
        if not per_origin:
            self._pending.pop(neighbor, None)
        return cleared

    def due(self, tick: int) -> List[Tuple[str, List[RouterLSA]]]:
        """Pending LSAs whose retransmission timer expired, rescheduled."""
        out: List[Tuple[str, List[RouterLSA]]] = []
        for neighbor in sorted(self._pending):
            per_origin = self._pending[neighbor]
            expired = [
                origin
                for origin in sorted(per_origin)
                if per_origin[origin][1] <= tick
            ]
            if not expired:
                continue
            batch = []
            for origin in expired:
                lsa, _due = per_origin[origin]
                per_origin[origin] = (lsa, tick + self.retransmit_interval)
                batch.append(lsa)
            out.append((neighbor, batch))
        return out

    def clear_neighbor(self, neighbor: str) -> None:
        """Drop all pending state for a dead adjacency."""
        self._pending.pop(neighbor, None)

    def clear(self) -> None:
        self._pending.clear()

    def unacked_count(self) -> int:
        return sum(len(per) for per in self._pending.values())
