"""Shortest-path-first and the brute-force certifier that gates it.

Both the production SPF (heap Dijkstra) and the certifier (bounded
Bellman–Ford relaxation, deliberately a *different* algorithm) resolve
equal-cost ties with one canonical rule so their outputs are
bit-comparable:

    next_hop(s, d) = the lexicographically smallest neighbour n of s
                     with  w(s, n) + dist(n, d) == dist(s, d)

The Dijkstra implementation realises this by popping ``(dist, name)``
pairs (so equal-distance nodes settle in name order) and propagating
the minimum first hop through equal-cost relaxations: any tight
predecessor ``u`` of ``v`` has ``dist(u) < dist(v)`` (edge weights are
>= 1), hence settles — with its first hop final — before ``v`` is
popped, so by induction ``v``'s recorded first hop is the minimum over
all shortest s→v paths, which equals the closed form above.

:func:`certify_next_hops` recomputes every router's table from scratch
with the closed form and reports each divergence — this is the
"post-convergence tables must match the oracle exactly" gate.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Tuple

Topology = Mapping[str, Mapping[str, int]]


def shortest_path_first(
    topology: Topology, source: str
) -> Tuple[Dict[str, int], Dict[str, str]]:
    """Dijkstra from ``source``: ``(distances, first_hops)``.

    ``first_hops`` maps every reachable destination (excluding the
    source itself) to the canonical first-hop neighbour.
    """
    dist: Dict[str, int] = {source: 0}
    first: Dict[str, str] = {}
    if source not in topology:
        return dist, first
    heap: List[Tuple[int, str]] = [(0, source)]
    settled = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor in sorted(topology.get(node, {})):
            cost = topology[node][neighbor]
            if cost < 1:
                raise ValueError(
                    "edge %s-%s has cost %d; costs must be >= 1"
                    % (node, neighbor, cost)
                )
            candidate = d + cost
            hop = neighbor if node == source else first[node]
            known = dist.get(neighbor)
            if known is None or candidate < known:
                dist[neighbor] = candidate
                first[neighbor] = hop
                heapq.heappush(heap, (candidate, neighbor))
            elif candidate == known and hop < first[neighbor]:
                first[neighbor] = hop
    return dist, first


def next_hop_table(topology: Topology, source: str) -> Dict[str, str]:
    """The SPF next-hop table: destination -> first-hop neighbour."""
    _dist, first = shortest_path_first(topology, source)
    return first


def brute_force_distances(topology: Topology, source: str) -> Dict[str, int]:
    """Single-source distances by bounded Bellman–Ford relaxation.

    Independent of the Dijkstra path above on purpose: |V| rounds of
    full-edge relaxation (early exit once a round changes nothing).
    """
    dist: Dict[str, int] = {source: 0}
    for _round in range(max(1, len(topology))):
        changed = False
        for node in sorted(topology):
            base = dist.get(node)
            if base is None:
                continue
            for neighbor in sorted(topology[node]):
                candidate = base + topology[node][neighbor]
                known = dist.get(neighbor)
                if known is None or candidate < known:
                    dist[neighbor] = candidate
                    changed = True
        if not changed:
            break
    return dist


def oracle_next_hops(topology: Topology, source: str) -> Dict[str, str]:
    """The canonical next-hop table, computed by the closed form."""
    dist_from: Dict[str, Dict[str, int]] = {
        node: brute_force_distances(topology, node) for node in topology
    }
    return _closed_form(topology, source, dist_from)


def _closed_form(
    topology: Topology,
    source: str,
    dist_from: Mapping[str, Mapping[str, int]],
) -> Dict[str, str]:
    table: Dict[str, str] = {}
    own = dist_from.get(source, {source: 0})
    for dest in sorted(topology):
        if dest == source or dest not in own:
            continue
        total = own[dest]
        for neighbor in sorted(topology.get(source, {})):
            via = dist_from[neighbor].get(dest)
            if via is not None and topology[source][neighbor] + via == total:
                table[dest] = neighbor
                break
    return table


def certify_next_hops(
    topology: Topology, tables: Mapping[str, Mapping[str, str]]
) -> List[Tuple[str, str, str, str]]:
    """Compare per-router next-hop ``tables`` against the brute oracle.

    Returns one ``(source, dest, found, expected)`` tuple per
    divergence — missing entries appear as ``""`` — sorted, empty when
    the tables are bit-identical to the oracle.
    """
    dist_from = {
        node: brute_force_distances(topology, node) for node in topology
    }
    violations: List[Tuple[str, str, str, str]] = []
    for source in sorted(topology):
        expected = _closed_form(topology, source, dist_from)
        found = tables.get(source, {})
        for dest in sorted(set(expected) | set(found)):
            got = found.get(dest, "")
            want = expected.get(dest, "")
            if got != want:
                violations.append((source, dest, got, want))
    return violations
