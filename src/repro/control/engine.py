"""Convergence-under-load: the IGP drives the clue data path end-to-end.

The :class:`ControlEngine` couples three existing planes tick by tick:

* the **control plane** (:class:`~repro.control.plane.ControlPlane`) —
  hellos, flooding, SPF;
* the **fault plan** (:class:`~repro.faults.inject.FaultPlan`) — link
  flaps, cost changes, and crash–restart windows now perturb the *IGP*,
  which withdraws and re-announces routes itself, instead of mutating
  forwarding tables directly;
* the **data plane** (:class:`~repro.netsim.network.Network` of clue
  routers) — whose tables are updated *only* through the SPF-delta feed
  (:class:`~repro.churn.feed.TableDeltaFeed`), exactly the §3.4
  incremental-maintenance path the synthetic churn streams exercised.

Every tick: apply scheduled topology/cost events, advance the IGP one
tick, diff each live router's SPF routes against what its forwarding
table last received and fold the delta through the feed, forward seeded
traffic (each packet audited hop-by-hop against the never-wrong
oracle), then drain the budgeted rebuild backlog.  A tick is
*converged* when the control plane is quiescent and correct and no
clue-table rebuild is pending; contiguous non-converged ticks form a
*disruption episode* whose length lands in the
``control_convergence_ticks`` histogram.

After the run, a brute-force all-pairs-shortest-path certifier (a
different algorithm from the production SPF — see
:mod:`repro.control.spf`) recomputes every live router's next-hop table
and the prefix routes it implies, and both the IGP's own tables and the
netsim forwarding tables must match bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.addressing import Prefix
from repro.churn.feed import TableDeltaFeed
from repro.churn.stream import ANNOUNCE, WITHDRAW
from repro.control.plane import ControlPlane
from repro.control.spf import (
    brute_force_distances,
    certify_next_hops,
)
from repro.faults.inject import (
    KIND_CRASH,
    KIND_LINK_DOWN,
    KIND_RESTART,
)
from repro.netsim.invariant import wrong_hop_details
from repro.netsim.packet import Packet


class ControlInvariantError(AssertionError):
    """A forwarding decision diverged from the oracle mid-convergence."""

    def __init__(self, tick: int, violations):
        self.tick = tick
        self.violations = list(violations)
        super().__init__(
            "never-wrong-forwarding violated at tick %d: %r"
            % (tick, self.violations)
        )


#: A scheduled link-cost change: (tick, router_a, router_b, new_cost).
CostChange = Tuple[int, str, str, int]


class TickReport:
    """What one tick did: events, deltas, traffic, backlog."""

    __slots__ = (
        "tick",
        "converged",
        "events",
        "routers_down",
        "links_down",
        "announces",
        "withdraws",
        "dirty_marked",
        "rebuilt",
        "pending_after",
        "packets",
        "delivered",
        "wrong_hops",
        "accesses",
    )

    def __init__(self, tick: int):
        self.tick = tick
        self.converged = False
        self.events = 0
        self.routers_down = 0
        self.links_down = 0
        self.announces = 0
        self.withdraws = 0
        self.dirty_marked = 0
        self.rebuilt = 0
        self.pending_after = 0
        self.packets = 0
        self.delivered = 0
        self.wrong_hops = 0
        self.accesses = 0

    def updates(self) -> int:
        return self.announces + self.withdraws

    def as_dict(self) -> Dict[str, object]:
        return {
            "tick": self.tick,
            "converged": self.converged,
            "events": self.events,
            "routers_down": self.routers_down,
            "links_down": self.links_down,
            "announces": self.announces,
            "withdraws": self.withdraws,
            "dirty_marked": self.dirty_marked,
            "rebuilt": self.rebuilt,
            "pending_after": self.pending_after,
            "packets": self.packets,
            "delivered": self.delivered,
            "wrong_hops": self.wrong_hops,
            "accesses": self.accesses,
        }

    def __repr__(self) -> str:
        return "TickReport(#%d, converged=%s, %d updates, %d packets)" % (
            self.tick,
            self.converged,
            self.updates(),
            self.packets,
        )


class ClueWindow:
    """Clue-economics deltas accumulated over a set of ticks."""

    __slots__ = ("ticks", "built", "problematic", "hits", "misses", "full")

    def __init__(self):
        self.ticks = 0
        self.built = 0
        self.problematic = 0
        self.hits = 0
        self.misses = 0
        self.full = 0

    def add(self, deltas: Dict[str, int]) -> None:
        self.ticks += 1
        self.built += deltas["built"]
        self.problematic += deltas["problematic"]
        self.hits += deltas["hits"]
        self.misses += deltas["misses"]
        self.full += deltas["full"]

    def non_problematic_fraction(self) -> float:
        """Fraction of clue records built in this window obeying Claim 1.

        With nothing built the window is trivially clean (1.0) — the
        paper's 95–99.5 % claim concerns records that *were* built.
        """
        if not self.built:
            return 1.0
        return 1.0 - self.problematic / self.built

    def as_dict(self) -> Dict[str, object]:
        return {
            "ticks": self.ticks,
            "entries_built": self.built,
            "problematic": self.problematic,
            "non_problematic_fraction": round(
                self.non_problematic_fraction(), 6
            ),
            "clue_hits": self.hits,
            "clue_misses": self.misses,
            "full_lookups": self.full,
        }


class ControlReport:
    """The whole run: per-tick records, episodes, and the oracle verdict."""

    def __init__(self, routers: int, pairs: int):
        self.routers = routers
        self.pairs = pairs
        self.ticks: List[TickReport] = []
        #: Completed disruption episodes, as lengths in ticks.
        self.episodes: List[int] = []
        #: Length of a disruption still open when the run ended (0 = none).
        self.open_episode = 0
        self.mid_convergence = ClueWindow()
        self.converged_window = ClueWindow()
        #: ``(source, dest, found, expected)`` SPF-vs-oracle divergences.
        self.next_hop_divergences: List[Tuple[str, str, str, str]] = []
        #: ``(router, prefix, found, expected)`` routing-table divergences
        #: (checked against both the IGP's and the netsim router's table).
        self.table_divergences: List[Tuple[str, str, str, str]] = []
        self.lsas_flooded = 0
        self.spf_runs = 0
        self.events_applied: Dict[str, int] = {}

    # -- aggregates ------------------------------------------------------
    def packets(self) -> int:
        return sum(t.packets for t in self.ticks)

    def delivered(self) -> int:
        return sum(t.delivered for t in self.ticks)

    def wrong_hops(self) -> int:
        return sum(t.wrong_hops for t in self.ticks)

    def updates_applied(self) -> int:
        return sum(t.updates() for t in self.ticks)

    def entries_rebuilt(self) -> int:
        return sum(t.rebuilt for t in self.ticks)

    def ticks_converged(self) -> int:
        return sum(1 for t in self.ticks if t.converged)

    def final_converged(self) -> bool:
        return bool(self.ticks) and self.ticks[-1].converged

    def max_episode(self) -> int:
        longest = max(self.episodes) if self.episodes else 0
        return max(longest, self.open_episode)

    def divergences(self) -> int:
        return len(self.next_hop_divergences) + len(self.table_divergences)

    def passed(self) -> bool:
        """Zero wrong hops, zero oracle divergence, and a converged end."""
        return (
            self.wrong_hops() == 0
            and self.divergences() == 0
            and self.final_converged()
            and self.open_episode == 0
            and self.packets() > 0
        )

    def claim(self) -> str:
        return (
            "control: %d routers converged through %d disruption episodes "
            "(max %d ticks); %d SPF-fed table updates, %d clue entries "
            "rebuilt; mid-convergence clues %.2f%% non-problematic; "
            "%d/%d oracle divergences; %d wrong hops over %d packets."
            % (
                self.routers,
                len(self.episodes),
                self.max_episode(),
                self.updates_applied(),
                self.entries_rebuilt(),
                100.0 * self.mid_convergence.non_problematic_fraction(),
                len(self.next_hop_divergences),
                len(self.table_divergences),
                self.wrong_hops(),
                self.packets(),
            )
        )

    def summary(self) -> Dict[str, object]:
        return {
            "routers": self.routers,
            "pairs": self.pairs,
            "ticks": len(self.ticks),
            "ticks_converged": self.ticks_converged(),
            "episodes": len(self.episodes),
            "episode_lengths": list(self.episodes),
            "max_episode_ticks": self.max_episode(),
            "open_episode": self.open_episode,
            "final_converged": self.final_converged(),
            "events_applied": dict(sorted(self.events_applied.items())),
            "updates_applied": self.updates_applied(),
            "entries_rebuilt": self.entries_rebuilt(),
            "lsas_flooded": self.lsas_flooded,
            "spf_runs": self.spf_runs,
            "packets": self.packets(),
            "delivered": self.delivered(),
            "wrong_hops": self.wrong_hops(),
            "next_hop_divergences": len(self.next_hop_divergences),
            "table_divergences": len(self.table_divergences),
            "passed": self.passed(),
            "claim": self.claim(),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "summary": self.summary(),
            "mid_convergence": self.mid_convergence.as_dict(),
            "converged_window": self.converged_window.as_dict(),
            "ticks": [t.as_dict() for t in self.ticks],
            "divergence_samples": {
                "next_hop": [
                    list(item) for item in self.next_hop_divergences[:10]
                ],
                "table": [
                    list(item) for item in self.table_divergences[:10]
                ],
            },
        }

    def __repr__(self) -> str:
        return "ControlReport(%d ticks, %d episodes, passed=%s)" % (
            len(self.ticks),
            len(self.episodes),
            self.passed(),
        )


def _prefix_sort_key(item: Tuple[Prefix, object]) -> Tuple[int, int]:
    return (item[0].length, item[0].bits)


class ControlEngine:
    """Runs a clue-router network under a live link-state control plane."""

    def __init__(
        self,
        network,
        plane: ControlPlane,
        plan=None,
        *,
        cost_changes: Sequence[CostChange] = (),
        technique: Optional[str] = None,
        rebuild_budget: Optional[int] = None,
        seed: int = 0,
        hard_invariant: bool = True,
    ):
        self.network = network
        self.plane = plane
        self.plan = plan
        self.cost_changes = sorted(cost_changes)
        self.rebuild_budget = rebuild_budget
        self.hard_invariant = hard_invariant
        self.tick_index = 0
        self.feed = TableDeltaFeed(network, technique=technique)
        self._rng = random.Random("control:%d:traffic" % seed)
        instruments = network._effective_instruments()
        self._instruments = instruments
        self._control_views = {
            name: instruments.bind_control(name)
            for name in sorted(network.routers)
        }
        if plan is not None:
            plan.telemetry = instruments
        #: What each router's forwarding table currently holds, mirrored
        #: engine-side so SPF output can be diffed into deltas.
        self._applied: Dict[str, Dict[Prefix, str]] = {
            name: dict(router.receiver.entries)
            for name, router in sorted(network.routers.items())
        }
        #: Destination pool: every prefix any router originates.
        self._origin_prefixes: List[Prefix] = sorted(
            (
                prefix
                for name in plane.graph.nodes
                for prefix in plane.graph.nodes[name].get("originated", [])
            ),
            key=lambda prefix: (prefix.length, prefix.bits),
        )
        self._disrupted_for = 0

    # ------------------------------------------------------------------
    # the tick loop
    # ------------------------------------------------------------------

    def run(self, ticks: int, traffic_per_tick: int = 8) -> ControlReport:
        report = ControlReport(
            routers=len(self.network.routers), pairs=len(self.feed.pairs)
        )
        for _ in range(ticks):
            self.tick_index += 1
            tick_report = TickReport(self.tick_index)
            self._apply_topology(tick_report)
            self._apply_cost_changes(tick_report)
            self.plane.tick()
            self._apply_deltas(tick_report)
            tick_report.converged = (
                self.plane.converged() and self.feed.pending_total() == 0
            )
            self._track_episode(tick_report.converged, report)
            before = self._clue_totals()
            self._forward_traffic(traffic_per_tick, tick_report)
            after = self._clue_totals()
            deltas = {
                key: after[key] - before[key] for key in after
            }
            window = (
                report.converged_window
                if tick_report.converged
                else report.mid_convergence
            )
            window.add(deltas)
            tick_report.rebuilt = self.feed.flush(self.rebuild_budget)
            tick_report.pending_after = self.feed.pending_total()
            report.ticks.append(tick_report)
        report.open_episode = self._disrupted_for
        self._finalise(report)
        return report

    def _apply_topology(self, tick_report: TickReport) -> None:
        if self.plan is not None:
            tick = self.tick_index
            for name in self.plan.restarts_at(tick):
                router = self.network.routers[name]
                if not router.up:
                    router.restart()
                    self.plane.restart(name)
                    self.plan.count_event(KIND_RESTART)
                    tick_report.events += 1
            for name in self.plan.routers_down_at(tick):
                router = self.network.routers[name]
                if router.up:
                    router.crash()
                    self.plane.crash(name)
                    self.plan.count_event(KIND_CRASH)
                    tick_report.events += 1
            links = set(self.plan.links_down_at(tick))
            newly_down = links - self.network.down_links
            if newly_down:
                self.plan.count_event(KIND_LINK_DOWN, len(newly_down))
                tick_report.events += len(newly_down)
            self.network.down_links = set(links)
            self.plane.set_down_links(links)
        tick_report.routers_down = len(self.plane.down_routers)
        tick_report.links_down = len(self.plane.down_links)

    def _apply_cost_changes(self, tick_report: TickReport) -> None:
        for tick, a, b, cost in self.cost_changes:
            if tick == self.tick_index:
                self.plane.set_link_cost(a, b, cost)
                tick_report.events += 1

    def _apply_deltas(self, tick_report: TickReport) -> None:
        """Diff SPF routes against applied tables; fold through the feed."""
        desired = self.plane.routes()
        per_add: Dict[str, List[Tuple[Prefix, str]]] = {}
        per_remove: Dict[str, List[Prefix]] = {}
        for name in sorted(desired):
            routes = desired[name]
            mirror = self._applied[name]
            adds = sorted(
                (
                    (prefix, hop)
                    for prefix, hop in routes.items()
                    if mirror.get(prefix) != hop
                ),
                key=_prefix_sort_key,
            )
            removes = sorted(
                (prefix for prefix in mirror if prefix not in routes),
                key=lambda prefix: (prefix.length, prefix.bits),
            )
            if adds:
                per_add[name] = adds
            if removes:
                per_remove[name] = removes
            if adds or removes:
                self._applied[name] = dict(routes)
                self._control_views[name].record_table_updates(
                    len(adds) + len(removes)
                )
            tick_report.announces += len(adds)
            tick_report.withdraws += len(removes)
        if not (per_add or per_remove):
            return
        tick_report.dirty_marked += self.feed.apply(per_add, per_remove)
        if tick_report.announces:
            self._instruments.record_update(ANNOUNCE, tick_report.announces)
        if tick_report.withdraws:
            self._instruments.record_update(WITHDRAW, tick_report.withdraws)

    def _forward_traffic(self, count: int, tick_report: TickReport) -> None:
        """Seeded traffic, every hop audited against the BMP oracle."""
        if count <= 0 or not self._origin_prefixes:
            return
        starts = [
            name
            for name in sorted(self.network.routers)
            if self.network.routers[name].up
        ]
        if not starts:
            return
        for _ in range(count):
            prefix = self._origin_prefixes[
                self._rng.randrange(len(self._origin_prefixes))
            ]
            destination = prefix.random_address(self._rng)
            start = starts[self._rng.randrange(len(starts))]
            delivery = self.network.forward(Packet(destination), start)
            tick_report.packets += 1
            tick_report.delivered += 1 if delivery.delivered else 0
            tick_report.accesses += delivery.total_accesses()
            details = wrong_hop_details(self.network, delivery.packet)
            if details:
                tick_report.wrong_hops += len(details)
                if self.hard_invariant:
                    raise ControlInvariantError(self.tick_index, details)

    def _track_episode(self, converged: bool, report: ControlReport) -> None:
        if converged:
            if self._disrupted_for:
                report.episodes.append(self._disrupted_for)
                self._instruments.record_convergence_episode(
                    self._disrupted_for
                )
                self._disrupted_for = 0
        else:
            self._disrupted_for += 1

    def _clue_totals(self) -> Dict[str, int]:
        instruments = self._instruments
        return {
            "built": int(instruments.clue_entries_built.total()),
            "problematic": int(instruments.problematic_clues.total()),
            "hits": int(instruments.clue_hits.total()),
            "misses": int(instruments.clue_misses.total()),
            "full": int(instruments.full_lookups.total()),
        }

    # ------------------------------------------------------------------
    # post-run certification
    # ------------------------------------------------------------------

    def _finalise(self, report: ControlReport) -> None:
        report.lsas_flooded = sum(
            process.lsas_sent
            for process in self.plane.processes.values()
        )
        report.spf_runs = sum(
            process.spf_runs
            for process in self.plane.processes.values()
        )
        if self.plan is not None:
            report.events_applied = dict(self.plan.counts)
        self._certify(report)

    def _certify(self, report: ControlReport) -> None:
        """Brute-force oracle vs the IGP's and the data path's tables."""
        live = self.plane.live_topology()
        report.next_hop_divergences = certify_next_hops(
            live, self.plane.next_hop_tables()
        )
        dist_from = {
            name: brute_force_distances(live, name) for name in sorted(live)
        }
        origins = {
            name: tuple(self.plane.graph.nodes[name].get("originated", []))
            for name in sorted(self.plane.graph.nodes)
        }
        for source in sorted(live):
            expected: Dict[Prefix, str] = {}
            for origin in sorted(live):
                if origin == source:
                    hop = source
                elif origin in dist_from[source]:
                    total = dist_from[source][origin]
                    hop = ""
                    for neighbor in sorted(live[source]):
                        via = dist_from[neighbor].get(origin)
                        if (
                            via is not None
                            and live[source][neighbor] + via == total
                        ):
                            hop = neighbor
                            break
                    if not hop:
                        continue
                else:
                    continue
                for prefix in origins[origin]:
                    expected[prefix] = hop
            igp = self.plane.processes[source].routes
            fib = dict(self.network.routers[source].receiver.entries)
            for table_name, found in (("igp", igp), ("fib", fib)):
                for prefix in sorted(
                    set(expected) | set(found),
                    key=lambda p: (p.length, p.bits),
                ):
                    got = found.get(prefix, "")
                    want = expected.get(prefix, "")
                    if got != want:
                        report.table_divergences.append(
                            (
                                "%s:%s" % (source, table_name),
                                str(prefix),
                                str(got),
                                str(want),
                            )
                        )

    def __repr__(self) -> str:
        return "ControlEngine(%d routers, %d pairs, tick=%d)" % (
            len(self.network.routers),
            len(self.feed.pairs),
            self.tick_index,
        )


class ControlScenario:
    """A ready-to-run bundle: network, plane, fault plan, cost schedule."""

    __slots__ = (
        "network",
        "plane",
        "plan",
        "cost_changes",
        "warmup_ticks",
        "config",
    )

    def __init__(
        self, network, plane, plan, cost_changes, warmup_ticks, config
    ):
        self.network = network
        self.plane = plane
        self.plan = plan
        self.cost_changes = cost_changes
        self.warmup_ticks = warmup_ticks
        self.config = config

    def __repr__(self) -> str:
        return "ControlScenario(%d routers, warmup=%d)" % (
            len(self.network.routers),
            self.warmup_ticks,
        )


def build_control_scenario(
    routers: int = 12,
    per_node: int = 8,
    seed: int = 0,
    technique: str = "patricia",
    *,
    ticks: int = 120,
    flaps: int = 2,
    crashes: int = 1,
    cost_changes: int = 2,
    hello_interval: int = 1,
    dead_interval: int = 4,
    retransmit_interval: int = 2,
    fault_duration: Optional[int] = None,
    nesting: float = 0.3,
) -> ControlScenario:
    """A seeded convergence-under-load scenario, warmed to convergence.

    Builds a mesh with seeded link costs, runs the IGP to initial
    convergence (bounded; :class:`ControlConvergenceError` past the
    bound), instantiates the clue-router fabric *from the IGP's own
    converged tables*, registers every adjacency, and derives a
    flap/crash :class:`FaultPlan` plus a cost-change schedule sized to
    ``ticks`` with a quiet tail for final reconvergence.
    """
    from repro.faults.inject import flap_crash_plan
    from repro.netsim.network import Network
    from repro.netsim.router import ClueRouter
    from repro.routing.topology import mesh_topology, originate_prefixes
    from repro.telemetry.instruments import LookupInstruments
    from repro.telemetry.registry import MetricsRegistry

    if routers < 2:
        raise ValueError("a control scenario needs at least two routers")
    graph = mesh_topology(routers, degree=min(3, routers - 1), seed=seed)
    cost_rng = random.Random("control:%d:costs" % seed)
    for a, b in sorted(graph.edges):
        graph.edges[a, b]["cost"] = cost_rng.randrange(1, 5)
    originate_prefixes(graph, per_node=per_node, seed=seed + 1, nesting=nesting)
    instruments = LookupInstruments(MetricsRegistry())
    plane = ControlPlane(
        graph,
        hello_interval=hello_interval,
        dead_interval=dead_interval,
        retransmit_interval=retransmit_interval,
        instruments=instruments,
    )
    warmup = plane.run_until_converged(limit=20 + 6 * routers)
    network = Network(instruments=instruments)
    routes = plane.routes()
    for name in sorted(routes):
        entries = sorted(routes[name].items(), key=_prefix_sort_key)
        network.add_router(
            ClueRouter(name, entries, technique=technique)
        )
    for name in sorted(routes):
        router = network.routers[name]
        for neighbor in sorted(graph.neighbors(name)):
            router.register_neighbor(
                neighbor,
                sorted(routes[neighbor].items(), key=_prefix_sort_key),
            )
    duration = (
        fault_duration
        if fault_duration is not None
        else 2 * dead_interval + 2
    )
    plan = flap_crash_plan(
        sorted(graph.nodes),
        sorted(graph.edges),
        ticks,
        flaps=flaps,
        crashes=crashes,
        seed=seed,
        duration=duration,
    )
    change_rng = random.Random("control:%d:cost-changes" % seed)
    last_start = max(2, ticks - duration - 16)
    edges = sorted(graph.edges)
    schedule: List[CostChange] = []
    for _ in range(cost_changes):
        tick = change_rng.randrange(1, last_start)
        a, b = edges[change_rng.randrange(len(edges))]
        cost = change_rng.randrange(1, 5)
        if cost == graph.edges[a, b]["cost"]:
            cost = cost % 4 + 1
        schedule.append((tick, a, b, cost))
    config = {
        "routers": routers,
        "per_node": per_node,
        "seed": seed,
        "technique": technique,
        "ticks": ticks,
        "flaps": flaps,
        "crashes": crashes,
        "cost_changes": cost_changes,
        "hello_interval": hello_interval,
        "dead_interval": dead_interval,
        "retransmit_interval": retransmit_interval,
        "fault_duration": duration,
        "warmup_ticks": warmup,
    }
    return ControlScenario(
        network, plane, plan, sorted(schedule), warmup, config
    )
