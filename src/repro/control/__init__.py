"""repro.control — a link-state IGP feeding the clue data path.

Seven modules, one story:

* :mod:`repro.control.lsa` — sequence-numbered router LSAs and the
  hello / LsUpdate / LsAck message vocabulary;
* :mod:`repro.control.neighbor` — per-neighbour adjacency state
  machines (hello/dead-interval bring-up and teardown);
* :mod:`repro.control.lsdb` — the synchronised link-state database,
  with max-age purge and bidirectionally-agreed topology derivation;
* :mod:`repro.control.flooding` — reliable flooding (ack/retransmit);
* :mod:`repro.control.spf` — Dijkstra SPF plus the brute-force
  all-pairs certifier, sharing one canonical tie-break rule;
* :mod:`repro.control.process` — the per-router protocol engine;
* :mod:`repro.control.plane` — tick-synchronous message delivery over
  a netsim topology, with fault-driven link/router outages;
* :mod:`repro.control.engine` — convergence-under-load: SPF deltas
  drive :class:`~repro.core.maintenance.MaintainedClueTable` updates
  through :mod:`repro.churn` while traffic flows and every hop is
  audited against the never-wrong-forwarding oracle.

The point of the package: the paper's clue economics were only ever
measured against *static* or *synthetically churned* tables.  Here the
routing tables are computed, withdrawn, and re-announced by an actual
protocol reacting to flaps, cost changes, and crashes — so the
95–99.5 % non-problematic claim is tested while the network is
genuinely mid-convergence.
"""

from repro.control.engine import (
    ControlEngine,
    ControlInvariantError,
    ControlReport,
    ControlScenario,
    TickReport,
    build_control_scenario,
)
from repro.control.flooding import FloodingState
from repro.control.lsa import (
    DEFAULT_MAX_AGE,
    Hello,
    LsAck,
    LsUpdate,
    RouterLSA,
)
from repro.control.lsdb import LinkStateDatabase
from repro.control.neighbor import (
    Adjacency,
    STATE_DOWN,
    STATE_FULL,
    STATE_INIT,
)
from repro.control.plane import ControlConvergenceError, ControlPlane
from repro.control.process import ControlProcess
from repro.control.spf import (
    brute_force_distances,
    certify_next_hops,
    next_hop_table,
    oracle_next_hops,
    shortest_path_first,
)

__all__ = [
    "Adjacency",
    "ControlConvergenceError",
    "ControlEngine",
    "ControlInvariantError",
    "ControlPlane",
    "ControlProcess",
    "ControlReport",
    "ControlScenario",
    "DEFAULT_MAX_AGE",
    "FloodingState",
    "Hello",
    "LinkStateDatabase",
    "LsAck",
    "LsUpdate",
    "RouterLSA",
    "STATE_DOWN",
    "STATE_FULL",
    "STATE_INIT",
    "TickReport",
    "brute_force_distances",
    "build_control_scenario",
    "certify_next_hops",
    "next_hop_table",
    "oracle_next_hops",
    "shortest_path_first",
]
