"""The per-router IGP process: hellos, flooding, LSDB, SPF, routes.

One :class:`ControlProcess` per router.  The surrounding
:class:`~repro.control.plane.ControlPlane` drives it tick by tick:

1. ``begin_tick`` — dead-interval checks, hello emission, and due
   retransmissions;
2. ``receive`` — one call per delivered message (hello / LsUpdate /
   LsAck), producing floods and acks;
3. ``finish_tick`` — LSDB aging, then (only if something changed) an
   SPF run that refreshes both the router-level next-hop table and the
   prefix-level routing table that feeds the clue data path.

Crash–restart follows the OSPF ghost-LSA rule: a restarted process
comes up with sequence number 0, and on hearing a *stale copy of its
own LSA* it out-sequences the ghost (``seq = ghost + 1``) and
re-floods, so the network converges on the post-restart reality
without waiting for max-age.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.addressing import Prefix
from repro.control.flooding import FloodingState
from repro.control.lsa import (
    DEFAULT_MAX_AGE,
    Hello,
    LsAck,
    LsUpdate,
    RouterLSA,
)
from repro.control.lsdb import LinkStateDatabase
from repro.control.neighbor import (
    STATE_DOWN,
    STATE_FULL,
    Adjacency,
)
from repro.control.spf import shortest_path_first

#: An emission: (destination router, message object).
Emission = Tuple[str, object]


class ControlProcess:
    """The link-state protocol engine for one router."""

    def __init__(
        self,
        name: str,
        link_costs: Mapping[str, int],
        prefixes: Iterable[Prefix],
        *,
        hello_interval: int = 1,
        dead_interval: int = 4,
        retransmit_interval: int = 2,
        max_age: int = DEFAULT_MAX_AGE,
        telemetry=None,
    ):
        if hello_interval < 1:
            raise ValueError("hello interval must be >= 1")
        if dead_interval <= hello_interval:
            raise ValueError("dead interval must exceed the hello interval")
        self.name = name
        self.hello_interval = hello_interval
        self.dead_interval = dead_interval
        self.max_age = max_age
        self.prefixes: Tuple[Prefix, ...] = tuple(prefixes)
        self.telemetry = telemetry
        self.adjacencies: Dict[str, Adjacency] = {
            neighbor: Adjacency(neighbor, cost)
            for neighbor, cost in sorted(link_costs.items())
        }
        self.lsdb = LinkStateDatabase()
        self.flooding = FloodingState(retransmit_interval)
        self.seq = 0
        self.dirty = True
        #: Tick of the last self-origination, driving periodic refresh
        #: at half the max age (OSPF's LSRefreshTime-vs-MaxAge pairing)
        #: so a live router's LSA never ages out of a neighbour's LSDB.
        self._last_originated = 0
        #: Destination router -> first-hop neighbour (SPF output).
        self.next_hops: Dict[str, str] = {}
        #: Prefix -> next-hop router name (what the clue data path gets;
        #: locally-originated prefixes map to this router itself).
        self.routes: Dict[Prefix, str] = {}
        self.spf_runs = 0
        self.lsas_sent = 0
        self._outbox: List[Emission] = []
        self._originate(tick=0)

    # ------------------------------------------------------------------
    # tick phases
    # ------------------------------------------------------------------

    def begin_tick(self, tick: int) -> List[Emission]:
        """Dead-neighbour detection, hellos, and due retransmissions."""
        for neighbor in sorted(self.adjacencies):
            adjacency = self.adjacencies[neighbor]
            if adjacency.is_dead(tick, self.dead_interval):
                self._transition(adjacency, adjacency.bring_down())
                self.flooding.clear_neighbor(neighbor)
                self._originate(tick)
        if tick - self._last_originated >= max(1, self.max_age // 2):
            self._originate(tick)
        if tick % self.hello_interval == 0:
            heard = tuple(
                neighbor
                for neighbor in sorted(self.adjacencies)
                if self.adjacencies[neighbor].state != STATE_DOWN
            )
            hello = Hello(self.name, heard)
            for neighbor in sorted(self.adjacencies):
                self._outbox.append((neighbor, hello))
        for neighbor, lsas in self.flooding.due(tick):
            self._emit_update(neighbor, lsas)
        return self._drain()

    def receive(self, message: object, tick: int) -> List[Emission]:
        """Process one delivered control message."""
        if isinstance(message, Hello):
            self._receive_hello(message, tick)
        elif isinstance(message, LsUpdate):
            self._receive_update(message, tick)
        elif isinstance(message, LsAck):
            self.flooding.ack(message.sender, message.keys)
        else:
            raise TypeError(
                "unknown control message %r" % type(message).__name__
            )
        return self._drain()

    def finish_tick(self, tick: int) -> None:
        """Age the LSDB, then recompute routes if anything changed."""
        purged = self.lsdb.age_out(tick, self.max_age, keep=(self.name,))
        if purged:
            self.dirty = True
        if not self.dirty:
            return
        self.dirty = False
        topology = self.lsdb.topology()
        _dist, first = shortest_path_first(topology, self.name)
        self.next_hops = first
        routes: Dict[Prefix, str] = {}
        for origin in self.lsdb.origins():
            if origin == self.name:
                hop = self.name
            else:
                maybe = first.get(origin)
                if maybe is None:
                    continue
                hop = maybe
            lsa = self.lsdb.get(origin)
            if lsa is None:
                continue
            for prefix in lsa.prefixes:
                routes[prefix] = hop
        self.routes = routes
        self.spf_runs += 1
        if self.telemetry is not None:
            self.telemetry.record_spf()

    def restart(self, tick: int) -> None:
        """Cold restart: adjacencies down, LSDB empty, seq reset.

        The pre-crash sequence number is deliberately forgotten — the
        ghost-LSA rule in :meth:`_receive_update` recovers it from the
        first stale self-originated copy a neighbour floods back.
        """
        for adjacency in self.adjacencies.values():
            adjacency.bring_down()
        self.lsdb = LinkStateDatabase()
        self.flooding.clear()
        self.seq = 0
        self.next_hops = {}
        self.routes = {}
        self._outbox = []
        self.dirty = True
        self._originate(tick)

    def set_link_cost(self, neighbor: str, cost: int, tick: int) -> None:
        """An operator cost change on an attached link; re-advertise."""
        adjacency = self.adjacencies.get(neighbor)
        if adjacency is None:
            raise KeyError(
                "%s has no link to %s" % (self.name, neighbor)
            )
        if adjacency.cost == cost:
            return
        adjacency.cost = cost
        self._originate(tick)

    def pending_emissions(self) -> List[Emission]:
        return self._drain()

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def _receive_hello(self, message: Hello, tick: int) -> None:
        adjacency = self.adjacencies.get(message.sender)
        if adjacency is None:
            return
        previous = adjacency.state
        current = adjacency.hello_received(
            tick, two_way=self.name in message.seen
        )
        if current == previous:
            return
        self._transition(adjacency, current)
        if current == STATE_FULL:
            # Database sync to the fresh adjacency: re-originate (our
            # LSA now lists it), then push the whole LSDB its way.
            self._originate(tick)
            self._emit_update(message.sender, self.lsdb.lsas(), tick=tick)
        elif previous == STATE_FULL:
            # Lost two-way without going dead: withdraw the link.
            self.flooding.clear_neighbor(message.sender)
            self._originate(tick)

    def _receive_update(self, message: LsUpdate, tick: int) -> None:
        acks: List[Tuple[str, int]] = []
        for lsa in message.lsas:
            acks.append(lsa.key())
            if lsa.origin == self.name:
                self._receive_own(lsa, message.sender, tick)
                continue
            if self.lsdb.consider(lsa, tick):
                self.dirty = True
                for neighbor in self._full_neighbors():
                    if neighbor != message.sender:
                        self._emit_update(neighbor, [lsa], tick=tick)
            else:
                newer = self.lsdb.newer_than(lsa)
                if newer is not None:
                    # The sender is behind; flood our fresher copy back.
                    self._emit_update(message.sender, [newer], tick=tick)
        self._outbox.append((message.sender, LsAck(self.name, acks)))

    def _receive_own(self, ghost: RouterLSA, sender: str, tick: int) -> None:
        """A copy of our own LSA arrived — normal echo or restart ghost."""
        if ghost.seq < self.seq:
            # Stale echo of a previous instance; the ack (already
            # queued by the caller) plus our fresher copy corrects it.
            mine = self.lsdb.get(self.name)
            if mine is not None:
                self._emit_update(sender, [mine], tick=tick)
            return
        mine = self.lsdb.get(self.name)
        if (
            ghost.seq == self.seq
            and mine is not None
            and ghost.links == mine.links
            and ghost.prefixes == mine.prefixes
        ):
            # Exact echo of our current instance (a neighbour's
            # database sync includes it); the ack suffices.
            return
        # A pre-restart incarnation survives in the network, either
        # strictly ahead of us or colliding at our current sequence
        # number with different content.  Out-sequence it and re-flood.
        self.seq = ghost.seq
        self._originate(tick)

    # ------------------------------------------------------------------
    # origination and flooding
    # ------------------------------------------------------------------

    def _originate(self, tick: int) -> None:
        self.seq += 1
        self._last_originated = tick
        links = tuple(
            (neighbor, adjacency.cost)
            for neighbor, adjacency in sorted(self.adjacencies.items())
            if adjacency.is_full()
        )
        lsa = RouterLSA(self.name, self.seq, links, self.prefixes)
        self.lsdb.install(lsa, tick)
        self.dirty = True
        for neighbor in self._full_neighbors():
            self._emit_update(neighbor, [lsa], tick=tick)

    def _emit_update(
        self,
        neighbor: str,
        lsas: Iterable[RouterLSA],
        tick: Optional[int] = None,
    ) -> None:
        """Send an LsUpdate; with a ``tick``, also start retransmission.

        Retransmissions from :meth:`begin_tick` arrive with ``tick``
        None because :meth:`FloodingState.due` already rescheduled them.
        """
        batch = list(lsas)
        if not batch:
            return
        if tick is not None:
            for lsa in batch:
                self.flooding.queue(neighbor, lsa, tick)
        self._outbox.append((neighbor, LsUpdate(self.name, tuple(batch))))
        self.lsas_sent += len(batch)
        if self.telemetry is not None:
            self.telemetry.record_flood(len(batch))

    def _full_neighbors(self) -> List[str]:
        return [
            neighbor
            for neighbor in sorted(self.adjacencies)
            if self.adjacencies[neighbor].is_full()
        ]

    def _transition(self, adjacency: Adjacency, state: str) -> None:
        if self.telemetry is not None:
            self.telemetry.record_transition(state)

    def _drain(self) -> List[Emission]:
        out = self._outbox
        self._outbox = []
        return out

    def __repr__(self) -> str:
        full = len(self._full_neighbors())
        return "ControlProcess(%r, seq=%d, %d/%d full, %d lsas)" % (
            self.name,
            self.seq,
            full,
            len(self.adjacencies),
            len(self.lsdb),
        )
