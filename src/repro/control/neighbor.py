"""Per-neighbour adjacency state machines.

A three-state reduction of the OSPF neighbour FSM, sufficient for a
tick-synchronous simulation with implicit database exchange:

* ``DOWN`` — nothing heard within the dead interval;
* ``INIT`` — the neighbour's hellos arrive, but it does not yet list us
  (one-way connectivity);
* ``FULL`` — two-way connectivity confirmed; the adjacency carries
  floods and appears in the router's own LSA.

On the DOWN→FULL edge the process performs a full-database send to the
new neighbour (the stand-in for OSPF's ExStart/Exchange/Loading
phases — with one-tick lossless links and reliable flooding, pushing
every LSA and letting acks settle reaches the same synchronised state).
"""

from __future__ import annotations

from typing import Optional

STATE_DOWN = "down"
STATE_INIT = "init"
STATE_FULL = "full"


class Adjacency:
    """Liveness and two-way state for one directly-attached neighbour."""

    __slots__ = ("neighbor", "cost", "state", "last_heard")

    def __init__(self, neighbor: str, cost: int):
        self.neighbor = neighbor
        self.cost = cost
        self.state = STATE_DOWN
        #: Tick of the most recent hello from this neighbour, or None.
        self.last_heard: Optional[int] = None

    def is_full(self) -> bool:
        return self.state == STATE_FULL

    def hello_received(self, tick: int, two_way: bool) -> str:
        """Record a hello; return the (possibly unchanged) new state."""
        self.last_heard = tick
        if two_way:
            self.state = STATE_FULL
        elif self.state == STATE_DOWN:
            self.state = STATE_INIT
        else:
            # Lost two-way (the neighbour restarted and no longer lists
            # us) drops a FULL adjacency back to INIT; INIT stays INIT.
            self.state = STATE_INIT
        return self.state

    def is_dead(self, tick: int, dead_interval: int) -> bool:
        """True when the dead interval elapsed with no hello."""
        if self.state == STATE_DOWN:
            return False
        if self.last_heard is None:
            return True
        return tick - self.last_heard > dead_interval

    def bring_down(self) -> str:
        self.state = STATE_DOWN
        self.last_heard = None
        return self.state

    def __repr__(self) -> str:
        return "Adjacency(%r, cost=%d, state=%s)" % (
            self.neighbor,
            self.cost,
            self.state,
        )
