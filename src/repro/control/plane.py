"""The control-plane wire: tick-synchronous message delivery.

Hosts one :class:`~repro.control.process.ControlProcess` per router of
a netsim topology graph and moves their messages with exactly one tick
of latency.  Links and routers go down and come back under fault-plan
control; a message is silently dropped when, at delivery time, either
endpoint is down or the link between them is — which is precisely what
makes the ack/retransmit machinery earn its keep.

Delivery order is deterministic (sorted by sender, receiver, queue
position).  An optional seeded ``rng`` shuffles delivery order per tick
to exercise interleaving robustness in property tests without
sacrificing reproducibility.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.addressing import Prefix
from repro.control.lsa import DEFAULT_MAX_AGE, Hello
from repro.control.neighbor import STATE_FULL
from repro.control.process import ControlProcess


class ControlConvergenceError(RuntimeError):
    """The plane failed to converge within an expected bound."""


class ControlPlane:
    """All control processes of one topology plus the wire between them."""

    def __init__(
        self,
        graph,
        *,
        hello_interval: int = 1,
        dead_interval: int = 4,
        retransmit_interval: int = 2,
        max_age: int = DEFAULT_MAX_AGE,
        instruments=None,
        rng: Optional[random.Random] = None,
    ):
        self.graph = graph
        self.instruments = instruments
        self.rng = rng
        self.tick_index = 0
        self.down_links: Set[FrozenSet[str]] = set()
        self.down_routers: Set[str] = set()
        self.processes: Dict[str, ControlProcess] = {}
        for name in sorted(graph.nodes):
            costs = {
                neighbor: int(graph.edges[name, neighbor].get("cost", 1))
                for neighbor in graph.neighbors(name)
            }
            prefixes = list(graph.nodes[name].get("originated", []))
            telemetry = (
                instruments.bind_control(name)
                if instruments is not None
                else None
            )
            self.processes[name] = ControlProcess(
                name,
                costs,
                prefixes,
                hello_interval=hello_interval,
                dead_interval=dead_interval,
                retransmit_interval=retransmit_interval,
                max_age=max_age,
                telemetry=telemetry,
            )
        #: (sender, receiver, message) triples landing next tick.
        self._in_flight: List[Tuple[str, str, object]] = []

    # ------------------------------------------------------------------
    # topology perturbation
    # ------------------------------------------------------------------

    def crash(self, name: str) -> None:
        self.down_routers.add(name)

    def restart(self, name: str) -> None:
        self.down_routers.discard(name)
        process = self.processes[name]
        # Costs may have changed while the router was down; a cold
        # restart reads the current interface configuration.
        for neighbor in self.graph.neighbors(name):
            process.adjacencies[neighbor].cost = int(
                self.graph.edges[name, neighbor].get("cost", 1)
            )
        process.restart(self.tick_index)
        for dest, message in self.processes[name].pending_emissions():
            self._in_flight.append((name, dest, message))

    def set_down_links(self, links: Set[FrozenSet[str]]) -> None:
        self.down_links = set(links)

    def set_link_cost(self, a: str, b: str, cost: int) -> None:
        """An operator changes a link's cost; both ends re-advertise."""
        if cost < 1:
            raise ValueError("link costs must be >= 1")
        self.graph.edges[a, b]["cost"] = cost
        for endpoint, other in ((a, b), (b, a)):
            if endpoint not in self.down_routers:
                process = self.processes[endpoint]
                process.set_link_cost(other, cost, self.tick_index)
                for dest, message in process.pending_emissions():
                    self._in_flight.append((endpoint, dest, message))

    # ------------------------------------------------------------------
    # the tick loop
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance one tick: deliver, run begin/receive/finish phases."""
        self.tick_index += 1
        tick = self.tick_index
        deliveries = self._in_flight
        self._in_flight = []
        if self.rng is not None:
            self.rng.shuffle(deliveries)
        outbox: List[Tuple[str, str, object]] = []
        for name in self._live_routers():
            for dest, message in self.processes[name].begin_tick(tick):
                outbox.append((name, dest, message))
        for sender, receiver, message in deliveries:
            if self._blocked(sender, receiver):
                continue
            for dest, reply in self.processes[receiver].receive(
                message, tick
            ):
                outbox.append((receiver, dest, reply))
        for name in self._live_routers():
            self.processes[name].finish_tick(tick)
        self._in_flight = outbox

    def run_until_converged(self, limit: int) -> int:
        """Tick until :meth:`converged`; returns ticks used.

        Raises :class:`ControlConvergenceError` past ``limit`` — a
        bounded loop by construction.
        """
        for used in range(1, limit + 1):
            self.tick()
            if self.converged():
                return used
        raise ControlConvergenceError(
            "no convergence within %d ticks" % limit
        )

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def routes(self) -> Dict[str, Dict[Prefix, str]]:
        """Per-live-router prefix routing tables (the clue-path feed)."""
        return {
            name: dict(self.processes[name].routes)
            for name in self._live_routers()
        }

    def next_hop_tables(self) -> Dict[str, Dict[str, str]]:
        """Per-live-router SPF next-hop tables (for certification)."""
        return {
            name: dict(self.processes[name].next_hops)
            for name in self._live_routers()
        }

    def live_topology(self) -> Dict[str, Dict[str, int]]:
        """The physical truth: up routers, up links, current costs."""
        live: Dict[str, Dict[str, int]] = {}
        for name in self._live_routers():
            live[name] = {}
            for neighbor in sorted(self.graph.neighbors(name)):
                if neighbor in self.down_routers:
                    continue
                if frozenset((name, neighbor)) in self.down_links:
                    continue
                live[name][neighbor] = int(
                    self.graph.edges[name, neighbor].get("cost", 1)
                )
        return live

    def converged(self) -> bool:
        """Quiescence + correctness of every live router's view.

        Converged means: every live physical link is a FULL adjacency
        on both ends, no LSA awaits an ack, no non-hello message is in
        flight, all live LSDBs carry an identical digest, and the
        topology that digest encodes matches the live physical topology.
        """
        live = self.live_topology()
        names = sorted(live)
        if not names:
            return True
        for name in names:
            process = self.processes[name]
            for neighbor in live[name]:
                if process.adjacencies[neighbor].state != STATE_FULL:
                    return False
            if process.flooding.unacked_count() > 0:
                return False
            if process.dirty:
                return False
        for sender, receiver, message in self._in_flight:
            if isinstance(message, Hello):
                continue
            if not self._blocked(sender, receiver):
                return False
        digests = {self.processes[name].lsdb.digest() for name in names}
        if len(digests) != 1:
            return False
        view = self.processes[names[0]].lsdb.topology()
        seen_edges = {
            frozenset((a, b)): cost
            for a, neighbors in view.items()
            for b, cost in neighbors.items()
        }
        live_edges = {
            frozenset((a, b)): cost
            for a, neighbors in live.items()
            for b, cost in neighbors.items()
        }
        return seen_edges == live_edges

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _live_routers(self) -> List[str]:
        return [
            name
            for name in sorted(self.processes)
            if name not in self.down_routers
        ]

    def _blocked(self, sender: str, receiver: str) -> bool:
        if sender in self.down_routers or receiver in self.down_routers:
            return True
        return frozenset((sender, receiver)) in self.down_links
