"""The link-state database: one synchronised copy per router.

Stores the freshest known :class:`~repro.control.lsa.RouterLSA` per
origin, ages entries toward a max-age purge, and derives the weighted
topology that SPF runs over.  An edge exists only when **both**
endpoints advertise it (bidirectional agreement) — this is what makes
a crashed router's ghost LSA harmless: its neighbours re-originate
without the dead links, so the ghost's edges drop out of the derived
topology even though the ghost itself lingers until max-age.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.control.lsa import RouterLSA


class LinkStateDatabase:
    """Freshest-LSA-per-origin store with aging and topology derivation."""

    __slots__ = ("_lsas", "_installed_at")

    def __init__(self):
        self._lsas: Dict[str, RouterLSA] = {}
        self._installed_at: Dict[str, int] = {}

    def get(self, origin: str) -> Optional[RouterLSA]:
        return self._lsas.get(origin)

    def origins(self) -> List[str]:
        return sorted(self._lsas)

    def lsas(self) -> List[RouterLSA]:
        return [self._lsas[origin] for origin in sorted(self._lsas)]

    def __len__(self) -> int:
        return len(self._lsas)

    def install(self, lsa: RouterLSA, tick: int) -> None:
        """Unconditionally install (used for self-origination)."""
        self._lsas[lsa.origin] = lsa
        self._installed_at[lsa.origin] = tick

    def consider(self, lsa: RouterLSA, tick: int) -> bool:
        """Install ``lsa`` if strictly newer than the held copy.

        Returns True when installed (the caller should flood onward) and
        False for duplicates/stale copies (ack, but do not re-flood).
        """
        held = self._lsas.get(lsa.origin)
        if held is not None and not lsa.is_newer_than(held):
            return False
        self.install(lsa, tick)
        return True

    def newer_than(self, lsa: RouterLSA) -> Optional[RouterLSA]:
        """Our strictly-newer copy for the same origin, if any."""
        held = self._lsas.get(lsa.origin)
        if held is not None and held.is_newer_than(lsa):
            return held
        return None

    def age_out(
        self, tick: int, max_age: int, keep: Iterable[str] = ()
    ) -> List[str]:
        """Purge LSAs installed ``max_age`` or more ticks ago.

        Origins in ``keep`` (a router always keeps its own LSA — it
        refreshes by re-origination, not by aging) are exempt.  Returns
        the purged origins, sorted.
        """
        protected = frozenset(keep)
        purged = sorted(
            origin
            for origin, installed in self._installed_at.items()
            if origin not in protected and tick - installed >= max_age
        )
        for origin in purged:
            del self._lsas[origin]
            del self._installed_at[origin]
        return purged

    def digest(self) -> Tuple:
        """A comparable fingerprint: databases agree iff digests agree."""
        return tuple(
            (lsa.origin, lsa.seq, lsa.links, lsa.prefixes)
            for lsa in self.lsas()
        )

    def topology(self) -> Dict[str, Dict[str, int]]:
        """The bidirectionally-agreed weighted graph, as adjacency dicts.

        Every origin appears as a node; an edge ``u — v`` appears only
        when u's LSA lists v *and* v's LSA lists u, with the edge cost
        being the max of the two advertised directions (a safe merge
        while a cost change is still propagating).
        """
        advertised: Dict[str, Dict[str, int]] = {
            origin: dict(lsa.links) for origin, lsa in self._lsas.items()
        }
        graph: Dict[str, Dict[str, int]] = {
            origin: {} for origin in advertised
        }
        for origin, links in advertised.items():
            for neighbor, cost in links.items():
                back = advertised.get(neighbor, {}).get(origin)
                if back is not None:
                    graph[origin][neighbor] = max(cost, back)
        return graph
