"""Link-state advertisements and the control-plane message vocabulary.

A :class:`RouterLSA` is the unit of link-state knowledge: one router's
view of itself — which adjacencies it considers fully up (with their
costs) and which prefixes it originates.  Freshness is a sequence
number, OSPF-style: a higher ``seq`` for the same origin always
replaces a lower one, and content is never compared across equal
sequence numbers (the originator bumps ``seq`` on every change, so
equal-seq copies are identical by construction).

Three message types cross a link, all delivered with one tick of
latency by the :class:`~repro.control.plane.ControlPlane` wire:

* :class:`Hello` — periodic liveness, carrying the names of the
  neighbours the sender currently hears (the receiver learns two-way
  connectivity by finding itself in that list);
* :class:`LsUpdate` — a batch of LSAs being flooded; reliable, because
  the sender retransmits until each LSA is acknowledged;
* :class:`LsAck` — acknowledges ``(origin, seq)`` pairs, stopping the
  matching retransmissions.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.addressing import Prefix

#: Ticks after which an un-refreshed LSA is purged from an LSDB.  High
#: enough that no scenario in this repo ages a live LSA out; the purge
#: path exists (and is tested) for protocol completeness.
DEFAULT_MAX_AGE = 4096


def _prefix_key(prefix: Prefix) -> Tuple[int, int]:
    return (prefix.length, prefix.bits)


class RouterLSA:
    """One router's advertised state at one sequence number."""

    __slots__ = ("origin", "seq", "links", "prefixes")

    def __init__(
        self,
        origin: str,
        seq: int,
        links: Iterable[Tuple[str, int]],
        prefixes: Iterable[Prefix],
    ):
        if seq < 1:
            raise ValueError("LSA sequence numbers start at 1")
        self.origin = origin
        self.seq = seq
        #: ``(neighbor, cost)`` for every adjacency the origin considers
        #: FULL, sorted for deterministic digests and floods.
        self.links: Tuple[Tuple[str, int], ...] = tuple(sorted(links))
        self.prefixes: Tuple[Prefix, ...] = tuple(
            sorted(prefixes, key=_prefix_key)
        )

    def key(self) -> Tuple[str, int]:
        """The retransmission/ack identity: ``(origin, seq)``."""
        return (self.origin, self.seq)

    def is_newer_than(self, other: "RouterLSA") -> bool:
        """Freshness is the sequence number alone (same-origin only)."""
        return self.seq > other.seq

    def neighbor_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _cost in self.links)

    def __repr__(self) -> str:
        return "RouterLSA(%r, seq=%d, %d links, %d prefixes)" % (
            self.origin,
            self.seq,
            len(self.links),
            len(self.prefixes),
        )


class Hello:
    """Periodic liveness, carrying the sender's currently-heard neighbours."""

    __slots__ = ("sender", "seen")

    def __init__(self, sender: str, seen: Iterable[str]):
        self.sender = sender
        self.seen: Tuple[str, ...] = tuple(sorted(seen))

    def __repr__(self) -> str:
        return "Hello(%r, seen=%s)" % (self.sender, list(self.seen))


class LsUpdate:
    """A flooded batch of LSAs (initial flood or retransmission)."""

    __slots__ = ("sender", "lsas")

    def __init__(self, sender: str, lsas: Iterable[RouterLSA]):
        self.sender = sender
        self.lsas: Tuple[RouterLSA, ...] = tuple(lsas)

    def __repr__(self) -> str:
        return "LsUpdate(%r, %d lsas)" % (self.sender, len(self.lsas))


class LsAck:
    """Acknowledges ``(origin, seq)`` pairs from a received LsUpdate."""

    __slots__ = ("sender", "keys")

    def __init__(self, sender: str, keys: Iterable[Tuple[str, int]]):
        self.sender = sender
        self.keys: Tuple[Tuple[str, int], ...] = tuple(keys)

    def __repr__(self) -> str:
        return "LsAck(%r, %d keys)" % (self.sender, len(self.keys))
