"""Trie substrate: binary trie, Patricia trie, and two-trie overlays."""

from repro.trie.binary_trie import BinaryTrie
from repro.trie.node import TrieNode
from repro.trie.overlay import OverlayNode, TrieOverlay
from repro.trie.patricia import PatriciaTrie

__all__ = [
    "BinaryTrie",
    "OverlayNode",
    "PatriciaTrie",
    "TrieNode",
    "TrieOverlay",
]
