"""Trie vertices.

Both the plain binary trie and the Patricia trie use the same vertex type:
a vertex knows the full prefix it represents (the paper's "binary string
associated with a vertex"), whether it is *marked* (represents a prefix in
the forwarding table) and, when marked, the forwarding decision (next hop)
stored with the prefix.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.addressing import Prefix


class TrieNode:
    """A vertex of a (possibly path-compressed) binary trie."""

    __slots__ = ("prefix", "marked", "next_hop", "children", "payload")

    def __init__(self, prefix: Prefix):
        self.prefix = prefix
        self.marked = False
        self.next_hop: Optional[object] = None
        self.children: Dict[int, "TrieNode"] = {}
        #: Scratch slot for per-vertex annotations (e.g. the Advance method's
        #: per-neighbour "stop here" booleans, stored as a dict).
        self.payload: Optional[dict] = None

    def child(self, bit: int) -> Optional["TrieNode"]:
        """The child reached over edge ``bit``, or None."""
        return self.children.get(bit)

    def is_leaf(self) -> bool:
        """True if the vertex has no children."""
        return not self.children

    def mark(self, next_hop: object) -> None:
        """Mark the vertex as representing a forwarding-table prefix."""
        self.marked = True
        self.next_hop = next_hop

    def unmark(self) -> None:
        """Remove the prefix represented by this vertex."""
        self.marked = False
        self.next_hop = None

    def descendants(self) -> Iterator["TrieNode"]:
        """All vertices strictly below this one, pre-order."""
        stack = [child for child in self.children.values()]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def subtree(self) -> Iterator["TrieNode"]:
        """This vertex and all its descendants, pre-order."""
        yield self
        for node in self.descendants():
            yield node

    def __repr__(self) -> str:
        flag = "*" if self.marked else ""
        return "TrieNode(%s%s)" % (self.prefix.bitstring() or "<root>", flag)
