"""The plain bit-by-bit binary trie ("Regular" in the paper).

This is the classical radix-trie forwarding structure of §3.1: every vertex
represents the binary string spelled by the edges from the root, marked
vertices carry forwarding-table prefixes, and unmarked vertices with no
marked descendants are pruned.  Longest-prefix matching walks the
destination address bit by bit.

The trie is the reference structure for the whole reproduction: the clue
methods, the overlay analysis (Claim 1) and the Patricia compression are all
defined relative to it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.addressing import Address, Prefix
from repro.trie.node import TrieNode


class BinaryTrie:
    """A binary trie over prefixes of one address family."""

    __slots__ = ("width", "root", "_size")

    def __init__(self, width: int = 32):
        self.width = width
        self.root = TrieNode(Prefix.root(width))
        self._size = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_prefixes(
        cls,
        entries: Iterable[Tuple[Prefix, object]],
        width: int = 32,
    ) -> "BinaryTrie":
        """Build a trie from ``(prefix, next_hop)`` pairs."""
        trie = cls(width)
        for prefix, next_hop in entries:
            trie.insert(prefix, next_hop)
        return trie

    def insert(self, prefix: Prefix, next_hop: object) -> TrieNode:
        """Insert (or update) a prefix; returns its vertex."""
        node = self.root
        for index in range(prefix.length):
            bit = prefix.bit(index)
            child = node.children.get(bit)
            if child is None:
                child = TrieNode(prefix.truncate(index + 1))
                node.children[bit] = child
            node = child
        if not node.marked:
            self._size += 1
        node.mark(next_hop)
        return node

    def remove(self, prefix: Prefix) -> bool:
        """Remove a prefix; prunes now-useless vertices.  True if found."""
        path: List[TrieNode] = [self.root]
        node = self.root
        for index in range(prefix.length):
            node = node.children.get(prefix.bit(index))
            if node is None:
                return False
            path.append(node)
        if not node.marked:
            return False
        node.unmark()
        self._size -= 1
        # Prune unmarked leaves bottom-up so the invariant "all leaves are
        # marked" (§3.1) is preserved.
        for parent, child in zip(reversed(path[:-1]), reversed(path[1:])):
            if child.marked or child.children:
                break
            bit = child.prefix.bit(child.prefix.length - 1)
            del parent.children[bit]
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def find_node(self, prefix: Prefix) -> Optional[TrieNode]:
        """The vertex for ``prefix`` if it exists in the trie."""
        node = self.root
        for index in range(prefix.length):
            node = node.children.get(prefix.bit(index))
            if node is None:
                return None
        return node

    def contains(self, prefix: Prefix) -> bool:
        """True if ``prefix`` is a marked vertex (a table entry)."""
        node = self.find_node(prefix)
        return node is not None and node.marked

    def next_hop_of(self, prefix: Prefix) -> Optional[object]:
        """The next hop stored with a marked prefix, else None."""
        node = self.find_node(prefix)
        if node is not None and node.marked:
            return node.next_hop
        return None

    def longest_match(self, address: Address) -> Optional[TrieNode]:
        """The vertex of the longest marked prefix matching ``address``."""
        node = self.root
        best = node if node.marked else None
        for index in range(self.width):
            node = node.children.get(address.bit(index))
            if node is None:
                break
            if node.marked:
                best = node
        return best

    def best_prefix(self, address: Address) -> Optional[Prefix]:
        """The longest marked prefix matching ``address`` (or None)."""
        node = self.longest_match(address)
        return node.prefix if node else None

    def least_marked_ancestor(
        self, prefix: Prefix, include_self: bool = True
    ) -> Optional[TrieNode]:
        """Deepest marked vertex on the root-to-``prefix`` path.

        This is the paper's "least ancestor of *s* in the trie which is also
        a prefix" — the value pre-computed into a clue entry's FD field.  The
        walk follows the bits of ``prefix`` as far as the trie allows, so it
        also works when ``prefix`` itself is not a vertex of the trie
        (Advance method, case 1).
        """
        node = self.root
        best = node if node.marked else None
        limit = prefix.length if include_self else prefix.length - 1
        for index in range(max(limit, 0)):
            node = node.children.get(prefix.bit(index))
            if node is None:
                break
            if node.marked:
                best = node
        return best

    def marked_in_subtree(self, prefix: Prefix) -> Iterator[TrieNode]:
        """All marked vertices at or below ``prefix``."""
        top = self.find_node(prefix)
        if top is None:
            return
        for node in top.subtree():
            if node.marked:
                yield node

    def has_marked_descendant(self, prefix: Prefix) -> bool:
        """True if a marked vertex lies strictly below ``prefix``."""
        top = self.find_node(prefix)
        if top is None:
            return False
        return any(node.marked for node in top.descendants())

    # ------------------------------------------------------------------
    # iteration / stats
    # ------------------------------------------------------------------
    def prefixes(self) -> Iterator[Prefix]:
        """All marked prefixes, pre-order."""
        for node in self.root.subtree():
            if node.marked:
                yield node.prefix

    def entries(self) -> Iterator[Tuple[Prefix, object]]:
        """All ``(prefix, next_hop)`` pairs, pre-order."""
        for node in self.root.subtree():
            if node.marked:
                yield node.prefix, node.next_hop

    def nodes(self) -> Iterator[TrieNode]:
        """All vertices, pre-order."""
        return self.root.subtree()

    def node_count(self) -> int:
        """Total number of vertices (marked and unmarked)."""
        return sum(1 for _ in self.root.subtree())

    def depth_histogram(self) -> Dict[int, int]:
        """Count of marked prefixes per prefix length."""
        histogram: Dict[int, int] = {}
        for prefix in self.prefixes():
            histogram[prefix.length] = histogram.get(prefix.length, 0) + 1
        return histogram

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        return self.contains(prefix)

    def __repr__(self) -> str:
        return "BinaryTrie(%d prefixes, width=%d)" % (self._size, self.width)
