"""Overlay of two routers' tries and the paper's Claim 1 machinery.

The Advance method (§3.1.2) pre-computes, for every clue ``s`` that router
R1 may send to router R2, whether a longer match than ``s`` can possibly
exist at R2.  The decision procedure is Claim 1:

    If on any path going down from ``s`` in R2's trie we encounter a prefix
    of R1 before (or at the same vertex as) the first prefix of R2, then no
    prefix of the destination longer than ``s`` can be found at R2.

Clues violating Claim 1 are *problematic* (Table 2 of the paper); only for
those must R2 ever resume the search.  The set of prefixes the resumed
search can still return is Condition C1 / Definition 1:

    P(s, R1) = { p marked in t2 : p strictly extends s and no vertex on the
                 path (s, p] is marked in t1 }

This module builds the union trie of the two routers' tries once and
answers Claim 1, ``P(s, R1)``, per-vertex stop booleans (for the Patricia
adaptation of §4) and Table 2/3 style statistics in linear passes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.addressing import Prefix
from repro.trie.binary_trie import BinaryTrie


class OverlayNode:
    """A vertex of the union of two tries."""

    __slots__ = ("prefix", "marked1", "marked2", "children", "unclaimed")

    def __init__(self, prefix: Prefix):
        self.prefix = prefix
        #: marked in the *sender*'s trie t1
        self.marked1 = False
        #: marked in the *receiver*'s trie t2
        self.marked2 = False
        self.children: Dict[int, "OverlayNode"] = {}
        #: True if a t2 prefix is reachable at-or-below this vertex without
        #: first crossing a t1 prefix (memoised bottom-up).
        self.unclaimed = False

    def subtree(self) -> Iterator["OverlayNode"]:
        """This vertex and all its descendants, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def __repr__(self) -> str:
        tags = ("1" if self.marked1 else "") + ("2" if self.marked2 else "")
        return "OverlayNode(%s%s)" % (
            self.prefix.bitstring() or "<root>",
            ":" + tags if tags else "",
        )


class TrieOverlay:
    """Union trie of a sender trie t1 and a receiver trie t2."""

    def __init__(self, sender: BinaryTrie, receiver: BinaryTrie):
        if sender.width != receiver.width:
            raise ValueError("cannot overlay tries of different widths")
        self.width = sender.width
        self.sender = sender
        self.receiver = receiver
        self.root = self._merge(sender.root, receiver.root, Prefix.root(self.width))
        self._annotate(self.root)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _merge(self, node1, node2, prefix: Prefix) -> OverlayNode:
        merged = OverlayNode(prefix)
        merged.marked1 = bool(node1 is not None and node1.marked)
        merged.marked2 = bool(node2 is not None and node2.marked)
        for bit in (0, 1):
            child1 = node1.children.get(bit) if node1 is not None else None
            child2 = node2.children.get(bit) if node2 is not None else None
            if child1 is None and child2 is None:
                continue
            merged.children[bit] = self._merge(child1, child2, prefix.child(bit))
        return merged

    def _annotate(self, node: OverlayNode) -> None:
        """Memoise the "unclaimed t2 prefix below" predicate, bottom-up.

        Implemented iteratively (post-order over an explicit stack) because
        overlays of paper-sized tables are ~30 levels deep per branch but
        recursion over hundreds of thousands of vertices is wasteful.
        """
        order: List[OverlayNode] = list(node.subtree())
        for vertex in reversed(order):
            if vertex.marked1:
                vertex.unclaimed = False
            elif vertex.marked2:
                vertex.unclaimed = True
            else:
                vertex.unclaimed = any(
                    child.unclaimed for child in vertex.children.values()
                )

    # ------------------------------------------------------------------
    # incremental updates (route changes, §3.4)
    # ------------------------------------------------------------------
    def _find_or_create(self, prefix: Prefix) -> OverlayNode:
        node = self.root
        for index in range(prefix.length):
            bit = prefix.bit(index)
            child = node.children.get(bit)
            if child is None:
                child = OverlayNode(prefix.truncate(index + 1))
                node.children[bit] = child
            node = child
        return node

    def _reannotate_upwards(self, prefix: Prefix) -> None:
        """Recompute ``unclaimed`` from ``prefix`` up to the root.

        A mark change at a vertex can only alter the memoised predicate on
        the vertex itself and its ancestors; the walk stops early once a
        value is unchanged (the usual dominator argument).
        """
        path: List[OverlayNode] = [self.root]
        node = self.root
        for index in range(prefix.length):
            node = node.children.get(prefix.bit(index))
            if node is None:
                break
            path.append(node)
        for vertex in reversed(path):
            if vertex.marked1:
                fresh = False
            elif vertex.marked2:
                fresh = True
            else:
                fresh = any(child.unclaimed for child in vertex.children.values())
            if fresh == vertex.unclaimed and vertex is not path[-1]:
                return
            vertex.unclaimed = fresh

    def set_receiver_mark(self, prefix: Prefix, marked: bool) -> None:
        """Record that the receiver gained/lost ``prefix`` (marked2)."""
        node = self._find_or_create(prefix)
        if node.marked2 == marked:
            return
        node.marked2 = marked
        self._reannotate_upwards(prefix)

    def set_sender_mark(self, prefix: Prefix, marked: bool) -> None:
        """Record that the sender gained/lost ``prefix`` (marked1)."""
        node = self._find_or_create(prefix)
        if node.marked1 == marked:
            return
        node.marked1 = marked
        # marked1 changes flip the subtree *cut*, not just the vertex, but
        # only the vertex's own memo and its ancestors' can change value —
        # the children's memos never read their ancestors.
        self._reannotate_upwards(prefix)

    # ------------------------------------------------------------------
    # vertex lookup
    # ------------------------------------------------------------------
    def find(self, prefix: Prefix) -> Optional[OverlayNode]:
        """The overlay vertex for ``prefix``, or None."""
        node = self.root
        for index in range(prefix.length):
            node = node.children.get(prefix.bit(index))
            if node is None:
                return None
        return node

    # ------------------------------------------------------------------
    # Claim 1 and the potential set
    # ------------------------------------------------------------------
    def claim1_holds(self, clue: Prefix) -> bool:
        """True if Claim 1 guarantees no longer match exists below ``clue``.

        A clue absent from the overlay (hence from t2) trivially satisfies
        the claim: case 1 of the Advance method resolves it by the FD field
        alone.
        """
        node = self.find(clue)
        if node is None:
            return True
        return not any(child.unclaimed for child in node.children.values())

    def is_problematic(self, clue: Prefix) -> bool:
        """True if the clue violates Claim 1 (search must continue)."""
        return not self.claim1_holds(clue)

    def potential_set(self, clue: Prefix) -> List[Prefix]:
        """``P(clue, R1)`` — prefixes a resumed search could still return.

        Per Definition 1 these are the t2 prefixes strictly extending the
        clue with no t1 prefix anywhere on the path from the clue (the t2
        prefix itself included: had it been in t1 too, R1 would have found
        it instead of the clue).
        """
        top = self.find(clue)
        if top is None:
            return []
        found: List[Prefix] = []
        stack = [child for child in top.children.values()]
        while stack:
            node = stack.pop()
            if node.marked1:
                continue
            if node.marked2:
                found.append(node.prefix)
            stack.extend(node.children.values())
        found.sort(key=lambda p: (p.length, p.bits))
        return found

    def stop_booleans(self) -> Dict[Prefix, bool]:
        """Per-vertex "stop the search here" booleans (§4, Patricia).

        For every vertex of the overlay the boolean is True when Claim 1
        holds at that vertex, i.e. a walk arriving there can immediately
        settle for the best marked prefix seen so far.
        """
        stops: Dict[Prefix, bool] = {}
        for node in self.root.subtree():
            stops[node.prefix] = not any(
                child.unclaimed for child in node.children.values()
            )
        return stops

    # ------------------------------------------------------------------
    # statistics (Tables 2 and 3)
    # ------------------------------------------------------------------
    def equal_prefixes(self) -> int:
        """Number of prefixes marked in both tries (Table 3)."""
        return sum(
            1 for node in self.root.subtree() if node.marked1 and node.marked2
        )

    def problematic_clues(self, clues: Optional[Iterator[Prefix]] = None) -> List[Prefix]:
        """Clues for which Claim 1 fails (Table 2).

        ``clues`` defaults to every prefix of the sender's trie, i.e. every
        clue R1 could possibly emit.
        """
        if clues is None:
            clues = self.sender.prefixes()
        return [clue for clue in clues if self.is_problematic(clue)]

    def statistics(self) -> Dict[str, int]:
        """Aggregate pair statistics used by Tables 1-3."""
        problematic = len(self.problematic_clues())
        return {
            "sender_prefixes": len(self.sender),
            "receiver_prefixes": len(self.receiver),
            "equal_prefixes": self.equal_prefixes(),
            "problematic_clues": problematic,
        }

    def __repr__(self) -> str:
        return "TrieOverlay(%d+%d prefixes)" % (
            len(self.sender),
            len(self.receiver),
        )
