"""Path-compressed binary trie (Patricia), per §3.1 and §4 of the paper.

In the Patricia representation every internal unmarked vertex that has only
one child is contracted, so any internal vertex is either marked or has two
children (the root is exempt).  Lookup walks the compressed structure, one
memory reference per vertex visited, which is the cost model the paper's
"Patricia" rows use.

The structure supports dynamic insertion (with edge splitting) and removal
(with re-contraction), exact location of arbitrary bit strings — needed to
resume a search from a clue vertex that may sit in the middle of a
compressed edge — and address walks usable both from the root ("common"
methods) and from a clue ("Simple"/"Advance" methods).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.addressing import Address, Prefix
from repro.trie.node import TrieNode


class PatriciaTrie:
    """A path-compressed trie over prefixes of one address family."""

    def __init__(self, width: int = 32):
        self.width = width
        self.root = TrieNode(Prefix.root(width))
        self._size = 0

    @classmethod
    def from_prefixes(
        cls,
        entries: Iterable[Tuple[Prefix, object]],
        width: int = 32,
    ) -> "PatriciaTrie":
        """Build a Patricia trie from ``(prefix, next_hop)`` pairs."""
        trie = cls(width)
        for prefix, next_hop in entries:
            trie.insert(prefix, next_hop)
        return trie

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: object) -> TrieNode:
        """Insert (or update) a prefix; returns its vertex."""
        node = self.root
        # repro: noqa[RC106] -- each pass descends strictly; depth <= prefix.length
        while True:
            if node.prefix == prefix:
                if not node.marked:
                    self._size += 1
                node.mark(next_hop)
                return node
            bit = prefix.bit(node.prefix.length)
            child = node.children.get(bit)
            if child is None:
                leaf = TrieNode(prefix)
                leaf.mark(next_hop)
                node.children[bit] = leaf
                self._size += 1
                return leaf
            common = prefix.common_with(child.prefix)
            if common == child.prefix:
                node = child
                continue
            if common == prefix:
                # ``prefix`` sits on the compressed edge above ``child``.
                middle = TrieNode(prefix)
                middle.mark(next_hop)
                middle.children[child.prefix.bit(prefix.length)] = child
                node.children[bit] = middle
                self._size += 1
                return middle
            # Split the edge at the longest common prefix.
            fork = TrieNode(common)
            leaf = TrieNode(prefix)
            leaf.mark(next_hop)
            fork.children[child.prefix.bit(common.length)] = child
            fork.children[prefix.bit(common.length)] = leaf
            node.children[bit] = fork
            self._size += 1
            return leaf

    def remove(self, prefix: Prefix) -> bool:
        """Remove a prefix, re-contracting one-way vertices.  True if found."""
        path: List[TrieNode] = []
        node = self.root
        while node.prefix != prefix:
            if not node.prefix.is_prefix_of(prefix):
                return False
            if node.prefix.length >= prefix.length:
                return False
            child = node.children.get(prefix.bit(node.prefix.length))
            if child is None or not child.prefix.is_prefix_of(prefix):
                return False
            path.append(node)
            node = child
        if not node.marked:
            return False
        node.unmark()
        self._size -= 1
        self._contract(path, node)
        return True

    def _contract(self, path: List[TrieNode], node: TrieNode) -> None:
        """Restore the Patricia invariant after ``node`` was unmarked."""
        if node is self.root:
            return
        parent = path[-1]
        bit = node.prefix.bit(parent.prefix.length)
        if not node.children:
            del parent.children[bit]
            # The parent may now be an unmarked one-way internal vertex.
            if (
                parent is not self.root
                and not parent.marked
                and len(parent.children) == 1
            ):
                (orphan,) = parent.children.values()
                grand = path[-2]
                grand_bit = parent.prefix.bit(grand.prefix.length)
                grand.children[grand_bit] = orphan
        elif len(node.children) == 1:
            (child,) = node.children.values()
            parent.children[bit] = child

    # ------------------------------------------------------------------
    # location
    # ------------------------------------------------------------------
    def find_node(self, prefix: Prefix) -> Optional[TrieNode]:
        """The vertex whose prefix is exactly ``prefix``, if present."""
        node = self.root
        # repro: noqa[RC106] -- each pass descends strictly; depth <= prefix.length
        while True:
            if node.prefix == prefix:
                return node
            if node.prefix.length >= prefix.length:
                return None
            child = node.children.get(prefix.bit(node.prefix.length))
            if child is None or not child.prefix.is_prefix_of(prefix):
                if child is not None and prefix.is_prefix_of(child.prefix):
                    return None
                return None
            node = child

    def locate(self, prefix: Prefix) -> Tuple[TrieNode, Optional[TrieNode]]:
        """Locate ``prefix`` in the compressed structure.

        Returns ``(below, above)`` where ``below`` is the deepest vertex
        whose prefix is a prefix of (or equals) ``prefix`` and ``above`` is
        the vertex hanging under ``below`` whose prefix *extends* ``prefix``
        (i.e. ``prefix`` sits on the compressed edge ``below``→``above``),
        or None when no such vertex exists.  When ``prefix`` is an exact
        vertex, ``below.prefix == prefix`` and ``above`` is None.
        """
        node = self.root
        # repro: noqa[RC106] -- each pass descends strictly; depth <= prefix.length
        while True:
            if node.prefix == prefix:
                return node, None
            child = node.children.get(prefix.bit(node.prefix.length))
            if child is None:
                return node, None
            if child.prefix.is_prefix_of(prefix):
                node = child
                continue
            if prefix.is_prefix_of(child.prefix):
                return node, child
            return node, None

    def contains(self, prefix: Prefix) -> bool:
        """True if ``prefix`` is a marked vertex."""
        node = self.find_node(prefix)
        return node is not None and node.marked

    # ------------------------------------------------------------------
    # walks
    # ------------------------------------------------------------------
    def walk(self, address: Address, start: Optional[TrieNode] = None) -> Iterator[TrieNode]:
        """Vertices visited by a lookup of ``address`` from ``start``.

        Every yielded vertex costs one memory reference; the final yielded
        vertex may fail the prefix check (the classical Patricia overshoot)
        and callers must test ``node.prefix.matches(address)`` before
        treating it as a match.
        """
        node = self.root if start is None else start
        yield node
        while node.prefix.matches(address):
            if node.prefix.length >= self.width:
                return
            child = node.children.get(address.bit(node.prefix.length))
            if child is None:
                return
            yield child
            node = child

    def longest_match(self, address: Address) -> Optional[TrieNode]:
        """The vertex of the longest marked prefix matching ``address``."""
        best = None
        for node in self.walk(address):
            if node.marked and node.prefix.matches(address):
                best = node
        return best

    def best_prefix(self, address: Address) -> Optional[Prefix]:
        """The longest marked prefix matching ``address`` (or None)."""
        node = self.longest_match(address)
        return node.prefix if node else None

    # ------------------------------------------------------------------
    # iteration / stats
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[TrieNode]:
        """All vertices, pre-order."""
        return self.root.subtree()

    def prefixes(self) -> Iterator[Prefix]:
        """All marked prefixes, pre-order."""
        for node in self.nodes():
            if node.marked:
                yield node.prefix

    def entries(self) -> Iterator[Tuple[Prefix, object]]:
        """All ``(prefix, next_hop)`` pairs, pre-order."""
        for node in self.nodes():
            if node.marked:
                yield node.prefix, node.next_hop

    def node_count(self) -> int:
        """Total number of vertices in the compressed structure."""
        return sum(1 for _ in self.nodes())

    def check_invariant(self) -> bool:
        """Verify the Patricia contraction invariant on every vertex."""
        for node in self.nodes():
            if node is self.root:
                continue
            if not node.marked and len(node.children) == 1:
                return False
            if not node.marked and not node.children:
                return False
        return True

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        return self.contains(prefix)

    def __repr__(self) -> str:
        return "PatriciaTrie(%d prefixes, width=%d)" % (self._size, self.width)
