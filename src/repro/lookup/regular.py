""""Regular" lookup: bit-by-bit scan of the binary trie.

This is the paper's baseline (1): walk the destination address bit by bit
down the radix trie, remembering the last marked vertex.  Worst case is
O(W) memory references (W = 32 for IPv4); the empirical average on
backbone-sized tables is in the low twenties, which is what makes the
clue methods' ≈1 reference such a large win.
"""

from __future__ import annotations

from typing import Optional

from repro.addressing import Address
from repro.lookup.base import LookupAlgorithm
from repro.lookup.counters import LookupResult, MemoryCounter
from repro.trie.binary_trie import BinaryTrie


class RegularTrieLookup(LookupAlgorithm):
    """Bit-by-bit binary-trie lookup (one reference per vertex visited)."""

    name = "regular"

    def _build(self) -> None:
        self.trie = BinaryTrie(self.width)
        for prefix, next_hop in self._entries:
            self.trie.insert(prefix, next_hop)

    def lookup(
        self, address: Address, counter: Optional[MemoryCounter] = None
    ) -> LookupResult:
        counter = counter if counter is not None else MemoryCounter()
        node = self.trie.root
        counter.touch()
        best = node if node.marked else None
        for index in range(self.width):
            node = node.children.get(address.bit(index))
            if node is None:
                break
            counter.touch()
            if node.marked:
                best = node
        if best is None:
            return self._result(None, None, counter)
        return self._result(best.prefix, best.next_hop, counter)
