"""Stride-k multibit trie — the "different jumps" technique ([24] in §2).

Controlled prefix expansion: prefixes are expanded to the next multiple
of the stride and stored in nodes of 2^stride slots, so a lookup walks
``ceil(W / stride)`` nodes at most — one memory reference per node, the
classical time/space trade against the bit-by-bit trie.

This is the reproduction's sixth baseline (the paper's §4 notes the clue
method composes with "one of the techniques suggested in [26, 11, 24]");
:class:`MultibitContinuation` is the corresponding restricted search that
resumes below a clue.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.addressing import Address, Prefix
from repro.lookup.base import LookupAlgorithm, TableEntries
from repro.lookup.counters import LookupResult, MemoryCounter
from repro.lookup.restricted import Continuation, Match

DEFAULT_STRIDE = 4


class _MultibitNode:
    """One node: 2^stride slots, each holding a BMP and a child pointer."""

    __slots__ = ("bmp", "children")

    def __init__(self, fanout: int):
        #: per-slot best matching (prefix, next_hop) seen up to this node.
        self.bmp: List[Optional[Tuple[Prefix, object]]] = [None] * fanout
        self.children: List[Optional["_MultibitNode"]] = [None] * fanout


class MultibitTrie:
    """A stride-k expanded trie over one forwarding table."""

    def __init__(self, stride: int = DEFAULT_STRIDE, width: int = 32):
        if stride < 1:
            raise ValueError("stride must be at least 1")
        if width % stride:
            raise ValueError(
                "stride %d does not divide the address width %d" % (stride, width)
            )
        self.stride = stride
        self.width = width
        self.fanout = 1 << stride
        self.root = _MultibitNode(self.fanout)
        self._size = 0

    def insert(self, prefix: Prefix, next_hop: object) -> None:
        """Insert a prefix, expanding it within its final node."""
        node = self.root
        depth = 0
        while prefix.length - depth > self.stride:
            chunk = (prefix.bits >> (prefix.length - depth - self.stride)) & (
                self.fanout - 1
            )
            child = node.children[chunk]
            if child is None:
                child = _MultibitNode(self.fanout)
                node.children[chunk] = child
            node = child
            depth += self.stride
        # Expand the remaining bits (possibly zero) across the node's slots.
        remaining = prefix.length - depth
        head = (prefix.bits & ((1 << remaining) - 1)) if remaining else 0
        free_bits = self.stride - remaining
        for filler in range(1 << free_bits):
            slot = (head << free_bits) | filler
            current = node.bmp[slot]
            if current is None or current[0].length <= prefix.length:
                node.bmp[slot] = (prefix, next_hop)
        self._size += 1

    def lookup_from(
        self,
        address: Address,
        counter: MemoryCounter,
        start: Optional[_MultibitNode] = None,
        start_depth: int = 0,
        best: Optional[Tuple[Prefix, object]] = None,
    ) -> Optional[Tuple[Prefix, object]]:
        """Walk from ``start`` (default root), one reference per node."""
        node = self.root if start is None else start
        depth = start_depth
        while node is not None and depth < self.width:
            counter.touch()
            chunk = address.leading_bits(depth + self.stride) & (self.fanout - 1)
            slot_best = node.bmp[chunk]
            if slot_best is not None:
                if best is None or slot_best[0].length > best[0].length:
                    best = slot_best
            node = node.children[chunk]
            depth += self.stride
        return best

    def node_at(self, prefix: Prefix) -> Optional[Tuple[_MultibitNode, int]]:
        """The node whose subtree covers ``prefix``, with its depth.

        Returns the deepest node at a stride boundary at or above the
        prefix; the continuation resumes the walk there.
        """
        node = self.root
        depth = 0
        while depth + self.stride <= prefix.length:
            chunk = (prefix.bits >> (prefix.length - depth - self.stride)) & (
                self.fanout - 1
            )
            child = node.children[chunk]
            if child is None:
                return None
            node = child
            depth += self.stride
        return node, depth

    def __len__(self) -> int:
        return self._size


class MultibitTrieLookup(LookupAlgorithm):
    """Stride-k multibit-trie lookup [24]."""

    name = "multibit"

    def __init__(self, entries: TableEntries, width: int = 32, stride: int = DEFAULT_STRIDE):
        self.stride = stride
        super().__init__(entries, width)

    def _build(self) -> None:
        self.trie = MultibitTrie(self.stride, self.width)
        for prefix, next_hop in self._entries:
            self.trie.insert(prefix, next_hop)

    def lookup(
        self, address: Address, counter: Optional[MemoryCounter] = None
    ) -> LookupResult:
        counter = counter if counter is not None else MemoryCounter()
        best = self.trie.lookup_from(address, counter)
        if best is None:
            return self._result(None, None, counter)
        return self._result(best[0], best[1], counter)


class MultibitContinuation(Continuation):
    """Resume a multibit walk below a clue (§4 adaptation of [24]).

    The walk restarts at the deepest stride-aligned node covering the
    clue; matches shorter than the clue are discarded (the FD field
    already covers them), so the continuation only reports strictly
    longer matches, like its siblings.
    """

    def __init__(self, trie: MultibitTrie, clue: Prefix):
        located = trie.node_at(clue)
        if located is None:
            raise ValueError("clue %s has no covering multibit node" % clue)
        self.trie = trie
        self.clue = clue
        self.node, self.depth = located

    def search(self, address: Address, counter: MemoryCounter) -> Match:
        best = self.trie.lookup_from(
            address, counter, start=self.node, start_depth=self.depth
        )
        if best is None or best[0].length <= self.clue.length:
            return None
        if not best[0].matches(address):
            return None
        return best
