"""Resuming a lookup below a clue — the §4 adaptations.

When a clue entry's Ptr field is non-empty the receiving router must search
for a match longer than the clue ``s``.  The paper shows how to adapt each
baseline to this *restricted* search:

* **trie / Patricia** — walk down from the clue vertex; with the Advance
  method every vertex carries a Boolean ("stop here") obtained by applying
  Claim 1 to that vertex, so the walk halts as soon as nothing better can
  exist.
* **binary / 6-way** — the candidate prefixes form the potential set
  ``P(s, R1)`` (Condition C1); when small it rides in the clue entry's
  cache line and costs *zero* extra references, otherwise a (B-way) binary
  search over its range segments runs as usual.
* **Log W** — a binary search over only the lengths present in the
  potential set, bounded by its min/max length.

A continuation returns ``None`` when nothing longer than the clue matches;
the caller then falls back to the entry's FD field.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from repro.addressing import Address, Prefix
from repro.lookup.binary_range import RangeTable
from repro.lookup.counters import CACHE_LINE_PREFIXES, MemoryCounter
from repro.lookup.logw import LengthTables
from repro.trie.binary_trie import BinaryTrie
from repro.trie.node import TrieNode
from repro.trie.patricia import PatriciaTrie

Match = Optional[Tuple[Prefix, object]]


class Continuation(abc.ABC):
    """A precomputed resumed-search object stored in a clue entry's Ptr."""

    __slots__ = ()

    @abc.abstractmethod
    def search(self, address: Address, counter: MemoryCounter) -> Match:
        """Look for a match longer than the clue; None if there is none."""


class TrieContinuation(Continuation):
    """Bit-by-bit walk below the clue vertex (Regular adaptation).

    ``stops`` is the Advance method's per-vertex Claim 1 Boolean map; the
    Simple method passes None and walks until the path runs out.
    """

    __slots__ = ("start", "width", "stops")

    def __init__(
        self,
        start: TrieNode,
        width: int,
        stops: Optional[Dict[Prefix, bool]] = None,
    ):
        self.start = start
        self.width = width
        self.stops = stops

    def search(self, address: Address, counter: MemoryCounter) -> Match:
        node = self.start
        best: Match = None
        for index in range(node.prefix.length, self.width):
            node = node.children.get(address.bit(index))
            if node is None:
                break
            counter.touch()
            if node.marked:
                best = (node.prefix, node.next_hop)
            if self.stops is not None and self.stops.get(node.prefix, False):
                break
        return best


class PatriciaContinuation(Continuation):
    """Compressed walk below the clue (Patricia adaptation).

    The clue may fall in the middle of a compressed edge; ``entry`` is then
    the vertex hanging below that edge and is charged as the first visited
    vertex.  When the clue is an exact vertex, ``entry`` is that vertex and
    is *not* charged (the clue entry's Ptr already holds its record).
    """

    __slots__ = ("entry", "entry_is_clue_vertex", "clue", "width", "stops")

    def __init__(
        self,
        entry: TrieNode,
        entry_is_clue_vertex: bool,
        clue: Prefix,
        width: int,
        stops: Optional[Dict[Prefix, bool]] = None,
    ):
        self.entry = entry
        self.entry_is_clue_vertex = entry_is_clue_vertex
        self.clue = clue
        self.width = width
        self.stops = stops

    def search(self, address: Address, counter: MemoryCounter) -> Match:
        best: Match = None
        node = self.entry
        if not self.entry_is_clue_vertex:
            counter.touch()
            if not node.prefix.matches(address):
                return None
            if node.marked:
                best = (node.prefix, node.next_hop)
            if self.stops is not None and self.stops.get(node.prefix, False):
                return best
        while node.prefix.length < self.width:
            child = node.children.get(address.bit(node.prefix.length))
            if child is None:
                break
            counter.touch()
            if not child.prefix.matches(address):
                break
            if child.marked:
                best = (child.prefix, child.next_hop)
            if self.stops is not None and self.stops.get(child.prefix, False):
                break
            node = child
        return best


class SetContinuation(Continuation):
    """(B-way) binary search over the potential set (binary/6-way adaptation).

    Sets of at most :data:`CACHE_LINE_PREFIXES` prefixes live in the clue
    entry's own cache line and cost no extra references.
    """

    __slots__ = ("candidates", "width", "branching", "inline", "ranges")

    def __init__(
        self,
        candidates: List[Tuple[Prefix, object]],
        width: int,
        branching: int = 2,
        inline_capacity: int = CACHE_LINE_PREFIXES,
    ):
        if not candidates:
            raise ValueError("a continuation needs a non-empty candidate set")
        self.candidates = sorted(
            candidates, key=lambda item: (item[0].length, item[0].bits)
        )
        self.width = width
        self.branching = branching
        self.inline = len(self.candidates) <= inline_capacity
        self.ranges = None if self.inline else RangeTable(self.candidates, width)

    def search(self, address: Address, counter: MemoryCounter) -> Match:
        if self.inline:
            best: Match = None
            for prefix, next_hop in self.candidates:
                if prefix.matches(address):
                    best = (prefix, next_hop)
            return best
        if self.branching <= 2:
            prefix, next_hop = self.ranges.locate_binary(address, counter)
        else:
            prefix, next_hop = self.ranges.locate_multiway(
                address, counter, self.branching
            )
        if prefix is None:
            return None
        return (prefix, next_hop)


class LengthContinuation(Continuation):
    """Binary search over the potential set's lengths (Log W adaptation)."""

    __slots__ = ("levels",)

    def __init__(self, candidates: List[Tuple[Prefix, object]], width: int):
        if not candidates:
            raise ValueError("a continuation needs a non-empty candidate set")
        self.levels = LengthTables(candidates, width)

    def search(self, address: Address, counter: MemoryCounter) -> Match:
        prefix, next_hop = self.levels.search(address, counter)
        if prefix is None:
            return None
        return (prefix, next_hop)


def subtree_candidates(
    trie: BinaryTrie, clue: Prefix
) -> List[Tuple[Prefix, object]]:
    """All marked prefixes strictly below ``clue`` (Simple method's set)."""
    top = trie.find_node(clue)
    if top is None:
        return []
    return [
        (node.prefix, node.next_hop)
        for node in top.descendants()
        if node.marked
    ]


def locate_patricia_entry(
    patricia: PatriciaTrie, clue: Prefix
) -> Optional[Tuple[TrieNode, bool]]:
    """Entry point for a Patricia continuation below ``clue``.

    Returns ``(vertex, is_clue_vertex)`` — the vertex to resume from and
    whether it *is* the clue (so its record is already in the clue entry) —
    or None when nothing in the Patricia trie extends the clue.
    """
    below, above = patricia.locate(clue)
    if below.prefix == clue:
        if not below.children:
            return None
        return below, True
    if above is not None:
        return above, False
    return None
