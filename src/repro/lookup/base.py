"""Common interface of all longest-prefix-match algorithms.

The paper compares five baselines — Regular (bit-by-bit trie), Patricia,
Binary (binary search over prefix ranges), 6-way (B-way branching search)
and Log W (binary search over prefix lengths) — and then combines each of
them with the Simple and Advance clue methods.  Every baseline implements
this interface: built once from a forwarding table, it answers
longest-prefix-match queries while charging memory references to a
:class:`~repro.lookup.counters.MemoryCounter`.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Tuple

from repro.addressing import Address, Prefix
from repro.lookup.counters import LookupResult, MemoryCounter

TableEntries = Iterable[Tuple[Prefix, object]]


class LookupAlgorithm(abc.ABC):
    """A longest-prefix-match algorithm over one forwarding table."""

    #: Human-readable algorithm name, as used in the paper's tables.
    name: str = "abstract"

    def __init__(self, entries: TableEntries, width: int = 32):
        self.width = width
        self._entries: List[Tuple[Prefix, object]] = sorted(
            entries, key=lambda item: (item[0].length, item[0].bits)
        )
        for prefix, _ in self._entries:
            if prefix.width != width:
                raise ValueError(
                    "prefix %s does not belong to width-%d family"
                    % (prefix, width)
                )
        self._build()

    @abc.abstractmethod
    def _build(self) -> None:
        """Construct the search structure from ``self._entries``."""

    @abc.abstractmethod
    def lookup(
        self, address: Address, counter: Optional[MemoryCounter] = None
    ) -> LookupResult:
        """Longest prefix match of ``address``; charges ``counter``."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def table(self) -> List[Tuple[Prefix, object]]:
        """The (sorted) forwarding-table entries the structure was built from."""
        return list(self._entries)

    def size(self) -> int:
        """Number of forwarding-table entries."""
        return len(self._entries)

    def _result(
        self,
        prefix: Optional[Prefix],
        next_hop: Optional[object],
        counter: MemoryCounter,
    ) -> LookupResult:
        return LookupResult(prefix, next_hop, counter.accesses)

    def __repr__(self) -> str:
        return "%s(%d prefixes)" % (type(self).__name__, len(self._entries))


def reference_lookup(
    entries: TableEntries, address: Address
) -> Tuple[Optional[Prefix], Optional[object]]:
    """Brute-force longest prefix match, used as a test oracle."""
    best: Optional[Prefix] = None
    best_hop: Optional[object] = None
    for prefix, next_hop in entries:
        if prefix.matches(address):
            if best is None or prefix.length > best.length:
                best = prefix
                best_hop = next_hop
    return best, best_hop
