"""The paper's five LPM baselines plus clue-restricted adaptations."""

from repro.lookup.base import LookupAlgorithm, reference_lookup
from repro.lookup.binary_range import (
    BinaryRangeLookup,
    MultiwayRangeLookup,
    RangeTable,
)
from repro.lookup.counters import (
    CACHE_LINE_PREFIXES,
    LookupResult,
    MemoryCounter,
)
from repro.lookup.hotpath import (
    cold_path,
    hot_path,
    is_cold_path,
    is_hot_path,
)
from repro.lookup.logw import LengthTables, LogWLookup
from repro.lookup.multibit import (
    MultibitContinuation,
    MultibitTrie,
    MultibitTrieLookup,
)
from repro.lookup.patricia_search import PatriciaLookup
from repro.lookup.regular import RegularTrieLookup
from repro.lookup.smalltable import CompressedChunk, SmallTableLookup
from repro.lookup.restricted import (
    Continuation,
    LengthContinuation,
    PatriciaContinuation,
    SetContinuation,
    TrieContinuation,
    locate_patricia_entry,
    subtree_candidates,
)

#: The paper's five baselines (keyed by its table names) plus the
#: stride-k multibit trie of [24], which §4 names as a candidate too.
BASELINES = {
    "regular": RegularTrieLookup,
    "patricia": PatriciaLookup,
    "binary": BinaryRangeLookup,
    "6way": MultiwayRangeLookup,
    "logw": LogWLookup,
    "multibit": MultibitTrieLookup,
}

#: The subset evaluated in the paper's Tables 4-9.
PAPER_BASELINES = {
    name: BASELINES[name]
    for name in ("regular", "patricia", "binary", "6way", "logw")
}

__all__ = [
    "BASELINES",
    "BinaryRangeLookup",
    "CACHE_LINE_PREFIXES",
    "Continuation",
    "LengthContinuation",
    "LengthTables",
    "LogWLookup",
    "LookupAlgorithm",
    "LookupResult",
    "MemoryCounter",
    "MultibitContinuation",
    "MultibitTrie",
    "MultibitTrieLookup",
    "MultiwayRangeLookup",
    "PAPER_BASELINES",
    "PatriciaContinuation",
    "PatriciaLookup",
    "RangeTable",
    "RegularTrieLookup",
    "SmallTableLookup",
    "CompressedChunk",
    "SetContinuation",
    "TrieContinuation",
    "cold_path",
    "hot_path",
    "is_cold_path",
    "is_hot_path",
    "locate_patricia_entry",
    "reference_lookup",
    "subtree_candidates",
]
