"""Binary search on prefix lengths with marker hash tables — baseline (5).

This is Waldvogel et al.'s "scalable high speed IP routing lookups" [26]:
prefixes are bucketed into one hash table per distinct length; a binary
search over the sorted list of lengths probes one hash table per step.
*Markers* (truncated images of longer prefixes) steer the search towards
longer lengths, and every marker carries its own precomputed best matching
prefix so a failed excursion never needs to backtrack.  Each probe is one
memory reference, for O(log W) references total.

The structure is also reusable over an arbitrary small entry set, which is
how the clue-restricted "Log W below a clue" search of §4 is implemented.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.addressing import Address, Prefix
from repro.lookup.base import LookupAlgorithm, TableEntries
from repro.lookup.counters import LookupResult, MemoryCounter
from repro.trie.binary_trie import BinaryTrie


class _Bucket:
    """One hash-table record: a real prefix, a marker, or both."""

    __slots__ = ("is_prefix", "next_hop", "bmp_prefix", "bmp_next_hop")

    def __init__(self) -> None:
        self.is_prefix = False
        self.next_hop: Optional[object] = None
        #: Best matching prefix of this bucket's bit string (precomputed),
        #: used when the search moves on from here and finds nothing longer.
        self.bmp_prefix: Optional[Prefix] = None
        self.bmp_next_hop: Optional[object] = None


class LengthTables:
    """Per-length hash tables with markers; core of the Log W scheme."""

    def __init__(self, entries: TableEntries, width: int = 32):
        self.width = width
        items = list(entries)
        trie = BinaryTrie(width)
        for prefix, next_hop in items:
            trie.insert(prefix, next_hop)
        self.lengths: List[int] = sorted({p.length for p, _ in items})
        self.tables: Dict[int, Dict[int, _Bucket]] = {
            length: {} for length in self.lengths
        }
        for prefix, next_hop in items:
            bucket = self._bucket(prefix.length, prefix.bits)
            bucket.is_prefix = True
            bucket.next_hop = next_hop
            bucket.bmp_prefix = prefix
            bucket.bmp_next_hop = next_hop
            self._plant_markers(prefix, trie)

    def _bucket(self, length: int, bits: int) -> _Bucket:
        table = self.tables[length]
        bucket = table.get(bits)
        if bucket is None:
            bucket = _Bucket()
            table[bits] = bucket
        return bucket

    def _plant_markers(self, prefix: Prefix, trie: BinaryTrie) -> None:
        """Insert markers for ``prefix`` on its binary-search path."""
        lo, hi = 0, len(self.lengths) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            length = self.lengths[mid]
            if length < prefix.length:
                marker = prefix.truncate(length)
                bucket = self._bucket(length, marker.bits)
                if bucket.bmp_prefix is None:
                    best = trie.least_marked_ancestor(marker)
                    if best is not None:
                        bucket.bmp_prefix = best.prefix
                        bucket.bmp_next_hop = best.next_hop
                lo = mid + 1
            elif length == prefix.length:
                break
            else:
                hi = mid - 1

    def search(
        self, address: Address, counter: MemoryCounter
    ) -> Tuple[Optional[Prefix], Optional[object]]:
        """Binary search over lengths; one reference per hash probe."""
        best: Tuple[Optional[Prefix], Optional[object]] = (None, None)
        lo, hi = 0, len(self.lengths) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            length = self.lengths[mid]
            counter.touch()
            bucket = self.tables[length].get(address.leading_bits(length))
            if bucket is None:
                hi = mid - 1
            else:
                if bucket.bmp_prefix is not None:
                    best = (bucket.bmp_prefix, bucket.bmp_next_hop)
                lo = mid + 1
        return best

    def probe_budget(self) -> int:
        """Worst-case number of probes (depth of the length search)."""
        count, steps = len(self.lengths), 0
        while count:
            count //= 2
            steps += 1
        return steps


class LogWLookup(LookupAlgorithm):
    """Binary search on prefix lengths [26]."""

    name = "logw"

    def _build(self) -> None:
        self.levels = LengthTables(self._entries, self.width)

    def lookup(
        self, address: Address, counter: Optional[MemoryCounter] = None
    ) -> LookupResult:
        counter = counter if counter is not None else MemoryCounter()
        prefix, next_hop = self.levels.search(address, counter)
        return self._result(prefix, next_hop, counter)
