"""The hot-path marker: declares a function part of the per-packet path.

The paper's headline claim is that a clue hit resolves a packet in *one*
memory reference; every Python-level inefficiency on that path dilutes
the claim's measurement.  Functions decorated with :func:`hot_path` are
the per-packet data path — the clue-table probe, the clue-assisted
lookup, the router ``process`` methods — and the static analyzer
(:mod:`repro.analyzer`, rule ``RC101``) holds them to a purity contract:

* no container allocations (literals, comprehensions, ``list()``/
  ``dict()``/``set()``/``sorted()`` calls) — per-packet allocation is the
  regression class fixed by the per-router ``MemoryCounter`` reuse;
* no string formatting (f-strings, ``%``, ``str.format``) outside
  ``raise`` statements — error paths may format, the happy path may not;
* no unsampled telemetry — label binding (``.labels(...)``) must happen
  at setup time (see :class:`repro.telemetry.instruments
  .RouterInstruments`), and tracer calls must sit behind a
  ``tracer.active`` sampling guard.

Its counterpart :func:`cold_path` marks the *sanctioned exits*: a
function a hot path may call whose cost is amortized off the per-packet
budget — lazy lookup-structure construction on a clue miss (the Advance
method allocates an entry precisely once per destination), or the
pure-Python batch twins whose per-batch result buffers are the whole
point of batching.  The interprocedural closure rule (RC113) stops
descending at a ``@cold_path`` boundary, so the decoration is the
reviewable, greppable record of every place the per-packet path is
allowed to step off the fast path.

Both decorators are zero-cost markers: they stamp an attribute and
return the function unchanged, so there is no wrapper frame on the very
path they protect.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

#: Attribute stamped on hot-path functions (used by tooling, not runtime).
HOT_PATH_ATTR = "__repro_hot_path__"

#: Attribute stamped on sanctioned hot→cold boundary functions.
COLD_PATH_ATTR = "__repro_cold_path__"


def hot_path(func: F) -> F:
    """Mark ``func`` as per-packet hot path (see module docstring)."""
    setattr(func, HOT_PATH_ATTR, True)
    return func


def is_hot_path(func: object) -> bool:
    """True if ``func`` was decorated with :func:`hot_path`."""
    return bool(getattr(func, HOT_PATH_ATTR, False))


def cold_path(func: F) -> F:
    """Mark ``func`` as a sanctioned exit from the hot path: callable
    from ``@hot_path`` code, but amortized off the per-packet budget
    (build-on-miss construction, per-batch buffers).  RC113 treats it
    as a closure barrier instead of flagging its allocations."""
    setattr(func, COLD_PATH_ATTR, True)
    return func


def is_cold_path(func: object) -> bool:
    """True if ``func`` was decorated with :func:`cold_path`."""
    return bool(getattr(func, COLD_PATH_ATTR, False))
