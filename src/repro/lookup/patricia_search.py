"""Patricia lookup: path-compressed trie walk.

The paper's baseline (2): the classical BSD radix implementation [22, 23].
Path compression makes the walk proportional to the number of *branching*
vertices on the way, not the prefix length, so it needs noticeably fewer
memory references than the plain trie on sparse regions of the address
space.
"""

from __future__ import annotations

from typing import Optional

from repro.addressing import Address
from repro.lookup.base import LookupAlgorithm
from repro.lookup.counters import LookupResult, MemoryCounter
from repro.trie.patricia import PatriciaTrie


class PatriciaLookup(LookupAlgorithm):
    """Compressed-trie lookup (one reference per vertex visited)."""

    name = "patricia"

    def _build(self) -> None:
        self.trie = PatriciaTrie(self.width)
        for prefix, next_hop in self._entries:
            self.trie.insert(prefix, next_hop)

    def lookup(
        self, address: Address, counter: Optional[MemoryCounter] = None
    ) -> LookupResult:
        counter = counter if counter is not None else MemoryCounter()
        best = None
        for node in self.trie.walk(address):
            counter.touch()
            if node.marked and node.prefix.matches(address):
                best = node
        if best is None:
            return self._result(None, None, counter)
        return self._result(best.prefix, best.next_hop, counter)
