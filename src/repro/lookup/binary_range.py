"""Binary search over prefix ranges — the paper's baseline (3), ref [19].

Every prefix covers a contiguous range of addresses.  Cutting the address
line at every range boundary yields segments inside which the best matching
prefix is constant, so longest-prefix matching reduces to a binary search
for the segment containing the destination (O(log N) memory references,
one per probe; the answer rides in the final probed record for free).

The same :class:`RangeTable` also powers the 6-way variant (baseline (4))
and the clue-restricted searches over a potential set ``P(s, R1)``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.addressing import Address, Prefix
from repro.lookup.base import LookupAlgorithm, TableEntries
from repro.lookup.counters import LookupResult, MemoryCounter
from repro.trie.binary_trie import BinaryTrie


class RangeTable:
    """Sorted segment array with a precomputed BMP per segment."""

    def __init__(self, entries: TableEntries, width: int = 32):
        self.width = width
        items = list(entries)
        trie = BinaryTrie(width)
        boundaries = {0}
        for prefix, next_hop in items:
            trie.insert(prefix, next_hop)
            low, high = prefix.address_range()
            boundaries.add(low)
            if high + 1 < (1 << width):
                boundaries.add(high + 1)
        #: segment i covers addresses [starts[i], starts[i+1]) — the last
        #: segment runs to the top of the address space.
        self.starts: List[int] = sorted(boundaries)
        self.answers: List[Tuple[Optional[Prefix], Optional[object]]] = []
        for start in self.starts:
            node = trie.longest_match(Address(start, width))
            if node is None:
                self.answers.append((None, None))
            else:
                self.answers.append((node.prefix, node.next_hop))

    def segment_count(self) -> int:
        """Number of constant-BMP segments."""
        return len(self.starts)

    def locate_binary(
        self, address: Address, counter: MemoryCounter
    ) -> Tuple[Optional[Prefix], Optional[object]]:
        """Binary search: one memory reference per probed record.

        Finds the rightmost segment start not exceeding the address; the
        answer is stored alongside the key in the probed record, so the
        final fetch is free.
        """
        value = address.value
        lo, hi = 0, len(self.starts) - 1
        if lo == hi:
            counter.touch()
            return self.answers[lo]
        while lo < hi:
            mid = (lo + hi + 1) // 2
            counter.touch()
            if self.starts[mid] <= value:
                lo = mid
            else:
                hi = mid - 1
        return self.answers[lo]

    def locate_multiway(
        self, address: Address, counter: MemoryCounter, branching: int = 6
    ) -> Tuple[Optional[Prefix], Optional[object]]:
        """B-way search: each step reads one node of B-1 keys (one line).

        The candidate range shrinks by a factor of ``branching`` per memory
        reference; once at most ``branching`` candidates remain, one last
        node read resolves among them.
        """
        if branching < 2:
            raise ValueError("branching factor must be at least 2")
        value = address.value
        lo, hi = 0, len(self.starts) - 1
        while hi - lo + 1 > branching:
            counter.touch()
            span = hi - lo + 1
            step = math.ceil(span / branching)
            prev = lo
            probe = lo + step
            narrowed = False
            while probe <= hi:
                if self.starts[probe] <= value:
                    prev = probe
                    probe += step
                else:
                    lo, hi = prev, probe - 1
                    narrowed = True
                    break
            if not narrowed:
                lo = prev
        counter.touch()
        while lo < hi and self.starts[lo + 1] <= value:
            lo += 1
        return self.answers[lo]


class BinaryRangeLookup(LookupAlgorithm):
    """Binary search over range segments [19]."""

    name = "binary"

    def _build(self) -> None:
        self.ranges = RangeTable(self._entries, self.width)

    def lookup(
        self, address: Address, counter: Optional[MemoryCounter] = None
    ) -> LookupResult:
        counter = counter if counter is not None else MemoryCounter()
        prefix, next_hop = self.ranges.locate_binary(address, counter)
        return self._result(prefix, next_hop, counter)


class MultiwayRangeLookup(LookupAlgorithm):
    """B-way search over range segments [11] (default B = 6)."""

    name = "6way"

    def __init__(self, entries: TableEntries, width: int = 32, branching: int = 6):
        self.branching = branching
        super().__init__(entries, width)

    def _build(self) -> None:
        self.ranges = RangeTable(self._entries, self.width)

    def lookup(
        self, address: Address, counter: Optional[MemoryCounter] = None
    ) -> LookupResult:
        counter = counter if counter is not None else MemoryCounter()
        prefix, next_hop = self.ranges.locate_multiway(
            address, counter, self.branching
        )
        return self._result(prefix, next_hop, counter)
