"""Memory-reference accounting.

The paper's §6 compares lookup schemes by the *number of memory accesses*
(to a table or to the trie) per packet — a hardware-independent cost model.
Every lookup algorithm in :mod:`repro.lookup` charges one unit to a
:class:`MemoryCounter` per data-structure element it touches:

* trie walks — one per vertex visited (the root included);
* Patricia walks — one per compressed vertex visited;
* binary / B-way searches — one per probe of the sorted array;
* Log W — one per hash-table probe;
* clue methods — one for the clue-table probe, plus whatever the resumed
  search costs.

Inline data co-located with an already-fetched entry (the paper's "the
entire set may be placed in the same cache line with the clue's entry") is
free; the :data:`CACHE_LINE_PREFIXES` constant says how many potential
prefixes fit in such a line.
"""

from __future__ import annotations

from typing import Optional

from repro.addressing import Prefix
from repro.lookup.hotpath import hot_path

#: How many potential prefixes fit in the clue entry's cache line (§3.5
#: assumes 32-byte SDRAM lines holding two 12-byte entries plus slack; we
#: conservatively allow four packed 8-byte (prefix, hop) words).
CACHE_LINE_PREFIXES = 4

#: Resolution methods stamped on a counter/result by the lookup layers so
#: telemetry can attribute each lookup's cost (see repro.telemetry):
#:
#: * ``full_lookup``   — no clue on the packet; the base algorithm ran.
#: * ``clue_miss``     — a clue arrived but the table had no record; a
#:   full lookup ran and (in learning mode) the record was built.
#: * ``fd_immediate``  — clue-table hit, Ptr empty: the precomputed final
#:   decision routed the packet in the one table reference.
#: * ``resumed_search``— clue-table hit, Ptr present: the restricted
#:   search below the clue ran (the FD fallback on a failed search is
#:   still charged here — the search happened).
METHOD_FULL = "full_lookup"
METHOD_CLUE_MISS = "clue_miss"
METHOD_FD_IMMEDIATE = "fd_immediate"
METHOD_RESUMED = "resumed_search"

#: Every method, in display order.
METHODS = (METHOD_FULL, METHOD_CLUE_MISS, METHOD_FD_IMMEDIATE, METHOD_RESUMED)


class MemoryCounter:
    """Counts memory references charged by a lookup.

    Besides the access count the counter carries the *resolution method*
    the lookup layer chose, so a caller holding only the counter (the
    routers, the comparison harness) can attribute the cost to the right
    telemetry series without widening every lookup signature.
    """

    __slots__ = ("accesses", "method")

    def __init__(self) -> None:
        self.accesses = 0
        self.method: Optional[str] = None

    @hot_path
    def touch(self, count: int = 1) -> None:
        """Charge ``count`` memory references."""
        self.accesses += count

    def reset(self) -> None:
        """Zero the counter (reuse between lookups)."""
        self.accesses = 0
        self.method = None

    def __repr__(self) -> str:
        return "MemoryCounter(%d)" % self.accesses


class LookupResult:
    """Outcome of one destination lookup.

    ``method`` mirrors the counter's resolution-method stamp for callers
    that never see the counter; it is informational and excluded from
    equality.
    """

    __slots__ = ("prefix", "next_hop", "accesses", "method")

    def __init__(
        self,
        prefix: Optional[Prefix],
        next_hop: Optional[object],
        accesses: int,
        method: Optional[str] = None,
    ):
        self.prefix = prefix
        self.next_hop = next_hop
        self.accesses = accesses
        self.method = method

    def matched(self) -> bool:
        """True if some prefix matched (i.e. not a no-route miss)."""
        return self.prefix is not None

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LookupResult)
            and self.prefix == other.prefix
            and self.next_hop == other.next_hop
            and self.accesses == other.accesses
        )

    def __repr__(self) -> str:
        return "LookupResult(prefix=%r, next_hop=%r, accesses=%d)" % (
            self.prefix,
            self.next_hop,
            self.accesses,
        )
