"""Bitmap-compressed three-level table — "small forwarding tables" ([6]).

Degermark et al.'s SIGCOMM'97 structure, the §2 related-work direction
"compress the prefixes data structure into the cache": the trie is
leaf-pushed and cut into levels at depths 16, 24 and 32; each level chunk
stores a *heads bitmap* (one bit per slot, set where the value changes)
plus a packed array of the distinct values, so a slot's value is found by
ranking the bitmap (population count — on-chip in hardware) and indexing
the packed array.

Cost model: visiting a level costs two memory references (the codeword /
bitmap word, then the packed-value word), so a lookup costs 2, 4 or 6
references depending on how deep the matched prefix sits — the shape the
original paper reports.

This is a clue-less baseline only: the paper composes clues with [26, 11,
24], and the leaf-pushed chunks have no natural "resume below a vertex"
operation, so it is deliberately not in the continuation technique list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.addressing import Address, Prefix
from repro.lookup.base import LookupAlgorithm, TableEntries
from repro.lookup.counters import LookupResult, MemoryCounter

#: Level cut depths (IPv4): 16 + 8 + 8.
LEVEL_BITS = (16, 8, 8)

Value = Optional[Tuple[Prefix, object]]


class _Chunk:
    """An uncompressed chunk under construction: ``slots`` values."""

    __slots__ = ("values", "children")

    def __init__(self, slots: int, default: Value):
        self.values: List[Value] = [default] * slots
        self.children: Dict[int, "_Chunk"] = {}


class CompressedChunk:
    """A built chunk: heads bitmap + packed distinct-value run array."""

    __slots__ = ("heads", "packed", "children")

    def __init__(self, values: List[object], children: Dict[int, "CompressedChunk"]):
        heads = 0
        packed: List[object] = []
        previous = object()
        for index, value in enumerate(values):
            if value != previous:
                heads |= 1 << index
                packed.append(value)
                previous = value
        self.heads = heads
        self.packed = packed
        self.children = children

    def value_at(self, slot: int) -> object:
        """Rank the bitmap up to ``slot`` and index the packed array."""
        rank = (self.heads & ((1 << (slot + 1)) - 1)).bit_count()
        return self.packed[rank - 1]

    def packed_size(self) -> int:
        """Distinct runs stored (the compression the scheme lives off)."""
        return len(self.packed)


class SmallTableLookup(LookupAlgorithm):
    """Three-level bitmap-compressed lookup [6]."""

    name = "smalltable"

    def _build(self) -> None:
        if self.width != 32:
            raise ValueError("the 16/8/8 small-table layout is IPv4 only")
        root = _Chunk(1 << LEVEL_BITS[0], None)
        # Entries arrive sorted by length, so longer prefixes leaf-push
        # over shorter ones and chunk conversion inherits the right default.
        for prefix, next_hop in self._entries:
            self._insert(root, prefix, (prefix, next_hop))
        self.root = self._compress(root)

    def _insert(self, root: _Chunk, prefix: Prefix, value: Value) -> None:
        chunk = root
        consumed = 0
        for level, bits in enumerate(LEVEL_BITS):
            if prefix.length <= consumed + bits:
                # The prefix ends inside this chunk: fill its slot range.
                local = prefix.length - consumed
                head = prefix.bits & ((1 << local) - 1) if local else 0
                free = bits - local
                for filler in range(1 << free):
                    slot = (head << free) | filler
                    child = chunk.children.get(slot)
                    if child is None:
                        chunk.values[slot] = value
                    else:
                        # The slot was already expanded: push into every
                        # still-default slot of the sub-chunk tree.
                        self._push_default(child, value)
                return
            consumed += bits
            slot = (prefix.bits >> (prefix.length - consumed)) & ((1 << bits) - 1)
            child = chunk.children.get(slot)
            if child is None:
                child = _Chunk(
                    1 << LEVEL_BITS[level + 1], chunk.values[slot]
                )
                chunk.children[slot] = child
            chunk = child

    def _push_default(self, chunk: _Chunk, value: Value) -> None:
        for slot in range(len(chunk.values)):
            child = chunk.children.get(slot)
            if child is not None:
                self._push_default(child, value)
            else:
                current = chunk.values[slot]
                if current is None or current[0].length < value[0].length:
                    chunk.values[slot] = value

    def _compress(self, chunk: _Chunk) -> CompressedChunk:
        children = {
            slot: self._compress(child) for slot, child in chunk.children.items()
        }
        # A slot with a sub-chunk stores a pointer marker instead of a
        # value; encode it as the child itself (distinct per slot).
        values: List[object] = list(chunk.values)
        for slot, child in children.items():
            values[slot] = child
        return CompressedChunk(values, children)

    # ------------------------------------------------------------------
    def lookup(
        self, address: Address, counter: Optional[MemoryCounter] = None
    ) -> LookupResult:
        counter = counter if counter is not None else MemoryCounter()
        chunk = self.root
        consumed = 0
        for bits in LEVEL_BITS:
            consumed += bits
            slot = address.leading_bits(consumed) & ((1 << bits) - 1)
            counter.touch(2)  # codeword/bitmap word + packed-value word
            value = chunk.value_at(slot)
            if isinstance(value, CompressedChunk):
                chunk = value
                continue
            if value is None:
                return self._result(None, None, counter)
            prefix, next_hop = value
            return self._result(prefix, next_hop, counter)
        return self._result(None, None, counter)

    # ------------------------------------------------------------------
    def compression_report(self) -> Dict[str, int]:
        """Slots vs packed runs, per the scheme's space argument."""
        total_slots = 0
        total_packed = 0
        chunks = 0
        stack = [self.root]
        while stack:
            chunk = stack.pop()
            chunks += 1
            total_slots += (
                (1 << LEVEL_BITS[0]) if chunk is self.root else (1 << LEVEL_BITS[1])
            )
            total_packed += chunk.packed_size()
            stack.extend(chunk.children.values())
        return {
            "chunks": chunks,
            "slots": total_slots,
            "packed_runs": total_packed,
        }
